"""A communication-failure sweep: outage duration x start time, fault-tolerantly.

The paper's Section II(c) requires the PCA supervisor to be "tolerant to
faults that interfere with the control loop, in particular communication
failures between the devices".  This example sweeps that failure mode at
campaign scale: a declarative ``faults`` block injects a pulse-oximeter
uplink outage into every run, crossing outage duration with start time, and
the safety outcomes show how the closed-loop protection degrades as the
supervisor is blinded for longer.

The campaign itself runs fault-tolerantly (``ResilienceConfig``): a failing
or crashing run is quarantined to ``errors.jsonl`` instead of killing the
sweep, and re-running with ``--out DIR`` resumes and re-dispatches it.

Run with::

    python examples/campaign_faults.py [--workers 2] [--duration-hours 1.0]
                                       [--out DIR]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.campaign import (
    CampaignSpec,
    ResilienceConfig,
    RetryPolicy,
    campaign_table,
    run_campaign,
)


def build_spec(duration_hours: float) -> CampaignSpec:
    duration_s = duration_hours * 3600.0
    return CampaignSpec(
        name="uplink-outage-sweep",
        scenario="pca",
        description="SpO2 uplink outage: duration x start time, closed loop",
        parameters={
            "mode": ["open_loop", "closed_loop"],
            "duration_s": duration_s,
        },
        faults=[
            {
                "kind": "channel_outage",
                "target": "uplink:pulse-ox-1",
                "start": [0.25 * duration_s, 0.5 * duration_s],
                "duration": [120.0, 600.0, 1800.0],
            }
        ],
        repeats=3,
        base_seed=2026,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--duration-hours", type=float, default=1.0)
    parser.add_argument("--out", default=None,
                        help="campaign directory (enables resume + quarantine file)")
    args = parser.parse_args()

    spec = build_spec(args.duration_hours)
    total = spec.grid_size()
    print(f"sweeping {total} runs: "
          f"{spec.sweep_axes()} (workers={args.workers})")

    started = time.perf_counter()
    report = run_campaign(
        spec,
        workers=args.workers,
        directory=args.out,
        resume=args.out is not None and Path(args.out, "results.jsonl").exists(),
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=3),
            run_timeout_s=600.0 if args.workers > 1 else None,
        ),
    )
    elapsed = time.perf_counter() - started
    print(f"completed in {elapsed:.1f}s: {report.ok} ok "
          f"({report.retried} after retry), {report.quarantined} quarantined, "
          f"{report.worker_restarts} worker restarts")
    if report.quarantined and report.directory is not None:
        print(f"quarantined runs -> {report.directory / 'errors.jsonl'}; "
              "re-run with the same --out to re-dispatch them")

    table = campaign_table(
        report.records,
        group_by=["mode", "fault0.duration"],
        metrics=["harmed", "time_below_spo2_90_s", "supervisor_stops"],
        title="safety vs uplink outage duration",
    )
    print()
    print(table.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
