"""Quickstart: run the closed-loop PCA scenario of Figure 1.

Builds the full stack -- patient model, PCA pump, pulse oximeter, capnograph,
ICE device bus, safety supervisor, and a nurse -- runs a four-hour stay for
one opioid-sensitive patient in open-loop and closed-loop configurations, and
prints the safety outcome of each.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.tables import Table
from repro.core import ClosedLoopPCASystem, PCASystemConfig
from repro.devices.pca_pump import PCAPrescription
from repro.patient.population import PatientPopulation
from repro.scenarios.pca_scenario import pca_fault_campaign


def main() -> None:
    # An opioid-sensitive post-operative patient: the kind of patient the
    # paper's programmable-limit-only PCA pump fails to protect.
    patient = PatientPopulation(seed=2024).sample_one("demo-patient", sensitive=True)
    prescription = PCAPrescription(
        bolus_dose_mg=1.5,
        lockout_interval_s=360.0,
        hourly_limit_mg=10.0,
        basal_rate_mg_per_hr=1.5,
    )
    # The classic adverse-event causes: a misprogrammed rate and a relative
    # pressing the button for the patient (PCA by proxy).
    faults = pca_fault_campaign(misprogramming_rate_multiplier=3.0,
                                proxy_press_count=4, proxy_press_time_s=5400.0)

    table = Table(
        "Closed-loop PCA quickstart (one patient, misprogramming + PCA-by-proxy faults)",
        ["configuration", "min SpO2 (%)", "time SpO2<90 (s)", "respiratory failures",
         "drug delivered (mg)", "supervisor stops", "harmed"],
    )
    for mode in ("open_loop", "closed_loop"):
        config = PCASystemConfig(
            mode=mode,
            duration_s=4.0 * 3600.0,
            patient=patient,
            prescription=prescription,
            faults=list(faults),
            seed=7,
        )
        result = ClosedLoopPCASystem(config).run()
        table.add_row(mode, result.min_spo2, result.time_below_spo2_90_s,
                      result.respiratory_failure_events, result.total_drug_delivered_mg,
                      result.supervisor_stops, result.harmed)
    print(table.render())
    print()
    print("The closed-loop supervisor stops the infusion on early signs of respiratory")
    print("depression (and on stale sensor data), which is the paper's Figure 1 scenario.")


if __name__ == "__main__":
    main()
