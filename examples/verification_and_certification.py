"""Verifying the supervisor-pump interlock and re-certifying after an upgrade.

Demonstrates the verification and certification side of the framework
(Sections III(l) and III(n) of the paper):

1. model the pump / monitor interaction as synchronising transition systems;
2. prove the interlock ("the pump never infuses while disabled") by explicit
   reachability, by k-induction, and compositionally with assume-guarantee
   contracts;
3. attach the proofs as evidence in a GSN assurance case;
4. upgrade the middleware component and compute the incremental
   re-certification plan.

Run with::

    python examples/verification_and_certification.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.certification.evidence import Evidence, EvidenceStore
from repro.certification.gsn import AssuranceCase, GoalNode, SolutionNode, StrategyNode
from repro.certification.incremental import IncrementalCertifier
from repro.verification.assume_guarantee import Contract, assume_guarantee_check
from repro.verification.induction import k_induction
from repro.verification.reachability import check_invariant
from repro.verification.transition_system import Rule, TransitionSystem, compose


def build_models():
    pump = TransitionSystem(
        "pump",
        variables={"infusing": (False, True), "enabled": (True, False)},
        initial_states=[{"infusing": False, "enabled": True}],
        rules=[
            Rule(lambda s: s["enabled"] and not s["infusing"], lambda s: {"infusing": True}, name="start"),
            Rule(lambda s: s["infusing"], lambda s: {"infusing": False}, name="finish"),
            Rule(lambda s: True, lambda s: {"enabled": False, "infusing": False}, label="alarm",
                 name="disable"),
            Rule(lambda s: not s["enabled"], lambda s: {"enabled": True}, label="clear", name="enable"),
        ],
    )
    monitor = TransitionSystem(
        "monitor",
        variables={"danger": (False, True)},
        initial_states=[{"danger": False}],
        rules=[
            Rule(lambda s: not s["danger"], lambda s: {"danger": True}, name="deteriorate"),
            Rule(lambda s: s["danger"], lambda s: {}, label="alarm", name="alarm"),
            Rule(lambda s: s["danger"], lambda s: {"danger": False}, label="clear", name="clear"),
        ],
    )
    return pump, monitor


def interlock(state):
    return not (state.get("infusing", False) and not state.get("enabled", True))


def main() -> None:
    pump, monitor = build_models()
    composed = compose(pump, monitor)

    reach = check_invariant(composed, interlock)
    induction = k_induction(composed, interlock, max_k=3)
    contracts = [
        Contract("pump", assumption=lambda s: True,
                 guarantee=lambda s: not (s["infusing"] and not s["enabled"])),
        Contract("monitor", assumption=lambda s: True, guarantee=lambda s: True),
    ]
    compositional = assume_guarantee_check([pump, monitor], contracts, interlock)
    print(f"Explicit reachability: holds={reach.holds}, states={reach.states_explored}")
    print(f"k-induction:           proved={induction.proved} at k={induction.k_used}")
    print(f"Assume-guarantee:      holds={compositional.holds}, work={compositional.total_work}")

    # Assurance case referencing the proofs as evidence.
    case = AssuranceCase("pca-interlock")
    store = EvidenceStore()
    case.add(GoalNode("G1", "The PCA pump never infuses while disabled", components={"pump", "supervisor"}))
    case.add(StrategyNode("S1", "Argue by formal verification"), parent_id="G1")
    case.add(GoalNode("G2", "The interlock holds in the composed model",
                      components={"pump", "supervisor"}), parent_id="S1")
    store.add(Evidence("EV-reach", "explicit reachability proof", "model_checking",
                       components={"pump", "supervisor"}, regeneration_cost=2.0,
                       data={"states": reach.states_explored}))
    store.add(Evidence("EV-ag", "assume-guarantee argument", "model_checking",
                       components={"pump", "supervisor", "middleware"}, regeneration_cost=1.0))
    case.add(SolutionNode("Sn1", "reachability result", "EV-reach",
                          components={"pump", "supervisor"}), parent_id="G2")
    case.add(SolutionNode("Sn2", "compositional argument", "EV-ag",
                          components={"middleware"}), parent_id="G2")

    certifier = IncrementalCertifier(case, store)
    print(f"Assurance case well-formed: {certifier.check_well_formed() == []}")

    plan = certifier.apply_upgrade({"middleware"})
    print(f"After a middleware upgrade: evidence invalidated={plan.invalidated_evidence}, "
          f"incremental cost={plan.incremental_cost} vs full={plan.full_recert_cost} "
          f"(saving {plan.cost_saving_fraction:.0%})")
    certifier.regenerate(plan.invalidated_evidence)
    print(f"Certification complete after regeneration: {certifier.certification_complete()}")


if __name__ == "__main__":
    main()
