"""Smart alarms on a monitored ward (Sections III(i) and III(l) of the paper).

Shows the two interoperability-enabled alarm improvements the paper
describes, on concrete event traces:

1. patient-adaptive thresholds: a trained athlete's resting bradycardia stops
   triggering low-heart-rate alarms once the EHR exercise history is used;
2. multivariate correlation: a sudden SpO2 collapse with normal blood
   pressure and ECG is triaged as a probe problem, not a heart failure;
3. context suppression: a MAP step caused by raising the bed is suppressed
   when the bed publishes its height-change event.

Run with::

    python examples/smart_alarm_ward.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.alarms.adaptive import AdaptiveThresholdAlarm
from repro.alarms.smart import ContextEvent, SmartAlarmEngine, bed_map_suppression_rules, \
    spo2_wire_disconnection_rules
from repro.alarms.thresholds import ThresholdAlarm, default_adult_rules
from repro.analysis.tables import Table
from repro.ehr.store import EHRStore
from repro.patient.population import PatientPopulation
from repro.scenarios.bed_map import BedMapConfig, BedMapScenario


def athlete_example() -> None:
    ehr = EHRStore()
    athlete = PatientPopulation(seed=3).sample_one("marathon-runner", athlete=True)
    ehr.admit_from_parameters(athlete)

    fixed = ThresholdAlarm("fixed", default_adult_rules())
    adaptive = AdaptiveThresholdAlarm("adaptive", ehr, athlete.patient_id)

    resting_hr = athlete.baseline_heart_rate_bpm
    fixed_alarms = fixed.observe(0.0, "heart_rate", resting_hr)
    adaptive_alarms = adaptive.observe(0.0, "heart_rate", resting_hr)
    print(f"Athlete resting heart rate: {resting_hr:.0f} bpm")
    print(f"  fixed thresholds raise {len(fixed_alarms)} alarm(s);"
          f" EHR-adaptive thresholds raise {len(adaptive_alarms)}")
    print()


def wire_disconnection_example() -> None:
    engine = SmartAlarmEngine(ThresholdAlarm("ward", default_adult_rules()),
                              corroboration_rules=spo2_wire_disconnection_rules())
    engine.observe(100.0, "map", 92.0)
    engine.observe(100.0, "ecg_heart_rate", 78.0)
    clinical = engine.observe(101.0, "spo2", 35.0)  # probe fell off
    counts = engine.counts()
    print("Sudden SpO2 collapse with normal blood pressure and ECG:")
    print(f"  clinical alarms raised: {len(clinical)}; technical advisories: {counts['technical']}")
    for advisory in engine.technical_advisories:
        print(f"  advisory: {advisory.message}")
    print()


def bed_context_example() -> None:
    table = Table("Bed/MAP mixed-criticality scenario (8 bed moves, 2 genuine hypotension episodes)",
                  ["configuration", "false alarms", "suppressed", "missed episodes"])
    for aware in (False, True):
        result = BedMapScenario(BedMapConfig(use_context_awareness=aware, seed=9)).run()
        table.add_row("context-aware" if aware else "threshold only",
                      result.false_alarm_count, result.suppressed_alarms, result.missed_episodes)
    print(table.render())


def main() -> None:
    athlete_example()
    wire_disconnection_example()
    bed_context_example()


if __name__ == "__main__":
    main()
