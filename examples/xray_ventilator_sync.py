"""X-ray / ventilator interoperability case study (Section II(b) of the paper).

Compares three ways of taking intra-operative chest X-rays of a ventilated
patient:

* ``manual``        -- the clinician pauses and (hopefully) restarts the
                       ventilator by hand;
* ``pause_restart`` -- the X-ray machine commands the ventilator over the
                       device network;
* ``state_broadcast`` -- the ventilator publishes its breathing phase and the
                       X-ray machine fires inside the end-expiratory window,
                       never pausing ventilation.

Run with::

    python examples/xray_ventilator_sync.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.tables import Table
from repro.scenarios.xray_vent import XRayVentilatorConfig, XRayVentilatorScenario


def main() -> None:
    table = Table(
        "Intra-operative imaging of a ventilated patient (10 image requests)",
        ["coordination", "sharp images", "blurred", "apnea episodes", "max apnea (s)",
         "unsafe apneas", "ventilator left paused"],
    )
    cases = [
        ("manual", dict(forget_restart_probability=0.15)),
        ("pause_restart", dict()),
        ("pause_restart", dict(command_loss_probability=0.3)),
        ("state_broadcast", dict()),
    ]
    for mode, overrides in cases:
        config = XRayVentilatorConfig(mode=mode, image_requests=10, request_period_s=120.0,
                                      seed=5, **overrides)
        result = XRayVentilatorScenario(config).run()
        label = mode
        if overrides.get("command_loss_probability"):
            label += " (lossy network)"
        if overrides.get("forget_restart_probability"):
            label += " (15% forget restart)"
        table.add_row(label, result.sharp_images, result.blurred_images, result.apnea_episodes,
                      result.max_apnea_time_s, result.unsafe_apnea_events,
                      result.ventilator_left_paused)
    print(table.render())
    print()
    print("State broadcasting keeps the patient ventilated throughout while still producing")
    print("sharp images -- the safer alternative the paper describes, at the cost of tighter")
    print("timing requirements on the device network.")


if __name__ == "__main__":
    main()
