"""A generated-hospital campaign: staffing x security posture at ward scale.

The acceptance workload of ``repro.topology``: a multi-ward hospital built
from one declarative :class:`TopologySpec` — device mixes, cohort
fractions, night-shift staffing, per-ward fault profiles — expanded
deterministically and swept through the campaign engine across security
postures and staffing ratios.  Every run regenerates its own fault
schedule and attack campaign from the topology, so the table at the end is
the paper's flexibility-versus-security tradeoff measured on a whole
hospital rather than a single pump.

Run with::

    python examples/campaign_hospital.py [--wards 2] [--beds 18]
                                         [--duration-minutes 10]
                                         [--workers 2] [--out DIR]

Passing ``--out`` streams results to a campaign directory; re-running with
the same ``--out`` resumes an interrupted campaign instead of restarting it.
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.campaign import CampaignSpec, campaign_table, run_campaign
from repro.topology import standard_hospital


def build_spec(wards: int, beds: int, duration_minutes: float) -> CampaignSpec:
    topologies = [
        standard_hospital(
            f"hospital-1to{ratio}",
            wards=wards,
            beds_per_ward=beds,
            device_mix={"pulse_oximeter": 1.0, "capnograph": 0.5,
                        "bp_monitor": 0.5, "bed": 1.0, "pca_pump": 0.5},
            cohort={"sensitive_fraction": 0.2, "athlete_fraction": 0.1},
            staffing={"beds_per_caregiver": ratio, "shift": "night"},
            faults={"channel_outage_rate": 1.5, "stuck_sensor_rate": 1.0,
                    "misprogramming_rate": 0.5},
        ).as_dict()
        for ratio in (4, 8)
    ]
    return CampaignSpec(
        name="hospital-postures",
        scenario="ward",
        description="generated hospital: staffing ratio x security posture",
        parameters={
            "topology": topologies,
            "security_posture": ["open", "allowlisted", "data_only"],
            "duration_s": duration_minutes * 60.0,
        },
        repeats=3,
        base_seed=7,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--wards", type=int, default=2)
    parser.add_argument("--beds", type=int, default=18,
                        help="beds per ward")
    parser.add_argument("--duration-minutes", type=float, default=10.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default=None,
                        help="campaign directory (enables streaming + resume)")
    args = parser.parse_args()

    spec = build_spec(args.wards, args.beds, args.duration_minutes)
    total = spec.grid_size()
    print(f"campaign {spec.name!r}: {total} runs "
          f"({args.wards} wards x {args.beds} beds, 2 staffing ratios x "
          f"3 postures x 3 repeats), {args.workers} workers")

    started = time.perf_counter()
    report = run_campaign(
        spec,
        workers=args.workers,
        directory=args.out,
        resume=args.out is not None and Path(args.out, "results.jsonl").exists(),
    )
    elapsed = time.perf_counter() - started
    print(f"completed {report.total} runs in {elapsed:.1f}s "
          f"({report.total / elapsed:.1f} runs/s; "
          f"{report.executed} executed, {report.skipped} resumed)")
    print()

    print(campaign_table(
        report.records,
        group_by=("security_posture",),
        metrics=("alarms_total", "caregiver_alarms_missed", "supervisor_stops",
                 "faults_injected", "attacks_succeeded",
                 "attacks_blocked_authentication"),
        title="Security posture vs closed-loop flexibility "
              f"({args.wards * args.beds}-bed hospital)",
    ).render())
    print()
    print(campaign_table(
        report.records,
        group_by=("topology",),
        metrics=("caregivers", "caregiver_alarms_received",
                 "caregiver_alarms_missed", "caregiver_interventions"),
        title="Staffing ratio vs alarm response "
              "(topology axis = content-hashed spec)",
    ).render())


if __name__ == "__main__":
    main()
