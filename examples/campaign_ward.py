"""A ward-scale PCA campaign: 50 patients under 4 pump configurations.

This is the acceptance workload of the ``repro.campaign`` subsystem: a
200-run Monte Carlo campaign (a 50-patient cohort crossed with open-loop /
closed-loop supervision, each with and without the standard E1 fault
workload), executed through the campaign engine and aggregated into the
paper's safety table over the whole ward rather than a handful of patients.

Run with::

    python examples/campaign_ward.py [--patients 50] [--workers 2]
                                     [--duration-hours 1.0] [--out DIR]

Passing ``--out`` streams results to a campaign directory; re-running with
the same ``--out`` resumes an interrupted campaign instead of restarting it.
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.campaign import CampaignSpec, run_campaign, safety_table


def build_spec(patients: int, duration_hours: float) -> CampaignSpec:
    return CampaignSpec(
        name="ward-pca",
        scenario="pca",
        description="50-patient ward, open vs closed loop, with and without faults",
        parameters={
            "mode": ["open_loop", "closed_loop"],
            "faults": ["none", "standard"],
            "duration_s": duration_hours * 3600.0,
        },
        cohort_size=patients,
        base_seed=2024,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--patients", type=int, default=50)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--duration-hours", type=float, default=1.0)
    parser.add_argument("--out", default=None,
                        help="campaign directory (enables streaming + resume)")
    args = parser.parse_args()

    spec = build_spec(args.patients, args.duration_hours)
    total = spec.grid_size()
    print(f"campaign {spec.name!r}: {total} runs "
          f"({args.patients} patients x 4 configurations), {args.workers} workers")

    started = time.perf_counter()
    report = run_campaign(
        spec,
        workers=args.workers,
        directory=args.out,
        resume=args.out is not None and Path(args.out, "results.jsonl").exists(),
    )
    elapsed = time.perf_counter() - started
    print(f"completed {report.total} runs in {elapsed:.1f}s "
          f"({report.total / elapsed:.1f} runs/s; "
          f"{report.executed} executed, {report.skipped} resumed)")
    print()

    print(safety_table(
        report.records,
        group_by=("mode", "faults"),
        title=f"Ward of {args.patients}: safety outcome per configuration",
        notes="closed_loop should hold harm near zero even under the fault workload",
    ).render())


if __name__ == "__main__":
    main()
