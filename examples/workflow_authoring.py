"""Authoring, analysing, deploying, and executing a clinical workflow.

Walks through the full lifecycle the paper envisions for executable clinical
scenarios (Sections III(e), III(f), III(k)):

1. author the closed-loop PCA scenario in the workflow language;
2. statically analyse it (caregiver-procedure coverage, data-flow and
   decision-rule consistency);
3. match its device requirements against the devices registered on the ICE
   network (plug-and-play deployment check);
4. compile the decision logic into a supervisor app and run it against the
   simulated devices and patient;
5. verify the timed interfaces of the deployed composition.

Run with::

    python examples/workflow_authoring.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.devices.capnograph import Capnograph
from repro.devices.pca_pump import PCAPump
from repro.devices.pulse_oximeter import PulseOximeter
from repro.middleware.bus import BusConfig, DeviceBus
from repro.middleware.registry import DeviceRegistry
from repro.middleware.supervisor_host import SupervisorHost
from repro.patient.model import PatientModel
from repro.scenarios.pca_scenario import PCA_OUTCOME_ALPHABET, build_pca_scenario_spec
from repro.sim.kernel import Simulator
from repro.verification.interfaces import (
    CommandReaction,
    CommandRequirement,
    TimedInterface,
    TopicConsumption,
    TopicProduction,
    check_interface_compatibility,
)
from repro.workflow.analysis import analyse_scenario, errors
from repro.workflow.compiler import compile_scenario, device_requirements


def main() -> None:
    # 1. Author the scenario.
    scenario = build_pca_scenario_spec()
    print(f"Scenario {scenario.name!r}: {len(scenario.device_roles)} device roles, "
          f"{len(scenario.procedure)} procedure steps, {len(scenario.decision_rules)} decision rules")

    # 2. Static analysis.
    findings = analyse_scenario(scenario, outcome_alphabet=PCA_OUTCOME_ALPHABET)
    print(f"Static analysis: {len(findings)} findings, {len(errors(findings))} errors")

    # 3. Build the simulated ward and register devices.
    simulator = Simulator()
    patient = PatientModel()
    simulator.register(patient)
    bus = DeviceBus(simulator, BusConfig())
    registry = DeviceRegistry()
    pump = PCAPump("pca-pump-1", patient, command_delay_s=0.5)
    oximeter = PulseOximeter("pulse-ox-1", patient)
    capnograph = Capnograph("capnograph-1", patient)
    for device in (pump, oximeter, capnograph):
        bus.attach_device(device)
        registry.register(device.descriptor)
        simulator.register(device)

    match = registry.match(device_requirements(scenario))
    print(f"Deployment check: assignments={match.assignments}, complete={match.complete}")

    # 4. Compile the decision logic and run the scenario closed-loop.
    host = SupervisorHost(bus, algorithm_delay_s=0.1)
    app = compile_scenario(scenario, match.assignments)
    host.attach_app(app)
    simulator.register(host)

    patient.infuse_bolus(18.0)  # an accidental overdose the loop must catch
    simulator.run(until=30 * 60.0)
    print(f"Compiled supervisor fired {len(app.fired_rules)} rule(s); "
          f"pump stopped by supervisor: {pump.stopped_by_supervisor}")

    # 5. Timed-interface compatibility of the deployed composition.
    interfaces = [
        TimedInterface("pulse-ox-1", produces=[TopicProduction("spo2", max_period_s=2.0),
                                               TopicProduction("heart_rate", max_period_s=2.0)]),
        TimedInterface("capnograph-1", produces=[TopicProduction("respiratory_rate", max_period_s=5.0)]),
        TimedInterface("pca-pump-1", reacts_to=[CommandReaction("stop", max_reaction_s=1.0)]),
        TimedInterface(
            "compiled-supervisor",
            consumes=[TopicConsumption("spo2", max_age_s=10.0),
                      TopicConsumption("respiratory_rate", max_age_s=20.0)],
            requires_commands=[CommandRequirement("stop", deadline_s=5.0)],
        ),
    ]
    problems = check_interface_compatibility(interfaces, network_latency_s=0.05)
    print(f"Timed-interface check: {len(problems)} incompatibilities")
    for problem in problems:
        print(f"  {problem.kind}: {problem.detail}")


if __name__ == "__main__":
    main()
