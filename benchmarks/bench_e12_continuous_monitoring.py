"""E12: real-time closed-loop monitoring vs store-and-forward telemonitoring (Section II(d)).

The paper notes that most home / mobile monitoring systems "operate in
store-and-forward mode, with no real-time diagnostic capability" and argues
that real-time evaluation "will allow diagnostic evaluation of vital signs in
real-time".  This bench sweeps the store-and-forward upload period and
reports detection latency for deterioration episodes, against the real-time
streaming architecture.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.scenarios.home import HomeMonitoringConfig, HomeMonitoringScenario

UPLOAD_PERIODS_H = (1.0, 4.0, 8.0, 12.0)
USEFUL_WINDOW_S = 3600.0  # an hour from onset is clinically actionable


def _sweep():
    rows = []
    real_time = HomeMonitoringScenario(HomeMonitoringConfig(mode="real_time", seed=17)).run()
    rows.append(("real_time (streaming)", real_time))
    for hours in UPLOAD_PERIODS_H:
        config = HomeMonitoringConfig(mode="store_and_forward", upload_period_s=hours * 3600.0, seed=17)
        rows.append((f"store_and_forward ({hours:.0f} h uploads)", HomeMonitoringScenario(config).run()))
    return rows


def test_e12_continuous_monitoring(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = Table(
        "E12: deterioration detection latency by telemonitoring architecture",
        ["architecture", "episodes", "detected", "mean_latency_s", "detected_within_1h"],
        notes="real-time latency is set by sampling + network; store-and-forward by the upload batch",
    )
    for name, result in rows:
        table.add_row(name, result.episodes, result.detected_episodes,
                      result.mean_detection_latency_s or float("nan"),
                      result.detected_within(USEFUL_WINDOW_S))
    emit(table)

    real_time = rows[0][1]
    batched = [result for name, result in rows[1:]]
    assert real_time.detected_episodes == real_time.episodes
    assert real_time.detected_within(USEFUL_WINDOW_S) == real_time.episodes
    assert all(real_time.mean_detection_latency_s <= result.mean_detection_latency_s
               for result in batched if result.mean_detection_latency_s is not None)
    # Latency grows with the upload period.
    latencies = [result.mean_detection_latency_s for result in batched]
    assert latencies == sorted(latencies)
