"""E4: patient-adaptive thresholds and multivariate smart alarms (Section III(i)).

A monitored cohort (including athletes with low resting heart rates) generates
probe-off artefacts and genuine desaturation episodes.  Three alarm designs
are compared on false alarms, missed events, and the knock-on effect of alarm
fatigue on caregiver responsiveness:

* fixed population thresholds (the status quo the paper criticises);
* EHR-adaptive thresholds (the athlete example);
* adaptive thresholds + multivariate corroboration (the disconnected-wire
  example).
"""

import numpy as np

from conftest import emit

from repro.alarms.adaptive import AdaptiveThresholdAlarm
from repro.alarms.fatigue import AlarmFatigueModel
from repro.alarms.smart import SmartAlarmEngine, spo2_wire_disconnection_rules
from repro.alarms.thresholds import ThresholdAlarm, default_adult_rules
from repro.analysis.metrics import classify_alarms
from repro.analysis.tables import Table
from repro.ehr.store import EHRStore
from repro.patient.population import PatientPopulation

COHORT = 12
DURATION_S = 6.0 * 3600.0
SAMPLE_PERIOD_S = 30.0


def _simulate_cohort(design, seed=77):
    """Replay synthetic monitored traces through the chosen alarm design."""
    rng = np.random.default_rng(seed)
    population = PatientPopulation(seed=seed)
    patients = population.sample(COHORT, sensitive_fraction=0.0, athlete_fraction=0.4)
    ehr = EHRStore()
    total_false, total_true_alarms, total_missed, episodes_total = 0, 0, 0, 0
    alarm_stream = []

    for patient in patients:
        ehr.admit_from_parameters(patient)
        # Ground truth: one genuine desaturation episode in half the cohort.
        has_episode = rng.random() < 0.5
        episode = (DURATION_S * 0.5, DURATION_S * 0.5 + 1200.0) if has_episode else None
        # Probe-off artefacts: SpO2 collapses while circulation is normal.
        artefact_times = sorted(rng.uniform(0.1, 0.9, size=3) * DURATION_S)

        if design == "fixed":
            engine = SmartAlarmEngine(ThresholdAlarm("fixed", default_adult_rules(), rearm_time_s=300.0))
        elif design == "adaptive":
            engine = SmartAlarmEngine(
                AdaptiveThresholdAlarm("adaptive", ehr, patient.patient_id, rearm_time_s=300.0))
        else:
            engine = SmartAlarmEngine(
                AdaptiveThresholdAlarm("smart", ehr, patient.patient_id, rearm_time_s=300.0),
                corroboration_rules=spo2_wire_disconnection_rules())

        times = np.arange(SAMPLE_PERIOD_S, DURATION_S, SAMPLE_PERIOD_S)
        for time in times:
            spo2 = patient.baseline_spo2 + rng.normal(0.0, 0.5)
            heart_rate = patient.baseline_heart_rate_bpm + rng.normal(0.0, 2.0)
            map_mmhg = 90.0 + rng.normal(0.0, 2.0)
            if episode and episode[0] <= time <= episode[1]:
                progress = min(1.0, (time - episode[0]) / 600.0)
                spo2 -= 12.0 * progress
                heart_rate += 20.0 * progress
                map_mmhg -= 20.0 * progress
            if any(abs(time - artefact) < SAMPLE_PERIOD_S for artefact in artefact_times):
                spo2 = rng.uniform(20.0, 60.0)  # probe fell off; circulation unchanged
            engine.observe(float(time), "map", float(map_mmhg))
            engine.observe(float(time), "ecg_heart_rate", float(heart_rate))
            engine.observe(float(time), "heart_rate", float(heart_rate))
            engine.observe(float(time), "spo2", float(spo2))

        episodes = [episode] if episode else []
        confusion = classify_alarms(engine.clinical_alarm_times, episodes, detection_lead_s=60.0)
        total_false += confusion.false_positives
        total_true_alarms += confusion.true_positives
        total_missed += confusion.false_negatives
        episodes_total += len(episodes)
        for alarm_time in engine.clinical_alarm_times:
            is_false = not (episode and episode[0] - 60.0 <= alarm_time <= episode[1])
            alarm_stream.append((alarm_time, is_false))

    # Alarm fatigue: what fraction of *true* alarms would the caregiver miss?
    fatigue = AlarmFatigueModel()
    responses = fatigue.simulate_responses(alarm_stream, rng=np.random.default_rng(1))
    missed_by_fatigue = sum(1 for (time, is_false), responded in zip(sorted(alarm_stream), responses)
                            if not is_false and not responded)
    return {
        "false_alarms": total_false,
        "true_alarms": total_true_alarms,
        "missed_episodes": total_missed,
        "episodes": episodes_total,
        "true_alarms_missed_by_fatigue": missed_by_fatigue,
    }


def test_e4_smart_alarms(benchmark):
    designs = ("fixed", "adaptive", "smart")
    results = benchmark.pedantic(
        lambda: {design: _simulate_cohort(design) for design in designs}, rounds=1, iterations=1
    )

    table = Table(
        "E4: false-alarm reduction from adaptive thresholds and multivariate correlation",
        ["alarm design", "false_alarms", "true_alarms", "missed_episodes",
         "true_alarms_missed_by_fatigue"],
        notes=f"{COHORT}-patient cohort, 40% athletes, probe-off artefacts + genuine desaturations",
    )
    for design in designs:
        r = results[design]
        table.add_row(design, r["false_alarms"], r["true_alarms"], r["missed_episodes"],
                      r["true_alarms_missed_by_fatigue"])
    emit(table)

    assert results["adaptive"]["false_alarms"] <= results["fixed"]["false_alarms"]
    assert results["smart"]["false_alarms"] <= results["adaptive"]["false_alarms"]
    assert results["smart"]["missed_episodes"] <= results["fixed"]["missed_episodes"] + 1
