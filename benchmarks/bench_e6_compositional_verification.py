"""E6: compositional verification scalability (Sections III(l), III(n)).

A family of device-network models of growing size (one supervisor-style
monitor plus N pumps, each pump synchronising with the monitor on alarm /
clear actions) is verified for the global safety property "no pump infuses
while disabled".  Three strategies are compared on work performed (successor
computations) and states explored:

* monolithic explicit reachability on the full composition;
* bounded model checking on the full composition;
* assume-guarantee reasoning with one contract per component.

The paper's claim is the scaling shape: monolithic work grows with the
product of component state spaces, compositional work with their sum.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.verification.assume_guarantee import Contract, assume_guarantee_check
from repro.verification.bmc import bounded_model_check
from repro.verification.reachability import check_invariant
from repro.verification.transition_system import Rule, TransitionSystem, compose_many

PUMP_COUNTS = (1, 2, 3, 4)


def make_pump(index):
    infusing = f"infusing{index}"
    enabled = f"enabled{index}"
    return TransitionSystem(
        f"pump{index}",
        variables={infusing: (False, True), enabled: (True, False)},
        initial_states=[{infusing: False, enabled: True}],
        rules=[
            Rule(guard=lambda s, e=enabled, i=infusing: s[e] and not s[i],
                 update=lambda s, i=infusing: {i: True}, name=f"start{index}"),
            Rule(guard=lambda s, i=infusing: s[i],
                 update=lambda s, i=infusing: {i: False}, name=f"finish{index}"),
            Rule(guard=lambda s: True,
                 update=lambda s, e=enabled, i=infusing: {e: False, i: False},
                 label="alarm", name=f"disable{index}"),
            Rule(guard=lambda s, e=enabled: not s[e],
                 update=lambda s, e=enabled: {e: True}, label="clear", name=f"enable{index}"),
        ],
    )


def make_monitor():
    return TransitionSystem(
        "monitor",
        variables={"danger": (False, True)},
        initial_states=[{"danger": False}],
        rules=[
            Rule(guard=lambda s: not s["danger"], update=lambda s: {"danger": True}, name="deteriorate"),
            Rule(guard=lambda s: s["danger"], update=lambda s: {}, label="alarm", name="alarm"),
            Rule(guard=lambda s: s["danger"], update=lambda s: {"danger": False}, label="clear",
                 name="clear"),
        ],
    )


def safety_property(pumps):
    def prop(state):
        for index in range(pumps):
            if state.get(f"infusing{index}", False) and not state.get(f"enabled{index}", True):
                return False
        return True
    return prop


def run_family():
    rows = []
    for pumps in PUMP_COUNTS:
        components = [make_monitor()] + [make_pump(i) for i in range(pumps)]
        composed = compose_many(list(components), name=f"network-{pumps}")
        prop = safety_property(pumps)

        monolithic = check_invariant(composed, prop)
        bmc = bounded_model_check(composed, prop, bound=8)
        contracts = [Contract(component="monitor", assumption=lambda s: True, guarantee=lambda s: True)]
        for index in range(pumps):
            contracts.append(Contract(
                component=f"pump{index}",
                assumption=lambda s: True,
                guarantee=lambda s, i=index: not (s[f"infusing{i}"] and not s[f"enabled{i}"]),
            ))
        compositional = assume_guarantee_check(components, contracts, prop)
        assert monolithic.holds and bmc.safe_within_bound and compositional.holds
        rows.append((pumps, monolithic, bmc, compositional))
    return rows


def test_e6_compositional_verification(benchmark):
    rows = benchmark.pedantic(run_family, rounds=1, iterations=1)

    table = Table(
        "E6: verification work vs number of composed pump devices",
        ["pumps", "monolithic_states", "monolithic_work", "bmc_work",
         "assume_guarantee_states", "assume_guarantee_work"],
        notes="monolithic work grows with the product of component state spaces, compositional with their sum",
    )
    for pumps, monolithic, bmc, compositional in rows:
        table.add_row(pumps, monolithic.states_explored, monolithic.work_units, bmc.work_units,
                      compositional.total_states, compositional.total_work)
    emit(table)

    # Scaling shape: monolithic grows much faster than assume-guarantee.
    first, last = rows[0], rows[-1]
    monolithic_growth = last[1].work_units / max(1, first[1].work_units)
    compositional_growth = last[3].total_work / max(1, first[3].total_work)
    assert monolithic_growth > compositional_growth
