"""E10: supervisory adaptive control under patient-parameter uncertainty (Section III(g)).

A closed-loop sedation-depth controller titrates a continuous infusion to
hold a target effect (analgesia level) across a population whose drug
sensitivity spans a wide range.  A single fixed-gain PID (tuned for the
nominal patient) is compared with a Morse-style supervisory adaptive
controller that switches between candidate controllers tuned for low /
nominal / high sensitivity.  Metrics: tracking error and overshoot into the
respiratory-depression danger zone.
"""

import numpy as np

from conftest import emit

from repro.analysis.stats import summarise
from repro.analysis.tables import Table
from repro.control.pid import PIDController, PIDGains
from repro.control.supervisory import CandidateController, SupervisoryAdaptiveController, SupervisoryConfig
from repro.patient.model import PatientModel
from repro.patient.population import PatientPopulation

TARGET_ANALGESIA = 0.6
DANGER_DEPRESSION = 0.5
STEP_MIN = 1.0
DURATION_MIN = 180
MAX_RATE_MG_PER_MIN = 0.4


def _make_pid(gain_scale):
    """A PID tuned for a patient of the given sensitivity (gain) hypothesis.

    The fixed-gain comparator uses the controller tuned for the *resistant*
    (low-sensitivity) end of the range -- the clinically tempting choice,
    because it reaches the analgesia target fastest for the average patient --
    which is exactly the controller that overshoots sensitive patients into
    respiratory depression.
    """
    return PIDController(PIDGains(kp=1.2 / gain_scale, ki=0.05 / gain_scale),
                         output_min=0.0, output_max=MAX_RATE_MG_PER_MIN, setpoint=TARGET_ANALGESIA)


def _make_adaptive():
    candidates = []
    for name, sensitivity in (("low", 0.5), ("nominal", 1.0), ("high", 2.2)):
        candidates.append(CandidateController(
            name=name,
            controller=_make_pid(sensitivity),
            predictor=lambda output, dt, s=sensitivity: 0.08 * s * output * dt,
        ))
    return SupervisoryAdaptiveController(
        candidates, SupervisoryConfig(dwell_time_s=10.0, hysteresis=1.1, forgetting_factor=0.95))


def _run_patient(patient, controller_kind):
    patient_model = PatientModel(patient)
    controller = _make_adaptive() if controller_kind == "adaptive" else _make_pid(0.5)
    errors, danger_minutes = [], 0
    for minute in range(DURATION_MIN):
        analgesia = patient_model.pd.analgesia()
        if controller_kind == "adaptive":
            rate = controller.update(minute * 60.0, analgesia, dt=STEP_MIN)
        else:
            rate = controller.update(analgesia, dt=STEP_MIN)
        patient_model.set_infusion_rate(rate)
        patient_model.advance_by(STEP_MIN)
        errors.append(abs(TARGET_ANALGESIA - patient_model.pd.analgesia()))
        if patient_model.pd.respiratory_depression() > DANGER_DEPRESSION:
            danger_minutes += 1
    return float(np.mean(errors[30:])), danger_minutes


def test_e10_adaptive_control(benchmark):
    population = PatientPopulation(seed=91)
    patients = population.sample(10, sensitive_fraction=0.4)

    def _run_all():
        results = {"fixed_pid": [], "adaptive": []}
        for patient in patients:
            for kind in results:
                results[kind].append(_run_patient(patient, kind))
        return results

    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = Table(
        "E10: fixed-gain PID vs supervisory adaptive control across patient sensitivity range",
        ["controller", "mean_tracking_error", "worst_tracking_error", "patients_in_danger",
         "total_danger_minutes"],
        notes=f"target analgesia {TARGET_ANALGESIA}; danger = respiratory depression > {DANGER_DEPRESSION}",
    )
    summary = {}
    for kind, rows in results.items():
        tracking = summarise([error for error, _ in rows])
        danger_minutes = sum(minutes for _, minutes in rows)
        patients_in_danger = sum(1 for _, minutes in rows if minutes > 0)
        summary[kind] = (tracking.mean, danger_minutes)
        table.add_row(kind, tracking.mean, tracking.maximum, patients_in_danger, danger_minutes)
    emit(table)

    # Shape: the adaptive supervisor avoids the danger-zone excursions the
    # aggressively tuned fixed controller causes in sensitive patients, while
    # keeping tracking in the same ballpark.
    assert summary["adaptive"][1] < summary["fixed_pid"][1]
    assert summary["adaptive"][0] <= summary["fixed_pid"][0] + 0.05
