"""FIG1: the PCA control loop of Figure 1 and its delay budget.

Reproduces the structure of Figure 1: a single closed-loop PCA run showing
the loop reacting to a developing respiratory depression, plus the delay
budget table annotated in the figure (signal processing time, algorithm
processing time, pump stop delay, and the network terms the ICE middleware
adds).
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.delays import loop_delay_budget, max_additional_drug_during_reaction
from repro.core.loop import ClosedLoopPCASystem, PCASystemConfig
from repro.devices.pca_pump import PCAPrescription
from repro.patient.population import PatientPopulation


def _run_control_loop():
    patient = PatientPopulation(seed=21).sample_one("fig1-patient", sensitive=True)
    prescription = PCAPrescription(bolus_dose_mg=1.5, lockout_interval_s=300.0,
                                   hourly_limit_mg=12.0, basal_rate_mg_per_hr=2.0)
    config = PCASystemConfig(mode="closed_loop", duration_s=2.0 * 3600.0, patient=patient,
                             prescription=prescription, seed=7)
    system = ClosedLoopPCASystem(config)
    result = system.run()
    return system, result


def test_fig1_control_loop(benchmark):
    system, result = benchmark.pedantic(_run_control_loop, rounds=1, iterations=1)

    budget = loop_delay_budget(
        sensor_sample_period_s=system.config.oximeter.sample_period_s,
        signal_processing_delay_s=system.config.oximeter.signal_processing_delay_s,
        uplink_latency_s=system.config.bus.uplink.latency_s,
        supervisor_step_period_s=system.supervisor.step_period_s,
        algorithm_delay_s=system.config.algorithm_delay_s,
        command_latency_s=system.config.bus.uplink.latency_s,
        pump_stop_delay_s=system.config.pump_command_delay_s,
    )
    table = Table("FIG1a: control-loop delay budget (Figure 1 annotations)",
                  ["component", "nominal_s", "worst_case_s"])
    for row in budget.as_rows():
        table.add_row(row["component"], row["nominal_s"], row["worst_case_s"])
    emit(table)

    extra_drug = max_additional_drug_during_reaction(
        budget, basal_rate_mg_per_hr=system.config.prescription.basal_rate_mg_per_hr,
        pending_bolus_mg=system.config.prescription.bolus_dose_mg)
    loop_table = Table("FIG1b: closed-loop run summary",
                       ["metric", "value"])
    loop_table.add_row("min SpO2 (%)", result.min_spo2)
    loop_table.add_row("supervisor stops", result.supervisor_stops)
    loop_table.add_row("supervisor resumes", result.supervisor_resumes)
    loop_table.add_row("boluses delivered", result.boluses_delivered)
    loop_table.add_row("worst-case reaction time (s)", budget.worst_case_total_s)
    loop_table.add_row("max drug during reaction (mg)", extra_drug)
    loop_table.add_row("respiratory failure events", result.respiratory_failure_events)
    emit(loop_table)

    assert result.respiratory_failure_events == 0
    assert budget.worst_case_total_s < 60.0
