"""Campaign throughput: serial versus multiprocessing execution.

Measures runs/second of a PCA campaign through ``repro.campaign`` executed
serially and on a 2-worker (and, when the host allows, a cpu-count) pool,
and verifies the engine's core guarantee along the way: identical records
regardless of execution mode.  Parallel speedup is asserted only when the
host actually has >= 2 CPUs; on a single-CPU host the benchmark still
reports the (then overhead-dominated) parallel rate.
"""

import os
import time

from conftest import emit, emit_json

from repro.analysis.tables import Table
from repro.campaign import CampaignSpec, run_campaign

RUNS_PER_CONFIG = 8
DURATION_S = 1800.0


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="throughput",
        scenario="pca",
        parameters={
            "mode": ["open_loop", "closed_loop"],
            "duration_s": DURATION_S,
        },
        cohort_size=RUNS_PER_CONFIG,
        base_seed=33,
    )


def _timed_run(workers: int):
    started = time.perf_counter()
    report = run_campaign(_spec(), workers=workers)
    elapsed = time.perf_counter() - started
    return report, elapsed


def test_campaign_throughput(benchmark):
    cpus = os.cpu_count() or 1
    worker_counts = [1, 2]
    if cpus > 2:
        worker_counts.append(cpus)

    def run_all():
        return {workers: _timed_run(workers) for workers in worker_counts}

    timings = benchmark.pedantic(run_all, rounds=1, iterations=1)

    total_runs = _spec().grid_size()
    serial_report, serial_elapsed = timings[1]
    table = Table(
        f"Campaign throughput ({total_runs} PCA runs of {DURATION_S / 60:.0f} min, {cpus} CPUs)",
        ["workers", "elapsed (s)", "runs/s", "speedup"],
        notes="records are identical across worker counts by construction",
    )
    for workers in worker_counts:
        report, elapsed = timings[workers]
        table.add_row(workers, elapsed, total_runs / elapsed, serial_elapsed / elapsed)
    emit(table)

    best_parallel = min(
        (elapsed for workers, (_, elapsed) in timings.items() if workers > 1),
        default=serial_elapsed,
    )
    emit_json("campaign", {
        "total_runs": total_runs,
        "run_duration_s": DURATION_S,
        "cpus": cpus,
        "serial_elapsed_s": serial_elapsed,
        "serial_runs_per_s": total_runs / serial_elapsed,
        "best_parallel_elapsed_s": best_parallel,
        "best_parallel_runs_per_s": total_runs / best_parallel,
    })

    # The determinism guarantee that makes parallel campaigns trustworthy.
    for workers in worker_counts[1:]:
        assert timings[workers][0].records == serial_report.records

    # Parallel must pay off wherever parallel hardware exists.  Requiring a
    # real >=10% improvement (not mere parity) catches accidental
    # serialisation of the pool; the margin below a perfect 2x absorbs
    # normal load on shared hosts.
    if cpus >= 2:
        best = min(elapsed for workers, (report, elapsed) in timings.items()
                   if workers > 1)
        assert best < serial_elapsed * 0.9, (
            f"parallel execution showed no speedup over serial ({serial_elapsed:.2f}s)"
        )
