"""Campaign throughput: serial, multiprocessing, and sharded dispatch.

Measures runs/second of a PCA campaign through ``repro.campaign`` executed
serially, on a 2-worker (and, when the host allows, a cpu-count) pool, and
as a K-way shard/merge cycle (every shard run back-to-back on this box,
then ``ResultStore.merge``), verifying the engine's core guarantees along
the way: identical records regardless of execution mode, and a merged
``results.jsonl`` byte-identical to the serial store.

Run standalone for the CI regression gate::

    python benchmarks/bench_campaign_throughput.py --quick \
        --check-against BENCH_campaign.json --tolerance 0.30

The gate compares *simulated-seconds per wall second* (runs/s times the
simulated duration per run), which is comparable between the quick CI
workload and the committed full baseline, unlike raw runs/s.
"""

import argparse
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from conftest import emit, emit_json

from repro.analysis.tables import Table
from repro.campaign import CampaignSpec, ResultStore, ShardSelector, run_campaign

RUNS_PER_CONFIG = 8
DURATION_S = 1800.0
SHARDS = 4


def _spec(duration_s: float = DURATION_S) -> CampaignSpec:
    return CampaignSpec(
        name="throughput",
        scenario="pca",
        parameters={
            "mode": ["open_loop", "closed_loop"],
            "duration_s": duration_s,
        },
        cohort_size=RUNS_PER_CONFIG,
        base_seed=33,
    )


def _timed_run(workers: int, duration_s: float = DURATION_S):
    started = time.perf_counter()
    report = run_campaign(_spec(duration_s), workers=workers)
    elapsed = time.perf_counter() - started
    return report, elapsed


def run_sharded(duration_s: float, shards: int = SHARDS) -> dict:
    """Time a full shard/merge cycle and verify merged == serial bytes.

    All shards execute back-to-back on this box (the single-box worst case:
    a real fleet overlaps them), so ``runs_per_s`` here is the *dispatch
    overhead* floor of sharding — manifest partitioning, per-segment stores,
    and the merge — not a parallelism claim.
    """
    spec = _spec(duration_s)
    total = spec.grid_size()
    scratch = Path(tempfile.mkdtemp(prefix="bench-shard-"))
    try:
        serial_dir = scratch / "serial"
        started = time.perf_counter()
        run_campaign(spec, directory=serial_dir)
        serial_elapsed = time.perf_counter() - started

        segments = []
        shard_elapsed = 0.0
        for index in range(1, shards + 1):
            segment = scratch / f"seg-{index}"
            started = time.perf_counter()
            run_campaign(spec, directory=segment,
                         shard=ShardSelector(index, shards))
            shard_elapsed += time.perf_counter() - started
            segments.append(segment)

        merged_dir = scratch / "merged"
        started = time.perf_counter()
        result = ResultStore(merged_dir).merge(segments)
        merge_elapsed = time.perf_counter() - started

        serial_bytes = (serial_dir / "results.jsonl").read_bytes()
        merged_bytes = (merged_dir / "results.jsonl").read_bytes()
        assert merged_bytes == serial_bytes, (
            "sharded merge is not byte-identical to the serial store")
        assert result.records == total, result

        return {
            "shards": shards,
            "total_runs": total,
            "serial_store_elapsed_s": serial_elapsed,
            "shard_elapsed_s": shard_elapsed,
            "merge_elapsed_s": merge_elapsed,
            "elapsed_s": shard_elapsed + merge_elapsed,
            "runs_per_s": total / (shard_elapsed + merge_elapsed),
            "merged_sha256": result.merged_sha256,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def check_against(baseline_path: str, tolerance: float, duration_s: float,
                  serial_runs_per_s: float, sharded_runs_per_s: float) -> int:
    """Compare duration-invariant sim-s/s against the committed baseline."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    reference_duration = float(baseline["run_duration_s"])
    checks = [
        ("campaign serial sim-s/s", serial_runs_per_s * duration_s,
         float(baseline["serial_runs_per_s"]) * reference_duration),
    ]
    if "sharded" in baseline:
        checks.append(
            ("campaign sharded sim-s/s", sharded_runs_per_s * duration_s,
             float(baseline["sharded"]["runs_per_s"]) * reference_duration))
    status = 0
    for label, measured, reference in checks:
        floor = reference * (1.0 - tolerance)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(f"[bench-gate] {label}: measured {measured:,.0f} vs baseline "
              f"{reference:,.0f} (floor {floor:,.0f}, tolerance {tolerance:.0%}) "
              f"-> {verdict}")
        if measured < floor:
            status = 1
    if status:
        print(f"[bench-gate] FAILED against {baseline_path} — if the slowdown "
              f"is intentional, refresh the committed BENCH_campaign.json and "
              f"justify it in CHANGES.md")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=DURATION_S,
                        help="simulated seconds per PCA run")
    parser.add_argument("--shards", type=int, default=SHARDS,
                        help="shard count for the dispatch measurement")
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload for CI (10-minute runs)")
    parser.add_argument("--skip-parallel", action="store_true",
                        help="skip the multiprocessing measurement (the "
                             "sharded cycle and gate do not need it)")
    parser.add_argument("--check-against", metavar="BASELINE_JSON",
                        help="compare against a committed BENCH_campaign.json "
                             "and exit 1 on regression beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression before the gate "
                             "fails (default 0.30 for noisy runners)")
    parser.add_argument("--best-of", type=int, default=0, metavar="N",
                        help="repeat each measurement N times and keep the "
                             "fastest (default: 3 when checking, else 1)")
    args = parser.parse_args(argv)

    duration_s = 600.0 if args.quick else args.duration
    attempts = args.best_of or (3 if args.check_against else 1)
    cpus = os.cpu_count() or 1
    total = _spec(duration_s).grid_size()

    serial_samples = [_timed_run(1, duration_s) for _ in range(attempts)]
    serial_report, serial_elapsed = min(serial_samples, key=lambda s: s[1])
    serial_runs_per_s = total / serial_elapsed
    print(f"campaign serial: {total} runs in {serial_elapsed:.2f}s -> "
          f"{serial_runs_per_s:.2f} runs/s"
          + (f" (best of {attempts})" if attempts > 1 else ""))

    parallel_runs_per_s = None
    if not args.skip_parallel:
        parallel_report, parallel_elapsed = min(
            (_timed_run(2, duration_s) for _ in range(attempts)),
            key=lambda s: s[1])
        parallel_runs_per_s = total / parallel_elapsed
        assert parallel_report.records == serial_report.records
        print(f"campaign 2-worker: {total} runs in {parallel_elapsed:.2f}s -> "
              f"{parallel_runs_per_s:.2f} runs/s")

    sharded = min((run_sharded(duration_s, args.shards)
                   for _ in range(attempts)),
                  key=lambda sample: sample["elapsed_s"])
    print(f"campaign sharded: {args.shards} shards x "
          f"{total // args.shards} runs + merge in "
          f"{sharded['elapsed_s']:.2f}s -> {sharded['runs_per_s']:.2f} runs/s "
          f"(merge {sharded['merge_elapsed_s'] * 1000:.0f}ms, "
          f"merged == serial bytes)")

    payload = {
        "workload": "quick" if args.quick else "full",
        "total_runs": total,
        "run_duration_s": duration_s,
        "cpus": cpus,
        "serial_elapsed_s": serial_elapsed,
        "serial_runs_per_s": serial_runs_per_s,
        "sharded": {key: value for key, value in sharded.items()
                    if key != "merged_sha256"},
    }
    if parallel_runs_per_s is not None:
        payload["best_parallel_elapsed_s"] = total / parallel_runs_per_s
        payload["best_parallel_runs_per_s"] = parallel_runs_per_s
    emit_json("campaign", payload)

    if args.check_against:
        return check_against(args.check_against, args.tolerance, duration_s,
                             serial_runs_per_s, sharded["runs_per_s"])
    return 0


def test_campaign_throughput(benchmark):
    cpus = os.cpu_count() or 1
    worker_counts = [1, 2]
    if cpus > 2:
        worker_counts.append(cpus)

    def run_all():
        return {workers: _timed_run(workers) for workers in worker_counts}

    timings = benchmark.pedantic(run_all, rounds=1, iterations=1)

    total_runs = _spec().grid_size()
    serial_report, serial_elapsed = timings[1]
    sharded = run_sharded(DURATION_S)
    table = Table(
        f"Campaign throughput ({total_runs} PCA runs of {DURATION_S / 60:.0f} min, {cpus} CPUs)",
        ["workers", "elapsed (s)", "runs/s", "speedup"],
        notes="records are identical across worker counts by construction",
    )
    for workers in worker_counts:
        report, elapsed = timings[workers]
        table.add_row(workers, elapsed, total_runs / elapsed, serial_elapsed / elapsed)
    table.add_row(f"{sharded['shards']} shards", sharded["elapsed_s"],
                  sharded["runs_per_s"],
                  serial_elapsed / sharded["elapsed_s"])
    emit(table)

    best_parallel = min(
        (elapsed for workers, (_, elapsed) in timings.items() if workers > 1),
        default=serial_elapsed,
    )
    emit_json("campaign", {
        "total_runs": total_runs,
        "run_duration_s": DURATION_S,
        "cpus": cpus,
        "serial_elapsed_s": serial_elapsed,
        "serial_runs_per_s": total_runs / serial_elapsed,
        "best_parallel_elapsed_s": best_parallel,
        "best_parallel_runs_per_s": total_runs / best_parallel,
        "sharded": {key: value for key, value in sharded.items()
                    if key != "merged_sha256"},
    })

    # The determinism guarantee that makes parallel campaigns trustworthy.
    for workers in worker_counts[1:]:
        assert timings[workers][0].records == serial_report.records

    # Parallel must pay off wherever parallel hardware exists.  Requiring a
    # real >=10% improvement (not mere parity) catches accidental
    # serialisation of the pool; the margin below a perfect 2x absorbs
    # normal load on shared hosts.
    if cpus >= 2:
        best = min(elapsed for workers, (report, elapsed) in timings.items()
                   if workers > 1)
        assert best < serial_elapsed * 0.9, (
            f"parallel execution showed no speedup over serial ({serial_elapsed:.2f}s)"
        )


if __name__ == "__main__":
    raise SystemExit(main())
