"""Kernel hot-path benchmark: raw event dispatch plus one real scenario.

Two workloads, one trajectory file:

1. A synthetic 1M-event micro-benchmark that exercises exactly the kernel's
   hot loop — self-rescheduling callback chains (one ``heappush`` + one
   ``heappop`` per event) with a sprinkling of cancelled decoy events so the
   cancelled-head discard path is measured too.  Reported as events/s.
2. A full closed-loop PCA scenario run through the campaign registry's
   runner (the unit of work every campaign multiplies by thousands).
   Reported as runs/s.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py
    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py --quick  # CI

Emits ``BENCH_kernel.json`` (events/s, runs/s, git sha, ISO timestamp) via
the shared emitter in ``conftest.py`` — the machine-readable perf trajectory
future PRs must defend.

Regression gate (CI)::

    python benchmarks/bench_kernel_hotpath.py --quick --check-against BENCH_kernel.json

``--check-against`` compares this run against a committed baseline file and
exits non-zero on a regression beyond ``--tolerance`` (default 30%, sized
for noisy shared runners).  Because the quick workload runs a shorter PCA
scenario than the committed full baseline, the PCA comparison uses the
duration-invariant *simulated seconds per wall second* (``runs_per_s *
pca_duration_s``); events/s is workload-size-invariant already.  Each
measurement is the best of ``--best-of`` attempts (default 3 when checking)
so one scheduler hiccup cannot fail the gate.
"""

import argparse
import json
import time

from conftest import emit_json

from repro.sim.kernel import Simulator

#: Concurrent self-rescheduling chains (sets the steady-state heap depth).
CHAINS = 64
#: Every DECOY_EVERY-th chain hop also schedules-then-cancels a decoy event.
DECOY_EVERY = 8


def run_synthetic(n_events: int) -> float:
    """Dispatch ``n_events`` through the hot loop; returns events/s."""
    sim = Simulator()

    def make_chain(delay: float, index: int):
        counter = [0]

        def hop() -> None:
            counter[0] += 1
            if counter[0] % DECOY_EVERY == 0:
                sim.schedule(delay * 2.0, hop).cancel()
            sim.schedule(delay, hop)

        return hop

    for i in range(CHAINS):
        delay = 0.25 + 0.01 * i
        sim.schedule(delay, make_chain(delay, i))

    started = time.perf_counter()
    sim.run(max_events=n_events)
    elapsed = time.perf_counter() - started
    assert sim.event_count == n_events
    return n_events / elapsed


def run_synthetic_baseline(n_events: int, attempts: int) -> float:
    """Best-of disabled-mode synthetic rate, forcing repro.obs off.

    Forcing keeps the headline (and gated) events/s comparable to the
    committed baseline even when the process runs under ``REPRO_OBS=1``.
    """
    from repro.obs import metrics as obs

    was_enabled = obs.enabled()
    obs.disable()
    try:
        return max(run_synthetic(n_events) for _ in range(attempts))
    finally:
        if was_enabled:
            obs.enable()


def run_synthetic_obs(n_events: int, attempts: int) -> dict:
    """Best-of enabled-mode synthetic rate plus the registry's own view.

    Returns the measured events/s, the registry-derived rate
    (``kernel.events_fired / kernel.wall_seconds_total`` — the number a
    metrics consumer would compute from a snapshot), and the peak heap
    depth the instrumented kernel observed.
    """
    from repro.obs import metrics as obs

    was_enabled = obs.enabled()
    obs.enable()
    registry = obs.registry()
    registry.reset()
    try:
        measured = max(run_synthetic(n_events) for _ in range(attempts))
    finally:
        if not was_enabled:
            obs.disable()
    fired = registry.counter("kernel.events_fired").value
    wall = registry.counter("kernel.wall_seconds_total").value
    heap_peak = registry.gauge("kernel.heap_peak", agg="max").value
    stats = {
        "events_per_s": measured,
        "registry_events_per_s": (fired / wall) if wall > 0 else 0.0,
        "events_fired": fired,
        "heap_peak": heap_peak,
    }
    registry.reset()
    return stats


def run_pca(runs: int, duration_s: float) -> tuple:
    """Execute ``runs`` seeded PCA scenario runs; returns (runs/s, elapsed)."""
    from repro.campaign.registry import get_scenario

    scenario = get_scenario("pca")
    params = scenario.resolved_params({"duration_s": duration_s})
    started = time.perf_counter()
    for seed in range(runs):
        scenario.runner(dict(params), 1000 + seed)
    elapsed = time.perf_counter() - started
    return runs / elapsed, elapsed


def check_against(baseline_path: str, tolerance: float,
                  events_per_s: float, runs_per_s: float, pca_duration: float) -> int:
    """Compare this run to a committed baseline record; returns exit status.

    Metrics compared:

    * ``events_per_s`` — synthetic kernel dispatch rate (size-invariant).
    * simulated-seconds/s — ``runs_per_s * pca_duration_s``, which is
      comparable between the quick (1 h) CI run and the committed full
      (3 h) baseline, unlike raw runs/s.
    """
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    checks = [
        ("events/s", events_per_s, float(baseline["events_per_s"])),
        ("pca sim-s/s", runs_per_s * pca_duration,
         float(baseline["runs_per_s"]) * float(baseline["pca_duration_s"])),
    ]
    status = 0
    for label, measured, reference in checks:
        floor = reference * (1.0 - tolerance)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(f"[bench-gate] {label}: measured {measured:,.0f} vs baseline "
              f"{reference:,.0f} (floor {floor:,.0f}, tolerance {tolerance:.0%}) "
              f"-> {verdict}")
        if measured < floor:
            status = 1
    if status:
        print(f"[bench-gate] FAILED against {baseline_path} — if the slowdown "
              f"is intentional, refresh the committed BENCH_kernel.json and "
              f"justify it in CHANGES.md")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=1_000_000,
                        help="synthetic micro-benchmark event count")
    parser.add_argument("--pca-runs", type=int, default=3,
                        help="number of timed PCA scenario runs")
    parser.add_argument("--pca-duration", type=float, default=3.0 * 3600.0,
                        help="simulated seconds per PCA run")
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload for CI (200k events, 1 short run)")
    parser.add_argument("--check-against", metavar="BASELINE_JSON",
                        help="compare against a committed BENCH_kernel.json and "
                             "exit 1 on regression beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression before the gate "
                             "fails (default 0.30 for noisy runners)")
    parser.add_argument("--best-of", type=int, default=0, metavar="N",
                        help="repeat each measurement N times and keep the "
                             "fastest (default: 3 when checking, else 1)")
    parser.add_argument("--obs-overhead-gate", type=float, default=None,
                        metavar="FRAC",
                        help="fail (exit 1) if enabled-observability overhead "
                             "on the synthetic events/s exceeds FRAC "
                             "(e.g. 0.10 for a 10%% budget)")
    args = parser.parse_args(argv)

    n_events = 200_000 if args.quick else args.events
    pca_runs = 1 if args.quick else args.pca_runs
    pca_duration = 3600.0 if args.quick else args.pca_duration
    gating = bool(args.check_against) or args.obs_overhead_gate is not None
    attempts = args.best_of or (3 if gating else 1)

    events_per_s = run_synthetic_baseline(n_events, attempts)
    print(f"kernel synthetic: {n_events} events -> {events_per_s:,.0f} events/s"
          + (f" (best of {attempts})" if attempts > 1 else ""))

    obs_stats = run_synthetic_obs(n_events, attempts)
    obs_overhead = max(0.0, 1.0 - obs_stats["events_per_s"] / events_per_s)
    print(f"kernel synthetic (obs enabled): {obs_stats['events_per_s']:,.0f} "
          f"events/s (overhead {obs_overhead:.1%}, "
          f"heap peak {obs_stats['heap_peak']:.0f})")

    runs_per_s, pca_elapsed = max(
        (run_pca(pca_runs, pca_duration) for _ in range(attempts)),
        key=lambda sample: sample[0],
    )
    print(f"pca scenario: {pca_runs} x {pca_duration / 3600:.1f}h run(s) "
          f"in {pca_elapsed:.2f}s -> {runs_per_s:.3f} runs/s"
          + (f" (best of {attempts})" if attempts > 1 else ""))

    emit_json("kernel", {
        "workload": "quick" if args.quick else "full",
        "synthetic_events": n_events,
        "events_per_s": events_per_s,
        "pca_runs": pca_runs,
        "pca_duration_s": pca_duration,
        "pca_elapsed_s": pca_elapsed,
        "runs_per_s": runs_per_s,
        "obs_metrics": dict(obs_stats, overhead_frac=obs_overhead),
    })

    status = 0
    if args.obs_overhead_gate is not None:
        if obs_overhead > args.obs_overhead_gate:
            print(f"[obs-gate] FAILED: enabled-observability overhead "
                  f"{obs_overhead:.1%} exceeds the "
                  f"{args.obs_overhead_gate:.0%} budget")
            status = 1
        else:
            print(f"[obs-gate] ok: overhead {obs_overhead:.1%} within "
                  f"{args.obs_overhead_gate:.0%}")
    if args.check_against:
        status = check_against(args.check_against, args.tolerance,
                               events_per_s, runs_per_s, pca_duration) or status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
