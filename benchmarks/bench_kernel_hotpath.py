"""Kernel hot-path benchmark: raw event dispatch plus one real scenario.

Two workloads, one trajectory file:

1. A synthetic 1M-event micro-benchmark that exercises exactly the kernel's
   hot loop — self-rescheduling callback chains (one ``heappush`` + one
   ``heappop`` per event) with a sprinkling of cancelled decoy events so the
   cancelled-head discard path is measured too.  Reported as events/s.
2. A full closed-loop PCA scenario run through the campaign registry's
   runner (the unit of work every campaign multiplies by thousands).
   Reported as runs/s.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py
    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py --quick  # CI

Emits ``BENCH_kernel.json`` (events/s, runs/s, git sha, ISO timestamp) via
the shared emitter in ``conftest.py`` — the machine-readable perf trajectory
future PRs must defend.
"""

import argparse
import time

from conftest import emit_json

from repro.sim.kernel import Simulator

#: Concurrent self-rescheduling chains (sets the steady-state heap depth).
CHAINS = 64
#: Every DECOY_EVERY-th chain hop also schedules-then-cancels a decoy event.
DECOY_EVERY = 8


def run_synthetic(n_events: int) -> float:
    """Dispatch ``n_events`` through the hot loop; returns events/s."""
    sim = Simulator()

    def make_chain(delay: float, index: int):
        counter = [0]

        def hop() -> None:
            counter[0] += 1
            if counter[0] % DECOY_EVERY == 0:
                sim.schedule(delay * 2.0, hop).cancel()
            sim.schedule(delay, hop)

        return hop

    for i in range(CHAINS):
        delay = 0.25 + 0.01 * i
        sim.schedule(delay, make_chain(delay, i))

    started = time.perf_counter()
    sim.run(max_events=n_events)
    elapsed = time.perf_counter() - started
    assert sim.event_count == n_events
    return n_events / elapsed


def run_pca(runs: int, duration_s: float) -> tuple:
    """Execute ``runs`` seeded PCA scenario runs; returns (runs/s, elapsed)."""
    from repro.campaign.registry import get_scenario

    scenario = get_scenario("pca")
    params = scenario.resolved_params({"duration_s": duration_s})
    started = time.perf_counter()
    for seed in range(runs):
        scenario.runner(dict(params), 1000 + seed)
    elapsed = time.perf_counter() - started
    return runs / elapsed, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=1_000_000,
                        help="synthetic micro-benchmark event count")
    parser.add_argument("--pca-runs", type=int, default=3,
                        help="number of timed PCA scenario runs")
    parser.add_argument("--pca-duration", type=float, default=3.0 * 3600.0,
                        help="simulated seconds per PCA run")
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload for CI (200k events, 1 short run)")
    args = parser.parse_args(argv)

    n_events = 200_000 if args.quick else args.events
    pca_runs = 1 if args.quick else args.pca_runs
    pca_duration = 3600.0 if args.quick else args.pca_duration

    events_per_s = run_synthetic(n_events)
    print(f"kernel synthetic: {n_events} events -> {events_per_s:,.0f} events/s")

    runs_per_s, pca_elapsed = run_pca(pca_runs, pca_duration)
    print(f"pca scenario: {pca_runs} x {pca_duration / 3600:.1f}h run(s) "
          f"in {pca_elapsed:.2f}s -> {runs_per_s:.3f} runs/s")

    emit_json("kernel", {
        "workload": "quick" if args.quick else "full",
        "synthetic_events": n_events,
        "events_per_s": events_per_s,
        "pca_runs": pca_runs,
        "pca_duration_s": pca_duration,
        "pca_elapsed_s": pca_elapsed,
        "runs_per_s": runs_per_s,
    })
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
