"""E2: control-loop delay and communication-failure tolerance.

The paper (Section II(c), Figure 1) requires the supervisor to account for
every delay source in the loop and to tolerate communication failures.  This
bench sweeps (a) the pump-stop command delay and (b) the length of an
oximeter-uplink outage, and reports how patient safety degrades -- showing the
margin the fail-safe (stop on stale data) behaviour buys.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.loop import ClosedLoopPCASystem, PCASystemConfig
from repro.devices.pca_pump import PCAPrescription
from repro.patient.population import PatientPopulation
from repro.sim.faults import FaultSpec

DURATION_S = 2.0 * 3600.0
PUMP_DELAYS_S = (0.5, 2.0, 10.0, 30.0)
OUTAGE_DURATIONS_S = (0.0, 60.0, 600.0, 1800.0)


def _patient():
    return PatientPopulation(seed=31).sample_one("e2-patient", sensitive=True)


def _run_pump_delay(delay_s):
    prescription = PCAPrescription(bolus_dose_mg=1.5, lockout_interval_s=300.0,
                                   hourly_limit_mg=12.0, basal_rate_mg_per_hr=2.0)
    faults = [FaultSpec(kind="misprogramming", start=900.0, target="pca-pump-1",
                        parameters={"rate_multiplier": 5.0})]
    config = PCASystemConfig(mode="closed_loop", duration_s=DURATION_S, patient=_patient(),
                             prescription=prescription, pump_command_delay_s=delay_s,
                             faults=faults, seed=42)
    return ClosedLoopPCASystem(config).run()


def _run_outage(duration_s):
    prescription = PCAPrescription(bolus_dose_mg=1.5, lockout_interval_s=300.0,
                                   hourly_limit_mg=12.0, basal_rate_mg_per_hr=2.0)
    faults = []
    if duration_s > 0:
        faults.append(FaultSpec(kind="channel_outage", start=1800.0, duration=duration_s,
                                target="uplink:pulse-ox-1"))
    config = PCASystemConfig(mode="closed_loop", duration_s=DURATION_S, patient=_patient(),
                             prescription=prescription, faults=faults, seed=42)
    system = ClosedLoopPCASystem(config)
    result = system.run()
    fail_safe_stops = sum(1 for event in system.supervisor.events if "stale" in event.reason)
    return result, fail_safe_stops


def test_e2_delay_and_outage_tolerance(benchmark):
    def _sweep():
        pump_rows = [(delay, _run_pump_delay(delay)) for delay in PUMP_DELAYS_S]
        outage_rows = [(duration, _run_outage(duration)) for duration in OUTAGE_DURATIONS_S]
        return pump_rows, outage_rows

    pump_rows, outage_rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    delay_table = Table("E2a: pump-stop delay sweep (misprogrammed basal rate)",
                        ["pump_stop_delay_s", "min_spo2", "time_spo2<90 (s)", "harmed"])
    for delay, result in pump_rows:
        delay_table.add_row(delay, result.min_spo2, result.time_below_spo2_90_s, result.harmed)
    emit(delay_table)

    outage_table = Table("E2b: oximeter-uplink outage sweep (fail-safe on stale data)",
                         ["outage_s", "fail_safe_stops", "min_spo2", "harmed"])
    for duration, (result, fail_safe_stops) in outage_rows:
        outage_table.add_row(duration, fail_safe_stops, result.min_spo2, result.harmed)
    emit(outage_table)

    # Shape: longer pump-stop delays cannot make the patient safer.
    min_spo2s = [result.min_spo2 for _, result in pump_rows]
    assert min_spo2s[0] >= min_spo2s[-1] - 1.0
    # Outages trigger fail-safe stops rather than harm.
    assert all(not result.harmed for _, (result, _) in outage_rows)
    assert outage_rows[-1][1][1] >= 1
