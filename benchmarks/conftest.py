"""Shared configuration for the experiment benchmarks.

Each benchmark reproduces one experiment from DESIGN.md / EXPERIMENTS.md and
prints the table or series the paper's claim corresponds to, in addition to
timing the run via pytest-benchmark.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def emit(table) -> None:
    """Print an experiment table so it appears in the benchmark output."""
    print()
    print(table.render())
