"""Shared configuration for the experiment benchmarks.

Each benchmark reproduces one experiment from DESIGN.md / EXPERIMENTS.md and
prints the table or series the paper's claim corresponds to, in addition to
timing the run via pytest-benchmark.

Performance-trajectory benchmarks additionally emit machine-readable
``BENCH_<name>.json`` records via :func:`emit_json`.  Every emitted record —
printed or written — carries the git sha and an ISO timestamp so the numbers
stay attributable across PRs.
"""

import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

REPO_ROOT = Path(__file__).resolve().parents[1]


def git_sha() -> str:
    """Current commit sha, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def bench_meta() -> dict:
    """The attribution fields stamped onto every emitted benchmark record."""
    return {
        "git_sha": git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }


def emit(table) -> None:
    """Print an experiment table so it appears in the benchmark output."""
    meta = bench_meta()
    print()
    print(table.render())
    print(f"[bench-meta] git_sha={meta['git_sha']} timestamp={meta['timestamp']}")


def emit_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` (payload + git sha + ISO timestamp).

    The output directory defaults to the repository root so the trajectory
    files sit next to ROADMAP.md; override with the ``BENCH_DIR`` env var
    (CI points it at the artifact upload directory).
    """
    directory = Path(os.environ.get("BENCH_DIR", REPO_ROOT))
    directory.mkdir(parents=True, exist_ok=True)
    record = dict(payload)
    record.update(bench_meta())
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"[bench-json] wrote {path}")
    return path
