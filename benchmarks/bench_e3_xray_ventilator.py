"""E3: X-ray / ventilator synchronisation (Section II(b)).

Compares the three coordination designs the paper discusses -- uncoordinated
manual operation, automatic pause/restart, and ventilator-state broadcasting --
on image quality and apnoea (ventilation interruption) hazard, including the
effect of command loss on the pause/restart design and of transmission delay
on the state-broadcast design.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.scenarios.xray_vent import XRayVentilatorConfig, XRayVentilatorScenario

IMAGES = 10
PERIOD_S = 120.0


def _run(mode, **overrides):
    config = XRayVentilatorConfig(mode=mode, image_requests=IMAGES, request_period_s=PERIOD_S,
                                  seed=11, **overrides)
    return XRayVentilatorScenario(config).run()


def _all_modes():
    rows = []
    rows.append(("manual (5% forget restart)", _run("manual", forget_restart_probability=0.05)))
    rows.append(("manual (20% forget restart)", _run("manual", forget_restart_probability=0.20)))
    rows.append(("pause_restart (reliable network)", _run("pause_restart")))
    rows.append(("pause_restart (30% command loss)", _run("pause_restart", command_loss_probability=0.3)))
    rows.append(("pause_restart + apnea watchdog", _run("pause_restart", command_loss_probability=0.3,
                                                        apnea_watchdog_enabled=True)))
    rows.append(("state_broadcast (50 ms latency)", _run("state_broadcast", network_latency_s=0.05)))
    rows.append(("state_broadcast (400 ms latency)", _run("state_broadcast", network_latency_s=0.4)))
    return rows


def test_e3_xray_ventilator_coordination(benchmark):
    rows = benchmark.pedantic(_all_modes, rounds=1, iterations=1)

    table = Table(
        "E3: X-ray/ventilator coordination modes",
        ["configuration", "sharp", "blurred", "skipped_windows", "apnea_episodes",
         "max_apnea_s", "unsafe_apnea", "left_paused"],
        notes="state_broadcast removes the apnoea hazard; pause_restart depends on the resume reaching the ventilator",
    )
    by_name = {}
    for name, result in rows:
        by_name[name] = result
        table.add_row(name, result.sharp_images, result.blurred_images, result.skipped_windows,
                      result.apnea_episodes, result.max_apnea_time_s, result.unsafe_apnea_events,
                      result.ventilator_left_paused)
    emit(table)

    # Paper-shape checks.
    assert by_name["state_broadcast (50 ms latency)"].apnea_episodes == 0
    assert by_name["state_broadcast (50 ms latency)"].unsafe_apnea_events == 0
    assert (by_name["pause_restart (30% command loss)"].unsafe_apnea_events
            >= by_name["pause_restart (reliable network)"].unsafe_apnea_events)
    assert (by_name["pause_restart + apnea watchdog"].max_apnea_time_s
            <= by_name["pause_restart (30% command loss)"].max_apnea_time_s)
