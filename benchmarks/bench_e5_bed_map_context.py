"""E5: mixed-criticality bed / MAP context suppression (Section III(l)).

Raising the bed (a Class I device) steps the measured MAP without any
physiological change.  The bench compares a conventional MAP threshold alarm
with a context-aware alarm that correlates bed-height events, on false alarms
and missed genuine hypotension episodes, across a sweep of bed-move counts.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.scenarios.bed_map import BedMapConfig, BedMapScenario

BED_MOVE_COUNTS = (2, 6, 12)


def _sweep():
    rows = []
    for moves in BED_MOVE_COUNTS:
        for aware in (False, True):
            result = BedMapScenario(BedMapConfig(bed_moves=moves, use_context_awareness=aware,
                                                 seed=13)).run()
            rows.append((moves, aware, result))
    return rows


def test_e5_bed_map_context(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = Table(
        "E5: MAP false alarms vs bed moves, with and without context awareness",
        ["bed_moves", "context_aware", "clinical_alarms", "false_alarms", "suppressed",
         "true_episodes", "missed_episodes"],
        notes="context events from the Class I bed suppress artefact alarms on the Class II/III monitor",
    )
    for moves, aware, result in rows:
        table.add_row(moves, aware, result.clinical_alarms, result.false_alarm_count,
                      result.suppressed_alarms, result.true_episodes, result.missed_episodes)
    emit(table)

    for moves in BED_MOVE_COUNTS:
        baseline = next(r for m, aware, r in rows if m == moves and not aware)
        aware = next(r for m, a, r in rows if m == moves and a)
        assert aware.false_alarm_count <= baseline.false_alarm_count
        assert aware.missed_episodes == 0
