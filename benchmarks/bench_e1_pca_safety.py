"""E1: closed-loop PCA safety versus open-loop PCA with programmable limits.

Reproduces the paper's central closed-loop claim (Section II(c), citing Arney
et al. [4]): a supervisor that monitors pulse-oximetry / capnography and stops
the infusion prevents the overdose-induced respiratory failures that
programmable pump limits alone do not, across a population that includes
opioid-sensitive patients, misprogramming, and PCA-by-proxy events.
"""

from conftest import emit

from repro.analysis.metrics import aggregate_outcomes
from repro.analysis.tables import Table
from repro.core.loop import ClosedLoopPCASystem, PCASystemConfig
from repro.core.pca import SupervisorConfig
from repro.devices.pca_pump import PCAPrescription
from repro.patient.population import PatientPopulation
from repro.scenarios.pca_scenario import pca_fault_campaign

POPULATION_SIZE = 8
DURATION_S = 3.0 * 3600.0

MODES = ("open_loop", "open_loop_monitored", "closed_loop")
POLICIES = ("threshold", "fused")


def _population():
    return PatientPopulation(seed=101).sample(POPULATION_SIZE, sensitive_fraction=0.3)


def _run_mode(mode, policy="fused"):
    prescription = PCAPrescription(bolus_dose_mg=1.5, lockout_interval_s=300.0,
                                   hourly_limit_mg=12.0, basal_rate_mg_per_hr=1.5)
    results = []
    for index, patient in enumerate(_population()):
        faults = pca_fault_campaign(misprogramming_rate_multiplier=4.0) if index % 2 == 0 else []
        config = PCASystemConfig(
            mode=mode, duration_s=DURATION_S, patient=patient, prescription=prescription,
            supervisor=SupervisorConfig(policy=policy), faults=faults, seed=500 + index,
        )
        results.append(ClosedLoopPCASystem(config).run())
    return results


def test_e1_pca_safety(benchmark):
    all_results = benchmark.pedantic(
        lambda: {mode: _run_mode(mode) for mode in MODES}, rounds=1, iterations=1
    )

    table = Table(
        "E1: PCA safety across a patient population (misprogramming + PCA-by-proxy faults)",
        ["configuration", "patients", "harmed", "harm_rate", "failure_events",
         "mean_time_spo2<90 (s)", "mean_drug (mg)", "mean_pain"],
        notes="closed_loop should drive harm to ~0 while preserving analgesia",
    )
    outcomes = {}
    for mode in MODES:
        outcome = aggregate_outcomes(all_results[mode])
        outcomes[mode] = outcome
        table.add_row(mode, outcome.patients, outcome.harmed, outcome.harm_rate,
                      outcome.respiratory_failure_events, outcome.mean_time_in_danger_s,
                      outcome.mean_drug_mg, outcome.mean_pain)
    emit(table)

    # Supervisor-policy ablation on the closed loop.
    ablation = Table("E1-ablation: supervisor policy", ["policy", "harmed", "mean_time_spo2<90 (s)"])
    for policy in POLICIES:
        outcome = aggregate_outcomes(_run_mode("closed_loop", policy=policy))
        ablation.add_row(policy, outcome.harmed, outcome.mean_time_in_danger_s)
    emit(ablation)

    # Paper-shape assertions: closed loop strictly safer than open loop.
    assert outcomes["closed_loop"].harmed <= outcomes["open_loop"].harmed
    assert outcomes["closed_loop"].mean_time_in_danger_s <= outcomes["open_loop"].mean_time_in_danger_s
