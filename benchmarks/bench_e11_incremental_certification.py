"""E11: incremental re-certification after component upgrades (Section III(n)).

Builds a realistic assurance case for the closed-loop PCA system (goals over
overdose prevention, communication-failure tolerance, alarm integrity, and
security, each backed by evidence artefacts tied to components) and measures,
for a set of upgrade scenarios, how much evidence-regeneration work the
incremental approach needs compared with re-certifying from scratch.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.certification.evidence import Evidence, EvidenceStore
from repro.certification.gsn import AssuranceCase, GoalNode, SolutionNode, StrategyNode
from repro.certification.incremental import IncrementalCertifier


def build_case():
    case = AssuranceCase("closed-loop-pca")
    store = EvidenceStore()
    case.add(GoalNode("G1", "The closed-loop PCA system does not contribute to patient harm",
                      components={"system"}))
    case.add(StrategyNode("S1", "Argue over identified hazards"), parent_id="G1")
    goals = {
        "G2": ("Opioid overdose is prevented", {"supervisor", "pump", "oximeter"}),
        "G3": ("Communication failures are tolerated", {"middleware", "supervisor"}),
        "G4": ("Alarms reach the caregiver and are trustworthy", {"alarms", "ehr"}),
        "G5": ("Network attackers cannot reprogram devices", {"security", "middleware"}),
        "G6": ("Timing of the control loop meets its deadline", {"pump", "oximeter", "middleware"}),
    }
    for goal_id, (statement, components) in goals.items():
        case.add(GoalNode(goal_id, statement, components=components), parent_id="S1")

    evidence_defs = [
        ("E1", "k-induction proof of supervisor-pump interlock", "model_checking",
         {"supervisor", "pump"}, 8.0, "G2"),
        ("E2", "population simulation of closed-loop safety (bench E1)", "simulation",
         {"supervisor", "patient_model"}, 4.0, "G2"),
        ("E3", "fault-injection campaign on the device bus", "testing",
         {"middleware", "supervisor"}, 3.0, "G3"),
        ("E4", "QoS staleness fail-safe unit tests", "testing", {"supervisor"}, 1.0, "G3"),
        ("E5", "smart-alarm false-alarm evaluation (bench E4)", "simulation", {"alarms", "ehr"}, 2.0, "G4"),
        ("E6", "alarm-fatigue human-factors analysis", "analysis", {"alarms"}, 2.0, "G4"),
        ("E7", "attack campaign against command authorisation (bench E7)", "security_testing",
         {"security", "middleware"}, 3.0, "G5"),
        ("E8", "audit-log integrity verification", "testing", {"security"}, 1.0, "G5"),
        ("E9", "control-loop delay budget analysis (Figure 1)", "analysis",
         {"pump", "oximeter", "middleware"}, 1.0, "G6"),
        ("E10", "interface timing compatibility check", "analysis", {"middleware"}, 1.0, "G6"),
    ]
    for evidence_id, description, kind, components, cost, goal in evidence_defs:
        store.add(Evidence(evidence_id, description, kind, components=set(components),
                           regeneration_cost=cost))
        case.add(SolutionNode(f"Sn-{evidence_id}", description, evidence_id, components=set(components)),
                 parent_id=goal)
    return case, store


UPGRADES = [
    ("pulse oximeter firmware", {"oximeter"}),
    ("middleware / bus stack", {"middleware"}),
    ("supervisor algorithm", {"supervisor"}),
    ("pump + supervisor", {"pump", "supervisor"}),
    ("everything", {"supervisor", "pump", "oximeter", "middleware", "alarms", "ehr",
                    "security", "patient_model"}),
]


def test_e11_incremental_certification(benchmark):
    def _plan_all():
        rows = []
        for name, components in UPGRADES:
            case, store = build_case()
            certifier = IncrementalCertifier(case, store)
            assert certifier.check_well_formed() == []
            plan = certifier.plan_upgrade(components)
            rows.append((name, plan))
        return rows

    rows = benchmark.pedantic(_plan_all, rounds=3, iterations=1)

    table = Table(
        "E11: incremental vs full re-certification cost per upgrade",
        ["upgrade", "evidence_invalidated", "goals_affected", "goals_untouched",
         "incremental_cost", "full_cost", "saving_fraction"],
        notes="cost = sum of regeneration costs of the evidence that must be redone",
    )
    for name, plan in rows:
        table.add_row(name, len(plan.invalidated_evidence), len(plan.affected_goals),
                      len(plan.untouched_goals), plan.incremental_cost, plan.full_recert_cost,
                      plan.cost_saving_fraction)
    emit(table)

    partial = [plan for name, plan in rows if name != "everything"]
    assert all(plan.cost_saving_fraction > 0.0 for plan in partial)
    everything = rows[-1][1]
    assert everything.cost_saving_fraction == 0.0
