"""E9: static analysis of executable clinical workflows (Sections III(e), III(f)).

Starts from the clean closed-loop PCA scenario specification and seeds a
corpus of defective variants (dangling transitions, missing outcome coverage,
undeclared roles, unpublishable data flows, unsatisfiable device
requirements).  The bench reports how many seeded defects the static analysis
finds, per defect class, and the analysis runtime per scenario.
"""

import copy

from conftest import emit

from repro.analysis.tables import Table
from repro.devices.base import DeviceDescriptor
from repro.middleware.registry import DeviceRegistry
from repro.scenarios.pca_scenario import PCA_OUTCOME_ALPHABET, build_pca_scenario_spec
from repro.workflow.analysis import analyse_scenario, errors
from repro.workflow.spec import DataFlow, DecisionRule, ProcedureStep


def _registry(complete=True):
    registry = DeviceRegistry()
    registry.register(DeviceDescriptor(device_id="pump-1", device_type="pca_pump",
                                       published_topics=("pump_status",),
                                       accepted_commands=("stop", "resume")))
    registry.register(DeviceDescriptor(device_id="ox-1", device_type="pulse_oximeter",
                                       published_topics=("spo2", "heart_rate")))
    if complete:
        registry.register(DeviceDescriptor(device_id="cap-1", device_type="capnograph",
                                           published_topics=("respiratory_rate",)))
    return registry


def _seed_defects():
    """Return (name, scenario, alphabet, registry, expected_category) variants."""
    variants = []

    clean = build_pca_scenario_spec()
    variants.append(("clean", clean, PCA_OUTCOME_ALPHABET, _registry(), None))

    dangling = build_pca_scenario_spec()
    dangling.procedure.append(ProcedureStep(step_id="cleanup", role="nurse", action="x",
                                            next_steps={"ok": "does_not_exist"}))
    variants.append(("dangling_transition", dangling, PCA_OUTCOME_ALPHABET, _registry(),
                     "dangling_transition"))

    uncovered = build_pca_scenario_spec()
    alphabet = dict(PCA_OUTCOME_ALPHABET)
    alphabet["attach_sensors"] = ["ok", "sensor_fault", "patient_refuses"]
    variants.append(("uncovered_outcome", uncovered, alphabet, _registry(), "unhandled_outcome"))

    bad_role = build_pca_scenario_spec()
    bad_role.procedure.append(ProcedureStep(step_id="consult", role="surgeon", action="consult",
                                            next_steps={}))
    variants.append(("undeclared_role", bad_role, PCA_OUTCOME_ALPHABET, _registry(),
                     "undeclared_caregiver_role"))

    bad_flow = build_pca_scenario_spec()
    bad_flow.data_flows.append(DataFlow(source_role="spo2_source", topic="etco2",
                                        destination_role="supervisor"))
    variants.append(("unpublished_flow", bad_flow, PCA_OUTCOME_ALPHABET, _registry(),
                     "flow_topic_not_published"))

    bad_rule = build_pca_scenario_spec()
    bad_rule.decision_rules.append(DecisionRule(name="hold_breath", condition=lambda obs: False,
                                                target_role="spo2_source", command="pause"))
    variants.append(("rule_without_command", bad_rule, PCA_OUTCOME_ALPHABET, _registry(),
                     "rule_command_not_required"))

    undeployable = build_pca_scenario_spec()
    variants.append(("missing_capnograph_device", undeployable, PCA_OUTCOME_ALPHABET,
                     _registry(complete=False), "unsatisfiable_device_requirement"))
    return variants


def test_e9_workflow_analysis(benchmark):
    variants = _seed_defects()

    def _analyse_all():
        return [
            (name, analyse_scenario(scenario, outcome_alphabet=alphabet, registry=registry), expected)
            for name, scenario, alphabet, registry, expected in variants
        ]

    analysed = benchmark.pedantic(_analyse_all, rounds=3, iterations=1)

    table = Table(
        "E9: static workflow analysis on a defect-seeded scenario corpus",
        ["variant", "findings", "errors", "seeded_defect_found"],
        notes="the clean scenario should produce zero errors; every seeded defect class should be caught",
    )
    caught = 0
    seeded = 0
    for name, findings, expected in analysed:
        found = expected is not None and any(f.category == expected for f in findings)
        if expected is not None:
            seeded += 1
            caught += 1 if found else 0
        table.add_row(name, len(findings), len(errors(findings)), found if expected else "n/a")
    emit(table)

    clean_findings = analysed[0][1]
    assert errors(clean_findings) == []
    assert caught == seeded
