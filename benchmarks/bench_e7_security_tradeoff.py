"""E7: security posture versus closed-loop capability (Section III(m)).

Runs a standard attack campaign (external reprogramming, replay, flooding,
and a compromised-insider attack) against the three network-command postures
-- open, allowlisted, data-only -- and simultaneously reports whether the
closed-loop PCA supervisor can still do its job under each posture.  This is
the paper's flexibility-versus-security balance as one table.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.loop import ClosedLoopPCASystem, PCASystemConfig
from repro.core.pca import SupervisorConfig
from repro.devices.pca_pump import PCAPrescription
from repro.patient.population import PatientPopulation
from repro.security.attacks import AttackCampaign, standard_reprogramming_campaign
from repro.security.auth import DeviceAuthenticator
from repro.security.policy import (
    CommandAuthorizationPolicy,
    SecurityPosture,
    closed_loop_attack_surface,
)
from repro.sim.faults import FaultSpec

POSTURES = (SecurityPosture.OPEN, SecurityPosture.ALLOWLISTED, SecurityPosture.DATA_ONLY)
CRITICAL_COMMANDS = {("pca-pump-1", "resume"), ("pca-pump-1", "set_prescription")}


def _policy_for(posture):
    policy = CommandAuthorizationPolicy(posture=posture)
    policy.mark_authenticated("pca-safety")
    if posture == SecurityPosture.ALLOWLISTED:
        policy.allow_app_commands("pca-safety", "pca-pump-1", ["stop", "resume"])
    return policy


def _attack_outcomes(posture):
    authenticator = DeviceAuthenticator()
    credential = authenticator.provision("pca-safety-app", b"supervisor-key")
    policy = CommandAuthorizationPolicy(posture=posture)
    if posture == SecurityPosture.ALLOWLISTED:
        policy.allow_app_commands("pca-safety-app", "pca-pump-1", ["stop", "resume"])
    campaign = AttackCampaign(authenticator, policy,
                              stolen_credentials={"pca-safety-app": credential})
    campaign.run(standard_reprogramming_campaign())
    return campaign


def _closed_loop_effectiveness(posture):
    """Can the supervisor still protect the patient under this posture?"""
    patient = PatientPopulation(seed=61).sample_one("e7-patient", sensitive=True)
    prescription = PCAPrescription(bolus_dose_mg=1.5, lockout_interval_s=300.0,
                                   hourly_limit_mg=12.0, basal_rate_mg_per_hr=2.0)
    faults = [FaultSpec(kind="misprogramming", start=900.0, target="pca-pump-1",
                        parameters={"rate_multiplier": 5.0})]
    config = PCASystemConfig(mode="closed_loop", duration_s=2.0 * 3600.0, patient=patient,
                             prescription=prescription, faults=faults, seed=3)
    system = ClosedLoopPCASystem(config)
    system.build()
    policy = _policy_for(posture)
    system.host._command_authoriser = policy.as_authoriser()
    system.simulator.run(until=config.duration_s)
    return system._collect(), policy


def test_e7_security_tradeoff(benchmark):
    def _run_all():
        rows = []
        for posture in POSTURES:
            campaign = _attack_outcomes(posture)
            loop_result, policy = _closed_loop_effectiveness(posture)
            surface = closed_loop_attack_surface(policy, CRITICAL_COMMANDS)
            rows.append((posture, campaign, loop_result, surface))
        return rows

    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = Table(
        "E7: security posture vs attack success and closed-loop capability",
        ["posture", "attacks", "attacks_succeeded", "insider_surface",
         "supervisor_stops_issued", "patient_harmed"],
        notes="data_only blocks all attacks but also disables the closed loop; allowlisted keeps both",
    )
    by_posture = {}
    for posture, campaign, loop_result, surface in rows:
        succeeded = sum(1 for r in campaign.results if r.succeeded)
        by_posture[posture] = (succeeded, loop_result)
        table.add_row(posture.value, len(campaign.results), succeeded,
                      surface["insider_reachable_fraction"], loop_result.supervisor_stops,
                      loop_result.harmed)
    emit(table)

    # Shape: open admits the insider attack; data-only stops the supervisor from acting.
    assert by_posture[SecurityPosture.OPEN][0] >= by_posture[SecurityPosture.ALLOWLISTED][0]
    assert by_posture[SecurityPosture.DATA_ONLY][0] == 0
    assert by_posture[SecurityPosture.ALLOWLISTED][1].supervisor_stops >= 1
    assert by_posture[SecurityPosture.DATA_ONLY][1].supervisor_stops == 0
