"""E8: proton-therapy beam scheduling and safety interrupts (Section II(a)).

Sweeps the number of treatment rooms sharing the single cyclotron beam and
reports throughput (completed fractions, waiting times, beam utilisation) and
the interference between beam scheduling and beam application: fractions
aborted by patient-motion cut-offs, plus the effect of a facility emergency
shutdown.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.scenarios.proton import ProtonSchedulingConfig, ProtonSchedulingScenario

ROOM_COUNTS = (1, 2, 4)


def _sweep():
    rows = []
    for rooms in ROOM_COUNTS:
        config = ProtonSchedulingConfig(rooms=rooms, fractions_per_room=3, fraction_spots=200,
                                        spot_duration_s=0.5, request_period_s=400.0,
                                        motion_events_per_room=1, duration_s=2.0 * 3600.0, seed=5)
        rows.append(("scheduled", rooms, ProtonSchedulingScenario(config).run()))
    # Emergency shutdown case.
    shutdown_config = ProtonSchedulingConfig(rooms=3, fractions_per_room=3, fraction_spots=200,
                                             spot_duration_s=0.5, motion_events_per_room=0,
                                             emergency_shutdown_time_s=300.0,
                                             duration_s=2.0 * 3600.0, seed=5)
    rows.append(("emergency_shutdown@300s", 3, ProtonSchedulingScenario(shutdown_config).run()))
    return rows


def test_e8_proton_scheduling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = Table(
        "E8: beam scheduling across treatment rooms",
        ["case", "rooms", "requested", "completed", "aborted", "utilisation",
         "mean_wait_s", "max_wait_s", "switches"],
        notes="waiting grows with room contention; motion cut-offs and shutdown abort in-flight fractions",
    )
    for case, rooms, result in rows:
        table.add_row(case, rooms, result.fractions_requested, result.fractions_completed,
                      result.fractions_aborted, result.beam_utilisation,
                      result.mean_waiting_time_s, result.max_waiting_time_s, result.beam_switches)
    emit(table)

    scheduled = [result for case, _, result in rows if case == "scheduled"]
    assert scheduled[-1].mean_waiting_time_s >= scheduled[0].mean_waiting_time_s
    shutdown = rows[-1][2]
    assert shutdown.emergency_shutdown_triggered
    assert shutdown.fractions_completed < shutdown.fractions_requested
