"""Tests for the device base class and the PCA pump."""

import pytest

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.devices.pca_pump import PCAPrescription, PCAPump
from repro.patient.model import PatientModel
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


def make_descriptor(**overrides):
    defaults = dict(
        device_id="dev-1",
        device_type="test_device",
        published_topics=("data",),
        accepted_commands=("go",),
    )
    defaults.update(overrides)
    return DeviceDescriptor(**defaults)


class TestDeviceDescriptor:
    def test_valid_descriptor(self):
        descriptor = make_descriptor()
        assert descriptor.accepts("go")
        assert descriptor.publishes("data")
        assert not descriptor.accepts("stop")

    def test_invalid_risk_class_rejected(self):
        with pytest.raises(ValueError):
            make_descriptor(risk_class="IV")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            make_descriptor(device_id="")


class TestMedicalDeviceStateMachine:
    def test_initial_state_is_standby(self):
        device = MedicalDevice(make_descriptor())
        assert device.state == DeviceState.STANDBY

    def test_valid_transition(self):
        device = MedicalDevice(make_descriptor())
        assert device.transition(DeviceState.RUNNING)
        assert device.state == DeviceState.RUNNING

    def test_invalid_transition_rejected(self):
        device = MedicalDevice(make_descriptor())
        assert device.state == DeviceState.STANDBY
        assert not device.transition(DeviceState.PAUSED)
        assert device.state == DeviceState.STANDBY

    def test_same_state_transition_is_noop(self):
        device = MedicalDevice(make_descriptor())
        assert device.transition(DeviceState.STANDBY)

    def test_crash_moves_to_fault_and_restart_recovers(self):
        device = MedicalDevice(make_descriptor())
        device.transition(DeviceState.RUNNING)
        device.crash()
        assert device.state == DeviceState.FAULT
        assert device.crashed
        device.restart()
        assert device.state == DeviceState.STANDBY
        assert not device.crashed

    def test_is_operational(self):
        device = MedicalDevice(make_descriptor())
        assert not device.is_operational
        device.transition(DeviceState.RUNNING)
        assert device.is_operational


class TestMedicalDeviceCommandsAndPublish:
    def test_publish_requires_declared_topic(self):
        device = MedicalDevice(make_descriptor())
        published = []
        device.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        device.publish("data", 1)
        assert published == [("data", 1)]
        with pytest.raises(ValueError):
            device.publish("undeclared", 1)

    def test_crashed_device_does_not_publish(self):
        device = MedicalDevice(make_descriptor())
        published = []
        device.attach_publisher(lambda topic, payload: published.append(topic))
        device.crash()
        device.publish("data", 1)
        assert published == []

    def test_register_command_requires_declaration(self):
        device = MedicalDevice(make_descriptor())
        with pytest.raises(ValueError):
            device.register_command("undeclared", lambda p: None)

    def test_command_dispatch(self):
        device = MedicalDevice(make_descriptor())
        device.register_command("go", lambda p: p.get("value"))
        assert device.handle_command("go", {"value": 7}) == 7

    def test_undeclared_command_recorded_not_raised(self):
        device = MedicalDevice(make_descriptor())
        assert device.handle_command("stop") is None
        assert device.rejected_commands[-1][0] == "stop"

    def test_command_without_handler_rejected(self):
        device = MedicalDevice(make_descriptor())
        assert device.handle_command("go") is None
        assert device.rejected_commands

    def test_crashed_device_rejects_commands(self):
        device = MedicalDevice(make_descriptor())
        device.register_command("go", lambda p: True)
        device.crash()
        assert device.handle_command("go") is None


@pytest.fixture
def pump_setup(trace):
    simulator = Simulator()
    patient = PatientModel(trace=trace)
    simulator.register(patient)
    pump = PCAPump("pump-1", patient, PCAPrescription(
        bolus_dose_mg=1.0, lockout_interval_s=300.0, hourly_limit_mg=5.0, basal_rate_mg_per_hr=1.2,
    ), command_delay_s=1.0, trace=trace)
    simulator.register(pump)
    return simulator, patient, pump


class TestPCAPrescription:
    def test_defaults_validate(self):
        PCAPrescription().validate()

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            PCAPrescription(hourly_limit_mg=0.0).validate()

    def test_negative_bolus_rejected(self):
        with pytest.raises(ValueError):
            PCAPrescription(bolus_dose_mg=-1.0).validate()


class TestPCAPump:
    def test_starts_running_with_basal_rate(self, pump_setup):
        simulator, patient, pump = pump_setup
        assert pump.state == DeviceState.RUNNING
        assert patient.infusion_rate_mg_per_min == pytest.approx(1.2 / 60.0)

    def test_bolus_delivered_on_request(self, pump_setup):
        simulator, patient, pump = pump_setup
        assert pump.request_bolus()
        assert pump.total_delivered_mg == pytest.approx(1.0)
        assert patient.plasma_concentration_mg_per_l > 0

    def test_lockout_denies_rapid_requests(self, pump_setup):
        simulator, _, pump = pump_setup
        assert pump.request_bolus()
        assert not pump.request_bolus()
        assert pump.denied_requests[-1][1] == "lockout"

    def test_request_allowed_after_lockout(self, pump_setup):
        simulator, _, pump = pump_setup
        pump.request_bolus()
        simulator.run(until=400.0)
        assert pump.request_bolus()

    def test_hourly_limit_enforced(self, pump_setup):
        simulator, _, pump = pump_setup
        delivered = 0
        for i in range(12):
            simulator.run(until=(i + 1) * 301.0)
            if pump.request_bolus():
                delivered += 1
        assert pump.total_delivered_mg <= 5.0 + 1e-9
        assert any(reason == "hourly limit" for _, reason in pump.denied_requests)

    def test_stop_command_halts_after_delay(self, pump_setup):
        simulator, patient, pump = pump_setup
        pump.handle_command("stop")
        assert not pump.stopped_by_supervisor  # applied only after the delay
        simulator.run(until=2.0)
        assert pump.stopped_by_supervisor
        assert patient.infusion_rate_mg_per_min == 0.0
        assert not pump.request_bolus()

    def test_resume_command_restores_delivery(self, pump_setup):
        simulator, patient, pump = pump_setup
        pump.handle_command("stop")
        simulator.run(until=2.0)
        pump.handle_command("resume")
        simulator.run(until=4.0)
        assert not pump.stopped_by_supervisor
        assert patient.infusion_rate_mg_per_min > 0
        assert pump.request_bolus()

    def test_misprogramming_scales_doses(self, pump_setup):
        simulator, _, pump = pump_setup
        pump.reprogram(rate_multiplier=4.0)
        assert pump.request_bolus()
        assert pump.total_delivered_mg == pytest.approx(4.0)

    def test_concentration_error_does_not_change_programmed_limit(self, pump_setup):
        simulator, _, pump = pump_setup
        pump.reprogram(concentration_multiplier=3.0)
        assert pump.effective_prescription.bolus_dose_mg == pytest.approx(3.0)
        assert pump.prescription.hourly_limit_mg == pytest.approx(5.0)

    def test_proxy_requests_counted(self, pump_setup):
        simulator, _, pump = pump_setup
        delivered = pump.proxy_request(count=3)
        assert delivered == 1  # lockout blocks the rest
        assert pump.proxy_requests == 3

    def test_crash_stops_infusion(self, pump_setup):
        simulator, patient, pump = pump_setup
        pump.crash()
        assert patient.infusion_rate_mg_per_min == 0.0
        assert not pump.request_bolus()

    def test_set_prescription_command(self, pump_setup):
        simulator, _, pump = pump_setup
        new_rx = PCAPrescription(bolus_dose_mg=0.5, lockout_interval_s=600.0, hourly_limit_mg=3.0)
        assert pump.handle_command("set_prescription", {"prescription": new_rx})
        assert pump.prescription.bolus_dose_mg == 0.5

    def test_set_prescription_rejects_garbage(self, pump_setup):
        simulator, _, pump = pump_setup
        assert pump.handle_command("set_prescription", {"prescription": "bogus"}) is False

    def test_status_published_periodically(self, pump_setup, trace):
        simulator, _, pump = pump_setup
        published = []
        pump.attach_publisher(lambda topic, payload: published.append(topic))
        simulator.run(until=35.0)
        assert published.count("pump_status") >= 3

    def test_delivered_in_window(self, pump_setup):
        simulator, _, pump = pump_setup
        pump.request_bolus()
        assert pump.delivered_in_window(3600.0) == pytest.approx(1.0)
        assert pump.delivered_in_window(0.0) == pytest.approx(1.0)  # delivered exactly now
