"""Tests for the ICE middleware: bus, registry, QoS, clock sync, supervisor host."""

import json

import pytest

from golden_workload import GOLDEN_PATH, bus_workload

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.middleware.bus import BusConfig, DeviceBus
from repro.middleware.clock_sync import ClockSync, DeviceClock
from repro.middleware.qos import QoSMonitor, TopicQoS
from repro.middleware.registry import DeviceRegistry, DeviceRequirement, RegistrationError
from repro.middleware.supervisor_host import SupervisorApp, SupervisorHost
from repro.sim.channel import ChannelConfig
from repro.sim.kernel import Simulator


class _EchoDevice(MedicalDevice):
    """Minimal device that publishes a counter and accepts a 'ping' command."""

    def __init__(self, device_id="echo-1"):
        super().__init__(DeviceDescriptor(
            device_id=device_id,
            device_type="echo",
            published_topics=("tick",),
            accepted_commands=("ping",),
        ))
        self.pings = []
        self.register_command("ping", lambda params: self.pings.append(params))

    def start(self):
        self.transition(DeviceState.RUNNING)
        self.every(1.0, lambda: self.publish("tick", {"value": self.now, "time": self.now}))


@pytest.fixture
def bus_setup():
    simulator = Simulator()
    bus = DeviceBus(simulator, BusConfig(
        uplink=ChannelConfig(latency_s=0.01),
        downlink=ChannelConfig(latency_s=0.01),
        processing_delay_s=0.001,
    ))
    device = _EchoDevice()
    bus.attach_device(device)
    simulator.register(device)
    return simulator, bus, device


class TestDeviceBus:
    def test_attach_device_twice_rejected(self, bus_setup):
        simulator, bus, device = bus_setup
        with pytest.raises(ValueError):
            bus.attach_device(device)

    def test_publish_subscribe_roundtrip(self, bus_setup):
        simulator, bus, device = bus_setup
        received = []
        bus.subscribe("listener", "tick", lambda topic, payload, message: received.append(payload))
        simulator.run(until=5.5)
        assert len(received) == 5
        assert received[0]["value"] == pytest.approx(1.0)

    def test_end_to_end_latency_positive(self, bus_setup):
        simulator, bus, device = bus_setup
        latencies = []
        bus.subscribe("listener", "tick",
                      lambda topic, payload, message: latencies.append(message.delivered_at - payload["time"]))
        simulator.run(until=3.5)
        assert all(latency > 0.015 for latency in latencies)

    def test_multiple_subscribers_each_receive(self, bus_setup):
        simulator, bus, device = bus_setup
        a, b = [], []
        bus.subscribe("listener-a", "tick", lambda t, p, m: a.append(p))
        bus.subscribe("listener-b", "tick", lambda t, p, m: b.append(p))
        simulator.run(until=3.5)
        assert len(a) == len(b) == 3

    def test_unsubscribed_topic_not_delivered(self, bus_setup):
        simulator, bus, device = bus_setup
        received = []
        bus.subscribe("listener", "other_topic", lambda t, p, m: received.append(p))
        simulator.run(until=3.5)
        assert received == []

    def test_send_command_reaches_device(self, bus_setup):
        simulator, bus, device = bus_setup
        assert bus.send_command("supervisor", "echo-1", "ping", {"n": 1})
        simulator.run(until=1.0)
        assert device.pings == [{"n": 1}]

    def test_repeated_commands_delivered_once_each(self, bus_setup):
        simulator, bus, device = bus_setup
        bus.send_command("supervisor", "echo-1", "ping", {"n": 1})
        bus.send_command("supervisor", "echo-1", "ping", {"n": 2})
        simulator.run(until=1.0)
        assert device.pings == [{"n": 1}, {"n": 2}]

    def test_command_to_unknown_device_fails(self, bus_setup):
        simulator, bus, device = bus_setup
        assert not bus.send_command("supervisor", "ghost", "ping")

    def test_stats_counts(self, bus_setup):
        simulator, bus, device = bus_setup
        bus.subscribe("listener", "tick", lambda t, p, m: None)
        simulator.run(until=4.5)
        stats = bus.stats()
        assert stats["published"] == 4
        assert stats["forwarded"] == 4


class TestGoldenBusWorkload:
    """Multi-subscriber delivery order is pinned byte-for-byte.

    The digest in ``tests/data/golden_traces.json`` was captured with the
    insertion-ordered ``_forward`` dedup; CI replays this test under two
    pinned ``PYTHONHASHSEED`` values, so any hash-order dependence sneaking
    back into the delivery path fails one of the two runs.
    """

    def test_multi_subscriber_workload_matches_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())["bus_workload"]
        assert bus_workload() == golden


class TestDeviceRegistry:
    def _descriptor(self, device_id="pump-1", **overrides):
        defaults = dict(
            device_id=device_id,
            device_type="pca_pump",
            published_topics=("pump_status",),
            accepted_commands=("stop", "resume"),
            capabilities=("infusion",),
            risk_class="II",
        )
        defaults.update(overrides)
        return DeviceDescriptor(**defaults)

    def test_register_and_lookup(self):
        registry = DeviceRegistry()
        registry.register(self._descriptor())
        assert "pump-1" in registry
        assert registry.get("pump-1").device_type == "pca_pump"
        assert len(registry) == 1

    def test_duplicate_registration_rejected(self):
        registry = DeviceRegistry()
        registry.register(self._descriptor())
        with pytest.raises(RegistrationError):
            registry.register(self._descriptor())

    def test_deregister(self):
        registry = DeviceRegistry()
        registry.register(self._descriptor())
        registry.deregister("pump-1")
        assert "pump-1" not in registry
        with pytest.raises(RegistrationError):
            registry.deregister("pump-1")

    def test_find_queries(self):
        registry = DeviceRegistry()
        registry.register(self._descriptor())
        registry.register(self._descriptor("ox-1", device_type="pulse_oximeter",
                                           published_topics=("spo2",), accepted_commands=()))
        assert len(registry.find_by_type("pca_pump")) == 1
        assert len(registry.find_publishing("spo2")) == 1
        assert len(registry.find_accepting("stop")) == 1

    def test_requirement_matching(self):
        registry = DeviceRegistry()
        registry.register(self._descriptor())
        requirement = DeviceRequirement(role="pump", device_type="pca_pump",
                                        required_commands=("stop",))
        result = registry.match([requirement])
        assert result.complete
        assert result.assignments == {"pump": "pump-1"}

    def test_unsatisfiable_requirement_reports_reasons(self):
        registry = DeviceRegistry()
        registry.register(self._descriptor())
        requirement = DeviceRequirement(role="imaging", device_type="xray_machine")
        result = registry.match([requirement])
        assert not result.complete
        assert "imaging" in result.unsatisfied
        assert any("type" in reason for reason in result.unsatisfied["imaging"])

    def test_devices_not_double_assigned(self):
        registry = DeviceRegistry()
        registry.register(self._descriptor())
        requirements = [
            DeviceRequirement(role="pump_a", device_type="pca_pump"),
            DeviceRequirement(role="pump_b", device_type="pca_pump"),
        ]
        result = registry.match(requirements)
        assert len(result.assignments) == 1
        assert len(result.unsatisfied) == 1

    def test_risk_class_constraint(self):
        registry = DeviceRegistry()
        registry.register(self._descriptor(risk_class="III"))
        requirement = DeviceRequirement(role="pump", max_risk_class="II")
        assert not registry.match([requirement]).complete

    def test_capability_constraint(self):
        requirement = DeviceRequirement(role="pump", required_capabilities=("remote_stop",))
        descriptor = self._descriptor()
        assert not requirement.is_satisfied_by(descriptor)
        reasons = requirement.unmet_reasons(descriptor)
        assert any("capability" in reason for reason in reasons)


class TestQoSMonitor:
    def test_contract_validation(self):
        with pytest.raises(ValueError):
            TopicQoS(topic="spo2", max_age_s=0.0)

    def test_age_infinite_before_any_delivery(self):
        monitor = QoSMonitor(Simulator())
        monitor.add_contract(TopicQoS(topic="spo2", max_age_s=5.0))
        assert monitor.age("spo2") == float("inf")
        assert monitor.is_stale("spo2")

    def test_delivery_freshens_topic(self):
        simulator = Simulator()
        monitor = QoSMonitor(simulator)
        monitor.add_contract(TopicQoS(topic="spo2", max_age_s=5.0))
        simulator.schedule(1.0, lambda: monitor.record_delivery("spo2", published_at=0.9))
        simulator.run()
        assert not monitor.is_stale("spo2")
        assert monitor.age("spo2") == pytest.approx(0.0)

    def test_staleness_after_silence(self):
        simulator = Simulator()
        monitor = QoSMonitor(simulator)
        monitor.add_contract(TopicQoS(topic="spo2", max_age_s=5.0))
        simulator.schedule(1.0, lambda: monitor.record_delivery("spo2", published_at=1.0))
        simulator.schedule(10.0, lambda: None)
        simulator.run()
        assert monitor.is_stale("spo2")
        assert monitor.stale_topics() == ["spo2"]
        assert monitor.any_stale()

    def test_latency_deadline_violations(self):
        simulator = Simulator()
        monitor = QoSMonitor(simulator)
        monitor.add_contract(TopicQoS(topic="spo2", max_age_s=10.0, max_latency_s=0.5))
        simulator.schedule(2.0, lambda: monitor.record_delivery("spo2", published_at=1.0))
        simulator.run()
        assert monitor.stats("spo2").deadline_violations == 1
        assert monitor.max_latency("spo2") == pytest.approx(1.0)

    def test_uncontracted_topic_never_stale(self):
        monitor = QoSMonitor(Simulator())
        assert not monitor.is_stale("anything")

    def test_summary_structure(self):
        simulator = Simulator()
        monitor = QoSMonitor(simulator)
        monitor.add_contract(TopicQoS(topic="spo2", max_age_s=5.0))
        monitor.record_delivery("spo2", published_at=0.0)
        summary = monitor.summary()
        assert "spo2" in summary and summary["spo2"]["deliveries"] == 1.0


class TestClockSync:
    def test_clocks_drift_without_sync(self):
        clock = DeviceClock("dev", drift_ppm=100.0, offset_s=0.5)
        assert clock.error(0.0) == pytest.approx(0.5)
        assert clock.error(1000.0) > 0.5

    def test_sync_reduces_error(self):
        simulator = Simulator()
        sync = ClockSync(sync_period_s=10.0, link_delay_asymmetry_s=0.001)
        sync.add_clock(DeviceClock("a", drift_ppm=50.0, offset_s=0.3))
        sync.add_clock(DeviceClock("b", drift_ppm=-30.0, offset_s=-0.2))
        simulator.register(sync)
        simulator.run(until=25.0)
        assert sync.sync_rounds == 2
        assert sync.current_max_error() < 0.01

    def test_worst_case_skew_bound_holds(self):
        simulator = Simulator()
        sync = ClockSync(sync_period_s=10.0, link_delay_asymmetry_s=0.002)
        sync.add_clock(DeviceClock("a", drift_ppm=100.0, offset_s=0.3))
        simulator.register(sync)
        simulator.run(until=100.0)
        assert sync.current_max_error() <= sync.worst_case_skew() + 1e-9

    def test_duplicate_clock_rejected(self):
        sync = ClockSync()
        sync.add_clock(DeviceClock("a"))
        with pytest.raises(ValueError):
            sync.add_clock(DeviceClock("a"))


class _RecordingApp(SupervisorApp):
    subscriptions = ("tick",)
    qos_contracts = (TopicQoS(topic="tick", max_age_s=5.0),)
    step_period_s = 1.0

    def __init__(self):
        super().__init__("recorder")
        self.data = []
        self.steps = []

    def on_data(self, topic, payload, message):
        self.data.append(payload)

    def step(self, now):
        self.steps.append(now)
        if len(self.steps) == 3:
            self.send_command("echo-1", "ping", {"from": "app"})


class TestSupervisorHost:
    def _build(self, authoriser=None):
        simulator = Simulator()
        bus = DeviceBus(simulator, BusConfig())
        device = _EchoDevice()
        bus.attach_device(device)
        simulator.register(device)
        host = SupervisorHost(bus, algorithm_delay_s=0.05, command_authoriser=authoriser)
        app = _RecordingApp()
        host.attach_app(app)
        simulator.register(host)
        return simulator, host, app, device

    def test_app_receives_subscribed_data(self):
        simulator, host, app, device = self._build()
        simulator.run(until=5.0)
        assert len(app.data) >= 3

    def test_app_steps_run_with_algorithm_delay(self):
        simulator, host, app, device = self._build()
        simulator.run(until=3.5)
        assert app.steps == pytest.approx([1.05, 2.05, 3.05])

    def test_app_command_reaches_device(self):
        simulator, host, app, device = self._build()
        simulator.run(until=6.0)
        assert device.pings == [{"from": "app"}]
        assert host.command_log and host.command_log[0].authorised

    def test_command_blocked_by_authoriser(self):
        simulator, host, app, device = self._build(
            authoriser=lambda app_id, device_id, command: (False, "policy says no")
        )
        simulator.run(until=6.0)
        assert device.pings == []
        assert host.denied_commands()
        assert host.denied_commands()[0].reason == "policy says no"

    def test_duplicate_app_rejected(self):
        simulator, host, app, device = self._build()
        with pytest.raises(ValueError):
            host.attach_app(app)

    def test_qos_contract_registered(self):
        simulator, host, app, device = self._build()
        assert host.qos.contract("tick") is not None
        simulator.run(until=3.0)
        assert not host.qos.is_stale("tick")
