"""Tests for the ventilator, X-ray machine, and proton-therapy devices."""

import pytest

from repro.devices.proton import BeamRequest, ProtonTherapySystem, TreatmentRoom
from repro.devices.ventilator import BreathPhase, Ventilator, VentilatorSettings
from repro.devices.xray import XRayConfig, XRayMachine
from repro.sim.kernel import Simulator


class TestVentilatorSettings:
    def test_defaults_validate(self):
        VentilatorSettings().validate()

    def test_cycle_duration_and_rate(self):
        settings = VentilatorSettings(inhale_duration_s=1.0, exhale_duration_s=2.0, pause_duration_s=2.0)
        assert settings.cycle_duration_s == 5.0
        assert settings.breaths_per_minute == pytest.approx(12.0)

    def test_invalid_durations_rejected(self):
        with pytest.raises(ValueError):
            VentilatorSettings(inhale_duration_s=0.0).validate()


class TestVentilator:
    def test_cycles_through_phases(self):
        simulator = Simulator()
        ventilator = Ventilator("vent-1")
        simulator.register(ventilator)
        simulator.run(until=VentilatorSettings().cycle_duration_s * 3 + 0.1)
        assert ventilator.breaths_delivered == 3

    def test_air_flow_sign_by_phase(self):
        simulator = Simulator()
        ventilator = Ventilator("vent-1")
        simulator.register(ventilator)
        assert ventilator.air_flow_lpm() > 0  # inhaling at start
        simulator.run(until=2.0)  # in exhale (inhale is 1.5 s)
        assert ventilator.air_flow_lpm() < 0
        simulator.run(until=4.0)  # end-expiratory pause (3.5 - 5.0 s)
        assert ventilator.air_flow_lpm() == 0.0
        assert ventilator.in_imaging_window()

    def test_time_to_next_inhalation_decreases(self):
        simulator = Simulator()
        ventilator = Ventilator("vent-1")
        simulator.register(ventilator)
        early = ventilator.time_to_next_inhalation()
        simulator.run(until=2.0)
        later = ventilator.time_to_next_inhalation()
        assert later < early

    def test_remaining_window_only_in_pause(self):
        simulator = Simulator()
        ventilator = Ventilator("vent-1")
        simulator.register(ventilator)
        assert ventilator.remaining_imaging_window_s() == 0.0
        simulator.run(until=4.0)
        assert 0.0 < ventilator.remaining_imaging_window_s() <= 1.5

    def test_hold_and_resume(self):
        simulator = Simulator()
        ventilator = Ventilator("vent-1")
        simulator.register(ventilator)
        simulator.run(until=1.0)
        assert ventilator.hold()
        assert ventilator.phase == BreathPhase.HELD
        simulator.run(until=30.0)
        assert ventilator.apnea_duration() == pytest.approx(29.0)
        assert not ventilator.apnea_exceeded()
        assert ventilator.resume()
        simulator.run(until=40.0)
        assert ventilator.phase != BreathPhase.HELD
        assert ventilator.apnea_duration() == 0.0

    def test_apnea_exceeded_after_max_safe(self):
        simulator = Simulator()
        ventilator = Ventilator("vent-1", VentilatorSettings(max_safe_apnea_s=10.0))
        simulator.register(ventilator)
        ventilator.hold()
        simulator.run(until=20.0)
        assert ventilator.apnea_exceeded()

    def test_pause_resume_commands(self):
        simulator = Simulator()
        ventilator = Ventilator("vent-1")
        simulator.register(ventilator)
        assert ventilator.handle_command("pause")
        assert ventilator.phase == BreathPhase.HELD
        assert ventilator.handle_command("resume")
        assert ventilator.phase == BreathPhase.INHALE

    def test_broadcast_publishes_state(self):
        simulator = Simulator()
        ventilator = Ventilator("vent-1", broadcast_state=True, state_broadcast_period_s=0.5)
        published = []
        ventilator.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(ventilator)
        simulator.run(until=5.0)
        phases = [p["phase"] for t, p in published if t == "breath_phase"]
        assert len(phases) >= 8
        assert "end_expiratory_pause" in phases


class TestXRayMachine:
    def _setup(self, mode, **xray_kwargs):
        simulator = Simulator()
        ventilator = Ventilator("vent-1", broadcast_state=(mode == "state_broadcast"),
                                state_broadcast_period_s=0.25)
        config = XRayConfig(coordination_mode=mode, **xray_kwargs)
        xray = XRayMachine("xray-1", config, ventilator=ventilator)
        if mode == "state_broadcast":
            ventilator.attach_publisher(
                lambda topic, payload: xray.on_ventilator_state(payload) if topic == "breath_phase" else None
            )
        simulator.register(ventilator)
        simulator.register(xray)
        return simulator, ventilator, xray

    def test_config_validation(self):
        with pytest.raises(ValueError):
            XRayConfig(coordination_mode="telepathy").validate()
        with pytest.raises(ValueError):
            XRayConfig(exposure_time_s=0.0).validate()

    def test_manual_mode_can_blur(self):
        simulator, ventilator, xray = self._setup("manual")
        simulator.run(until=0.5)  # mid-inhale
        xray.request_image()
        simulator.run(until=5.0)
        assert xray.images
        assert xray.images[0].blurred

    def test_pause_restart_takes_sharp_image_and_resumes(self):
        simulator, ventilator, xray = self._setup("pause_restart")
        simulator.run(until=1.0)
        xray.request_image()
        simulator.run(until=20.0)
        assert xray.successful_images == 1
        assert ventilator.phase != BreathPhase.HELD

    def test_pause_restart_without_resume_leaves_apnea(self):
        simulator = Simulator()
        ventilator = Ventilator("vent-1")
        # A command channel that drops the resume command.
        def lossy_command(command):
            if command == "pause":
                return ventilator.hold()
            return True  # claims success but never delivers resume
        xray = XRayMachine("xray-1", XRayConfig(coordination_mode="pause_restart"),
                           ventilator=ventilator, send_ventilator_command=lossy_command)
        simulator.register(ventilator)
        simulator.register(xray)
        xray.request_image()
        simulator.run(until=120.0)
        assert ventilator.phase == BreathPhase.HELD
        assert ventilator.apnea_exceeded()

    def test_state_broadcast_waits_for_window(self):
        simulator, ventilator, xray = self._setup("state_broadcast", exposure_time_s=0.2,
                                                  preparation_time_s=0.1)
        simulator.run(until=0.5)
        xray.request_image()
        simulator.run(until=30.0)
        assert xray.successful_images >= 1
        assert all(image.mode == "state_broadcast" for image in xray.images)
        # The ventilator was never paused.
        assert not ventilator.hold_history

    def test_state_broadcast_skips_too_short_window(self):
        simulator, ventilator, xray = self._setup(
            "state_broadcast", exposure_time_s=5.0, preparation_time_s=0.1
        )
        xray.request_image()
        simulator.run(until=30.0)
        assert xray.successful_images == 0
        assert xray.skipped_windows > 0


class TestProtonTherapy:
    def _build(self, rooms=2, motion_times=None, shutdown_at=None, **room_kwargs):
        simulator = Simulator()
        system = ProtonTherapySystem("proton-1", switch_time_s=5.0)
        simulator.register(system)
        built_rooms = []
        for index in range(rooms):
            room = TreatmentRoom(
                f"room-{index}",
                fraction_spots=room_kwargs.get("fraction_spots", 10),
                spot_duration_s=room_kwargs.get("spot_duration_s", 0.5),
                request_period_s=room_kwargs.get("request_period_s", 100.0),
                fractions=room_kwargs.get("fractions", 2),
                motion_times=motion_times if index == 0 else None,
            )
            system.attach_room(room)
            simulator.register(room)
            built_rooms.append(room)
        if shutdown_at is not None:
            simulator.schedule_at(shutdown_at, system.emergency_shutdown)
        return simulator, system, built_rooms

    def test_all_fractions_complete_without_faults(self):
        simulator, system, rooms = self._build()
        simulator.run(until=600.0)
        assert system.completed_fractions == 4
        assert system.aborted_fractions == 0

    def test_beam_serves_one_room_at_a_time(self):
        simulator, system, rooms = self._build()
        simulator.run(until=600.0)
        # Waiting times exist because the rooms contend for the single beam.
        waits = [r.waiting_time_s for room in rooms for r in room.requests]
        assert any(w > 0 for w in waits if w is not None)

    def test_patient_motion_aborts_current_fraction(self):
        simulator, system, rooms = self._build(motion_times=[2.0])
        simulator.run(until=600.0)
        assert system.aborted_fractions >= 1
        assert len(system.motion_cutoffs) == 1

    def test_motion_in_other_room_does_not_abort(self):
        simulator, system, rooms = self._build(rooms=1)
        simulator.register_ = None
        system.report_patient_motion("room-other")
        simulator.run(until=300.0)
        assert system.aborted_fractions == 0

    def test_emergency_shutdown_aborts_everything(self):
        simulator, system, rooms = self._build(shutdown_at=3.0)
        simulator.run(until=600.0)
        assert system.shutdown
        assert system.completed_fractions == 0
        total = sum(len(room.requests) for room in rooms)
        assert system.aborted_fractions >= 1
        assert system.completed_fractions + system.aborted_fractions <= total + 1

    def test_requests_after_shutdown_rejected(self):
        simulator, system, rooms = self._build(shutdown_at=1.0, request_period_s=50.0)
        simulator.run(until=400.0)
        late_requests = [r for room in rooms for r in room.requests if r.requested_at > 1.0]
        assert all(r.aborted for r in late_requests)

    def test_utilisation_bounded(self):
        simulator, system, rooms = self._build()
        simulator.run(until=600.0)
        assert 0.0 < system.utilisation(600.0) <= 1.0

    def test_beam_request_properties(self):
        request = BeamRequest(room_id="r", requested_at=0.0, spots=10, spot_duration_s=0.5)
        assert request.duration_s == 5.0
        assert request.waiting_time_s is None
        assert not request.complete
