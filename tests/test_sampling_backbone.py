"""Tests for the fixed-rate sampling backbone (``repro.sim.sampler``).

The backbone's contract has two halves: traces recorded through batched
writers are *byte-identical* to unbatched recording, and readers never see a
stale trace no matter when batches were last flushed (the read barrier).
"""

import numpy as np
import pytest

from repro.devices.pulse_oximeter import PulseOximeter, PulseOximeterConfig, _RollingMean
from repro.patient.model import PatientModel
from repro.sim.kernel import Simulator
from repro.sim.sampler import BatchedTraceWriter, PeriodicSampler
from repro.sim.trace import TraceRecorder


class TestBatchedTraceWriter:
    def test_batched_trace_identical_to_direct_recording(self):
        direct, batched = TraceRecorder(), TraceRecorder()
        writer = BatchedTraceWriter(batched, prefix="dev", source="device:dev")
        writer.declare("spo2")
        samples = [(0.5 * i, 97.0 - 0.01 * i) for i in range(500)]
        for time, value in samples:
            direct.record(time, "dev:spo2", value, source="device:dev")
            writer.record(time, "spo2", value)
        writer.flush()
        assert batched.to_dict() == direct.to_dict()

    def test_declare_is_idempotent_and_precomputes_name(self):
        trace = TraceRecorder()
        writer = BatchedTraceWriter(trace, prefix="dev")
        batch = writer.declare("hr")
        assert writer.declare("hr") is batch
        assert batch.signal == "dev:hr"

    def test_undeclared_signal_created_lazily(self):
        trace = TraceRecorder()
        writer = BatchedTraceWriter(trace, prefix="dev")
        writer.record(1.0, "surprise", 42)
        assert trace.samples("dev:surprise") == [(1.0, 42)]

    def test_declared_but_never_sampled_signal_stays_absent(self):
        # An empty batch must not materialise a trace buffer: to_dict() and
        # signals() must look exactly as if the signal never existed.
        trace = TraceRecorder()
        writer = BatchedTraceWriter(trace, prefix="dev")
        writer.declare("never_sampled")
        writer.flush()
        assert trace.signals() == []
        assert trace.to_dict()["signals"] == {}

    def test_read_barrier_drains_pending_batches(self):
        trace = TraceRecorder()
        writer = BatchedTraceWriter(trace, prefix="dev")
        batch = writer.declare("spo2")
        batch.append(1.0, 97.0)
        batch.append(2.0, 96.0)
        # No explicit flush: every query must still see both samples.
        assert trace.last("dev:spo2") == (2.0, 96.0)
        assert trace.value_at("dev:spo2", 1.5) == 97.0
        assert list(trace.values("dev:spo2")) == [97.0, 96.0]
        assert len(trace) == 2
        assert writer.pending == 0

    def test_merge_drains_both_recorders(self):
        a, b = TraceRecorder(), TraceRecorder()
        writer_a = BatchedTraceWriter(a, prefix="x")
        writer_b = BatchedTraceWriter(b, prefix="y")
        writer_a.record(2.0, "s", "late")
        writer_b.record(1.0, "s", "early")
        a.merge(b)
        assert a.samples("x:s") == [(2.0, "late")]
        assert a.samples("y:s") == [(1.0, "early")]


class TestPeriodicSampler:
    def test_matches_periodic_task_schedule(self):
        # The sampler must tick at the same simulated times, and produce the
        # same kernel event count, as the call_every loop it replaces.
        task_sim, sampler_sim = Simulator(), Simulator()
        task_times, sampler_times = [], []
        task_sim.call_every(0.5, lambda: task_times.append(task_sim.now))
        PeriodicSampler(sampler_sim, 0.5,
                        lambda: sampler_times.append(sampler_sim.now)).start()
        task_sim.run(until=10.0)
        sampler_sim.run(until=10.0)
        assert sampler_times == task_times
        assert sampler_sim.event_count == task_sim.event_count

    def test_flushes_every_n_ticks(self):
        simulator = Simulator()
        trace = TraceRecorder()
        writer = BatchedTraceWriter(trace, prefix="dev")
        batch = writer.declare("v")

        def tick():
            batch.append(simulator.now, 1.0)

        PeriodicSampler(simulator, 1.0, tick, writer=writer, flush_every=4).start()
        simulator.run(until=10.0)
        # 10 ticks, flushes after ticks 4 and 8; inspect internals directly
        # (a query would drain via the read barrier and hide the batching).
        assert len(trace._signals["dev:v"].times) == 8
        assert len(batch.times) == 2
        assert len(trace.values("dev:v")) == 10  # barrier completes the view

    def test_cancel_stops_loop_and_flushes(self):
        simulator = Simulator()
        trace = TraceRecorder()
        writer = BatchedTraceWriter(trace, prefix="dev")
        batch = writer.declare("v")
        sampler = PeriodicSampler(
            simulator, 1.0, lambda: batch.append(simulator.now, 0.0),
            writer=writer, flush_every=1000)
        sampler.start()
        simulator.schedule(3.5, sampler.cancel)
        simulator.run(until=10.0)
        assert sampler.cancelled
        assert sampler.run_count == 3
        assert len(trace._signals["dev:v"].times) == 3  # cancel flushed

    def test_invalid_parameters_rejected(self):
        simulator = Simulator()
        with pytest.raises(Exception):
            PeriodicSampler(simulator, 0.0, lambda: None)
        with pytest.raises(Exception):
            PeriodicSampler(simulator, 1.0, lambda: None, flush_every=0)


class TestRollingMean:
    def test_matches_deque_reference(self):
        from collections import deque

        rng = np.random.default_rng(7)
        window = _RollingMean(4)
        reference = deque(maxlen=4)
        for value in rng.normal(95.0, 2.0, size=50):
            window.append(float(value))
            reference.append(float(value))
            # Bit-identical to the old np.mean(deque) implementation.
            assert window.mean == float(np.mean(reference))
        assert len(window) == 4

    def test_empty_window_is_nan(self):
        window = _RollingMean(4)
        assert np.isnan(window.mean)
        assert len(window) == 0

    def test_clear_and_bias(self):
        window = _RollingMean(3)
        for value in (1.0, 2.0, 3.0):
            window.append(value)
        window.bias(10.0)
        assert window.mean == pytest.approx(12.0)
        window.clear()
        assert np.isnan(window.mean)


class TestDeviceIntegration:
    def _run_oximeter(self, duration=30.0):
        simulator = Simulator()
        trace = TraceRecorder()
        patient = PatientModel(trace=trace)
        oximeter = PulseOximeter("ox-1", patient,
                                 PulseOximeterConfig(sample_period_s=2.0),
                                 trace=trace)
        simulator.register(patient)
        simulator.register(oximeter)
        simulator.run(until=duration)
        return simulator, trace, oximeter

    def test_oximeter_records_through_backbone(self):
        simulator, trace, oximeter = self._run_oximeter()
        times = trace.times("ox-1:spo2_reading")
        assert len(times) == 15
        assert list(times[:3]) == [2.0, 4.0, 6.0]
        assert list(trace.values("ox-1:spo2_reading")) == pytest.approx(
            [oximeter.current_spo2] * 15)  # flat patient => flat readings

    def test_crash_cancels_sampler_and_preserves_samples(self):
        simulator, trace, oximeter = self._run_oximeter(duration=10.0)
        count_at_crash = len(trace.times("ox-1:spo2_reading"))
        oximeter.crash()
        simulator.run(until=20.0)
        assert len(trace.times("ox-1:spo2_reading")) == count_at_crash

    def test_trace_attached_after_construction_records_signals(self):
        # `device.trace = recorder` after __init__ must behave exactly like
        # passing trace= to the constructor (the writer is rebuilt by the
        # property), not silently record events-but-no-samples.
        simulator = Simulator()
        patient = PatientModel()
        oximeter = PulseOximeter("ox-1", patient,
                                 PulseOximeterConfig(sample_period_s=2.0))
        trace = TraceRecorder()
        oximeter.trace = trace
        patient.trace = trace
        simulator.register(patient)
        simulator.register(oximeter)
        simulator.run(until=10.0)
        assert len(trace.times("ox-1:spo2_reading")) == 5
        prefix = patient.parameters.patient_id
        assert len(trace.times(f"{prefix}:spo2")) == 2

    def test_trace_attached_after_start_flushes_periodically(self):
        # A trace attached while the sampling loop is already running must be
        # flushed by the loop itself (re-pointed writer), not only by the
        # read barrier on the first query.
        simulator = Simulator()
        patient = PatientModel()
        oximeter = PulseOximeter("ox-1", patient,
                                 PulseOximeterConfig(sample_period_s=2.0))
        simulator.register(patient)
        simulator.register(oximeter)
        simulator.run(until=10.0)
        trace = TraceRecorder()
        oximeter.trace = trace
        simulator.run(until=10.0 + 2.0 * 70)  # past the 64-tick flush point
        flushed = trace._signals["ox-1:spo2_reading"].times  # no query: raw buffer
        assert len(flushed) >= 64

    def test_trace_reassignment_detaches_old_writer(self):
        simulator = Simulator()
        patient = PatientModel()
        oximeter = PulseOximeter("ox-1", patient)
        trace = TraceRecorder()
        oximeter.trace = trace
        oximeter.trace = trace  # reassign: old writer must unregister
        assert len(trace._pending_flushes) == 1
        other = TraceRecorder()
        oximeter.trace = other  # move to a fresh recorder
        assert trace._pending_flushes == []
        assert len(other._pending_flushes) == 1

    def test_detach_flushes_pending_samples(self):
        trace = TraceRecorder()
        writer = BatchedTraceWriter(trace, prefix="dev")
        writer.record(1.0, "s", 42)
        writer.detach()
        assert trace._pending_flushes == []
        assert trace.samples("dev:s") == [(1.0, 42)]

    def test_patient_model_signals_complete(self):
        simulator = Simulator()
        trace = TraceRecorder()
        patient = PatientModel(trace=trace)
        simulator.register(patient)
        simulator.run(until=60.0)
        prefix = patient.parameters.patient_id
        for signal in ("plasma_mg_per_l", "effect_site_mg_per_l", "spo2",
                       "heart_rate", "respiratory_rate", "pain", "true_map"):
            assert len(trace.times(f"{prefix}:{signal}")) == 12
