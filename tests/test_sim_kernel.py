"""Tests for the discrete-event simulation kernel."""

import json

import pytest

from golden_workload import GOLDEN_PATH, kernel_workload, pca_system_probe
from repro.sim.kernel import Process, SimulationError, Simulator, build_simulator


class TestScheduling:
    def test_initial_time_is_zero(self, simulator):
        assert simulator.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_schedule_runs_callback_at_time(self, simulator):
        fired = []
        simulator.schedule(2.5, lambda: fired.append(simulator.now))
        simulator.run()
        assert fired == [2.5]

    def test_schedule_at_absolute_time(self, simulator):
        fired = []
        simulator.schedule_at(7.0, lambda: fired.append(simulator.now))
        simulator.run()
        assert fired == [7.0]

    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_scheduling_in_past_rejected(self, simulator):
        simulator.schedule(5.0, lambda: simulator.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            simulator.run()

    def test_schedule_at_nan_rejected(self, simulator):
        # Regression: NaN slips past the `time < now` check because every
        # comparison with NaN is False, so the event would sit in the queue
        # with an unorderable key.
        with pytest.raises(SimulationError):
            simulator.schedule_at(float("nan"), lambda: None)

    @pytest.mark.parametrize("time", [float("inf"), float("-inf")])
    def test_schedule_at_infinite_time_rejected(self, simulator, time):
        with pytest.raises(SimulationError):
            simulator.schedule_at(time, lambda: None)

    def test_schedule_nan_delay_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(float("nan"), lambda: None)

    def test_schedule_infinite_delay_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(float("inf"), lambda: None)

    def test_events_ordered_by_time(self, simulator):
        order = []
        simulator.schedule(3.0, lambda: order.append("c"))
        simulator.schedule(1.0, lambda: order.append("a"))
        simulator.schedule(2.0, lambda: order.append("b"))
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self, simulator):
        order = []
        for label in "abc":
            simulator.schedule(1.0, lambda label=label: order.append(label))
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_priority_overrides_fifo(self, simulator):
        order = []
        simulator.schedule(1.0, lambda: order.append("low"), priority=5)
        simulator.schedule(1.0, lambda: order.append("high"), priority=-5)
        simulator.run()
        assert order == ["high", "low"]

    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        event = simulator.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        simulator.run()
        assert fired == []

    def test_run_until_stops_clock_at_bound(self, simulator):
        simulator.schedule(10.0, lambda: None)
        end = simulator.run(until=4.0)
        assert end == 4.0
        assert simulator.pending() == 1

    def test_run_until_executes_events_before_bound(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(9.0, lambda: fired.append(2))
        simulator.run(until=5.0)
        assert fired == [1]

    def test_event_count_increments(self, simulator):
        for _ in range(4):
            simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.event_count == 4

    def test_max_events_bound(self, simulator):
        for _ in range(10):
            simulator.schedule(1.0, lambda: None)
        simulator.run(max_events=3)
        assert simulator.event_count == 3

    def test_stop_terminates_run(self, simulator):
        fired = []

        def first():
            fired.append(1)
            simulator.stop()

        simulator.schedule(1.0, first)
        simulator.schedule(2.0, lambda: fired.append(2))
        simulator.run()
        assert fired == [1]
        assert simulator.pending() == 1

    def test_step_executes_single_event(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append("a"))
        simulator.schedule(2.0, lambda: fired.append("b"))
        assert simulator.step() is True
        assert fired == ["a"]
        assert simulator.step() is True
        assert simulator.step() is False

    def test_peek_returns_next_event_time(self, simulator):
        simulator.schedule(4.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        assert simulator.peek() == 2.0

    def test_peek_empty_queue(self, simulator):
        assert simulator.peek() is None


class TestKernelEdgeCases:
    def test_max_events_truncation_returns_time_of_last_executed(self, simulator):
        for time in (1.0, 2.0, 3.0):
            simulator.schedule(time, lambda: None)
        end = simulator.run(max_events=2)
        assert end == 2.0
        assert simulator.now == 2.0
        assert simulator.pending() == 1

    def test_max_events_spans_multiple_runs(self, simulator):
        for time in (1.0, 2.0, 3.0, 4.0):
            simulator.schedule(time, lambda: None)
        simulator.run(max_events=2)
        # max_events bounds the *total* executed count, not a per-call budget.
        end = simulator.run(max_events=3)
        assert simulator.event_count == 3
        assert end == 3.0

    def test_event_count_excludes_cancelled_events(self, simulator):
        kept = simulator.schedule(1.0, lambda: None)
        dropped = simulator.schedule(2.0, lambda: None)
        dropped.cancel()
        simulator.schedule(3.0, lambda: None)
        simulator.run()
        assert kept.cancelled is False
        assert simulator.event_count == 2

    def test_event_count_includes_step_executions(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.step()
        simulator.run()
        assert simulator.event_count == 2

    def test_same_time_priority_then_fifo_ordering(self, simulator):
        order = []
        simulator.schedule(1.0, lambda: order.append("b1"), priority=0)
        simulator.schedule(1.0, lambda: order.append("a1"), priority=-1)
        simulator.schedule(1.0, lambda: order.append("b2"), priority=0)
        simulator.schedule(1.0, lambda: order.append("a2"), priority=-1)
        simulator.schedule(1.0, lambda: order.append("c"), priority=7)
        simulator.run()
        assert order == ["a1", "a2", "b1", "b2", "c"]

    def test_cancelled_periodic_task_leaves_no_pending_event(self, simulator):
        task = simulator.call_every(1.0, lambda: None)
        simulator.run(until=2.5)
        task.cancel()
        assert simulator.pending() == 0
        simulator.run(until=10.0)
        assert task.run_count == 2

    def test_periodic_task_cancelling_itself_stops_rescheduling(self, simulator):
        ticks = []

        def tick():
            ticks.append(simulator.now)
            if len(ticks) == 3:
                task.cancel()

        task = simulator.call_every(1.0, tick)
        simulator.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert simulator.pending() == 0


class TestPeriodicTasks:
    def test_call_every_repeats(self, simulator):
        ticks = []
        simulator.call_every(1.0, lambda: ticks.append(simulator.now))
        simulator.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_call_every_custom_start(self, simulator):
        ticks = []
        simulator.call_every(2.0, lambda: ticks.append(simulator.now), start=0.5)
        simulator.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_cancel_stops_repetition(self, simulator):
        ticks = []
        task = simulator.call_every(1.0, lambda: ticks.append(simulator.now))
        simulator.schedule(2.5, task.cancel)
        simulator.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert task.cancelled

    def test_run_count(self, simulator):
        task = simulator.call_every(1.0, lambda: None)
        simulator.run(until=3.5)
        assert task.run_count == 3

    def test_zero_period_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.call_every(0.0, lambda: None)


class _CountingProcess(Process):
    def __init__(self):
        super().__init__("counter")
        self.count = 0
        self.started = False

    def start(self):
        self.started = True
        self.every(1.0, self._tick)

    def _tick(self):
        self.count += 1


class TestProcess:
    def test_register_binds_and_starts(self, simulator):
        process = _CountingProcess()
        simulator.register(process)
        assert process.started
        assert process.simulator is simulator

    def test_process_periodic_activity(self, simulator):
        process = _CountingProcess()
        simulator.register(process)
        simulator.run(until=4.5)
        assert process.count == 4

    def test_unbound_process_raises(self):
        process = _CountingProcess()
        with pytest.raises(SimulationError):
            _ = process.simulator

    def test_cancel_all_stops_tasks(self, simulator):
        process = _CountingProcess()
        simulator.register(process)
        simulator.schedule(2.5, process.cancel_all)
        simulator.run(until=10.0)
        assert process.count == 2

    def test_processes_listed(self, simulator):
        process = _CountingProcess()
        simulator.register(process)
        assert process in simulator.processes


class TestQueueIntrospection:
    def test_cancel_is_reflected_in_pending_immediately(self, simulator):
        events = [simulator.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert simulator.pending() == 5
        events[0].cancel()
        events[3].cancel()
        assert simulator.pending() == 3
        events[3].cancel()  # double-cancel must not double-decrement
        assert simulator.pending() == 3

    def test_cancel_after_execution_does_not_corrupt_pending(self, simulator):
        first = simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.step()
        first.cancel()  # already executed: a no-op for the queue accounting
        assert simulator.pending() == 1

    def test_peek_skips_cancelled_heads_without_sorting(self, simulator):
        victims = [simulator.schedule(1.0, lambda: None) for _ in range(50)]
        simulator.schedule(9.0, lambda: None, name="survivor")
        for event in victims:
            event.cancel()
        assert simulator.peek() == 9.0
        # The lazy discard physically drops the cancelled heads, so repeated
        # polling stays O(1) instead of rescanning them every call.
        assert len(simulator._queue) == 1
        assert simulator.pending() == 1

    def test_peek_does_not_disturb_execution_order(self, simulator):
        order = []
        simulator.schedule(2.0, lambda: order.append("b"))
        decoy = simulator.schedule(1.0, lambda: order.append("decoy"))
        decoy.cancel()
        assert simulator.peek() == 2.0
        simulator.run()
        assert order == ["b"]
        assert simulator.peek() is None


class TestGoldenDeterminism:
    """The kernel rewrite must be byte-identical to the seed kernel.

    The digests in ``tests/data/golden_traces.json`` were captured on the
    seed (pre-rewrite) kernel; these tests replay the same workloads through
    the current kernel and require identical execution logs, event counts,
    and trace snapshots.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_synthetic_workload_matches_seed_kernel(self, golden):
        assert kernel_workload() == golden["kernel_workload"]

    def test_closed_loop_pca_system_matches_seed_kernel(self, golden):
        probe = pca_system_probe()
        assert probe["event_count"] == golden["pca_system"]["event_count"]
        assert probe["trace_digest"] == golden["pca_system"]["trace_digest"]
        assert probe["record_digest"] == golden["pca_system"]["record_digest"]


class TestFactory:
    def test_build_simulator_default(self):
        assert build_simulator().now == 0.0

    def test_build_simulator_with_start_time(self):
        assert build_simulator({"start_time": 3.0}).now == 3.0

    def test_build_simulator_ignores_unknown_keys(self):
        assert build_simulator({"whatever": 1}).now == 0.0
