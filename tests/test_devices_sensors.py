"""Tests for the sensing devices: pulse oximeter, capnograph, BP monitor, ECG, bed."""

import numpy as np
import pytest

from repro.devices.bed import HospitalBed
from repro.devices.bp_monitor import BloodPressureMonitor, BloodPressureMonitorConfig
from repro.devices.capnograph import Capnograph, CapnographConfig
from repro.devices.ecg import ECGMonitor, ECGConfig
from repro.devices.pulse_oximeter import PulseOximeter, PulseOximeterConfig
from repro.patient.model import PatientModel
from repro.sim.kernel import Simulator


@pytest.fixture
def patient_sim():
    simulator = Simulator()
    patient = PatientModel()
    simulator.register(patient)
    return simulator, patient


class TestPulseOximeter:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PulseOximeterConfig(sample_period_s=0.0).validate()
        with pytest.raises(ValueError):
            PulseOximeterConfig(averaging_window_samples=0).validate()

    def test_signal_processing_delay_grows_with_window(self):
        small = PulseOximeterConfig(averaging_window_samples=2)
        large = PulseOximeterConfig(averaging_window_samples=8)
        assert large.signal_processing_delay_s > small.signal_processing_delay_s

    def test_publishes_spo2_and_heart_rate(self, patient_sim):
        simulator, patient = patient_sim
        oximeter = PulseOximeter("ox-1", patient)
        published = []
        oximeter.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(oximeter)
        simulator.run(until=10.0)
        topics = [topic for topic, _ in published]
        assert "spo2" in topics and "heart_rate" in topics

    def test_reading_tracks_patient(self, patient_sim):
        simulator, patient = patient_sim
        oximeter = PulseOximeter("ox-1", patient, rng=np.random.default_rng(0))
        oximeter.attach_publisher(lambda t, p: None)
        simulator.register(oximeter)
        simulator.run(until=30.0)
        assert oximeter.current_spo2 == pytest.approx(98.0, abs=2.0)

    def test_noise_applied(self, patient_sim):
        simulator, patient = patient_sim
        oximeter = PulseOximeter("ox-1", patient, PulseOximeterConfig(averaging_window_samples=1),
                                 rng=np.random.default_rng(1))
        published = []
        oximeter.attach_publisher(
            lambda topic, payload: published.append(payload["value"]) if topic == "spo2" else None
        )
        simulator.register(oximeter)
        simulator.run(until=40.0)
        assert len(published) > 5
        assert np.std(published) > 0.05

    def test_probe_off_publishes_invalid(self, patient_sim):
        simulator, patient = patient_sim
        oximeter = PulseOximeter("ox-1", patient)
        published = []
        oximeter.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(oximeter)
        oximeter.detach_probe()
        simulator.run(until=5.0)
        spo2_msgs = [p for t, p in published if t == "spo2"]
        assert spo2_msgs and not spo2_msgs[-1]["valid"]

    def test_reattach_probe_restores_readings(self, patient_sim):
        simulator, patient = patient_sim
        oximeter = PulseOximeter("ox-1", patient)
        oximeter.attach_publisher(lambda t, p: None)
        simulator.register(oximeter)
        oximeter.detach_probe()
        simulator.run(until=5.0)
        oximeter.reattach_probe()
        simulator.run(until=15.0)
        assert oximeter.current_spo2 > 90.0

    def test_freeze_holds_reported_value(self, patient_sim):
        simulator, patient = patient_sim
        oximeter = PulseOximeter("ox-1", patient)
        published = []
        oximeter.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(oximeter)
        simulator.run(until=10.0)
        oximeter.freeze()
        patient.infuse_bolus(20.0)
        simulator.run(until=20 * 60.0)
        spo2_values = [p["value"] for t, p in published if t == "spo2"]
        assert spo2_values[-1] == pytest.approx(spo2_values[-2])

    def test_corrupt_offsets_window(self, patient_sim):
        simulator, patient = patient_sim
        oximeter = PulseOximeter("ox-1", patient)
        oximeter.attach_publisher(lambda t, p: None)
        simulator.register(oximeter)
        simulator.run(until=10.0)
        before = oximeter.current_spo2
        oximeter.corrupt(spo2_offset=-20.0)
        assert oximeter.current_spo2 == pytest.approx(before - 20.0, abs=0.5)


class TestCapnograph:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CapnographConfig(sample_period_s=0.0).validate()

    def test_publishes_respiratory_rate_and_etco2(self, patient_sim):
        simulator, patient = patient_sim
        capnograph = Capnograph("cap-1", patient)
        published = []
        capnograph.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(capnograph)
        simulator.run(until=20.0)
        topics = {topic for topic, _ in published}
        assert topics == {"respiratory_rate", "etco2"}

    def test_etco2_rises_with_hypoventilation(self, patient_sim):
        simulator, patient = patient_sim
        capnograph = Capnograph("cap-1", patient)
        published = []
        capnograph.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(capnograph)
        simulator.run(until=10.0)
        normal_etco2 = [p["value"] for t, p in published if t == "etco2"][-1]
        patient.infuse_bolus(15.0)
        simulator.run(until=25 * 60.0)
        depressed_etco2 = [p["value"] for t, p in published if t == "etco2"][-1]
        assert depressed_etco2 > normal_etco2

    def test_freeze_and_unfreeze(self, patient_sim):
        simulator, patient = patient_sim
        capnograph = Capnograph("cap-1", patient)
        capnograph.attach_publisher(lambda t, p: None)
        simulator.register(capnograph)
        capnograph.freeze()
        assert capnograph._frozen
        capnograph.unfreeze()
        assert not capnograph._frozen


class TestBloodPressureMonitorAndBed:
    def test_map_reading_published(self, patient_sim):
        simulator, patient = patient_sim
        monitor = BloodPressureMonitor("bp-1", patient, BloodPressureMonitorConfig(sample_period_s=5.0))
        published = []
        monitor.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(monitor)
        simulator.run(until=20.0)
        readings = [p["value"] for t, p in published if t == "map"]
        assert readings and readings[-1] == pytest.approx(90.0, abs=5.0)

    def test_bed_move_shifts_map_reading(self, patient_sim):
        simulator, patient = patient_sim
        bed = HospitalBed("bed-1", patient, motion_duration_s=1.0)
        monitor = BloodPressureMonitor("bp-1", patient, BloodPressureMonitorConfig(sample_period_s=5.0))
        published = []
        monitor.attach_publisher(lambda topic, payload: published.append(payload["value"]))
        bed.attach_publisher(lambda t, p: None)
        simulator.register(bed)
        simulator.register(monitor)
        simulator.run(until=10.0)
        before = published[-1]
        bed.set_height(40.0)
        simulator.run(until=30.0)
        after = published[-1]
        assert after < before - 20.0

    def test_bed_publishes_context_event(self, patient_sim):
        simulator, patient = patient_sim
        bed = HospitalBed("bed-1", patient, motion_duration_s=1.0)
        published = []
        bed.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(bed)
        bed.set_height(30.0)
        simulator.run(until=5.0)
        assert published and published[0][0] == "bed_height"
        assert published[0][1]["height_cm"] == 30.0

    def test_bed_set_height_command(self, patient_sim):
        simulator, patient = patient_sim
        bed = HospitalBed("bed-1", patient, motion_duration_s=0.5)
        bed.attach_publisher(lambda t, p: None)
        simulator.register(bed)
        assert bed.handle_command("set_height", {"height_cm": 20.0})
        simulator.run(until=2.0)
        assert patient.map_model.bed_height_offset_cm == 20.0

    def test_bed_rejects_missing_height(self, patient_sim):
        simulator, patient = patient_sim
        bed = HospitalBed("bed-1", patient)
        simulator.register(bed)
        assert bed.handle_command("set_height", {}) is False

    def test_rezero_removes_artifact(self, patient_sim):
        simulator, patient = patient_sim
        monitor = BloodPressureMonitor("bp-1", patient, BloodPressureMonitorConfig(sample_period_s=5.0))
        published = []
        monitor.attach_publisher(lambda topic, payload: published.append(payload["value"]))
        simulator.register(monitor)
        patient.map_model.set_bed_height_offset(40.0)
        simulator.run(until=10.0)
        assert published[-1] < 70.0
        monitor.handle_command("rezero")
        simulator.run(until=20.0)
        assert published[-1] == pytest.approx(90.0, abs=3.0)


class TestECGMonitor:
    def test_publishes_heart_rate(self, patient_sim):
        simulator, patient = patient_sim
        ecg = ECGMonitor("ecg-1", patient, rng=np.random.default_rng(0))
        published = []
        ecg.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(ecg)
        simulator.run(until=10.0)
        readings = [p["value"] for t, p in published if t == "ecg_heart_rate"]
        assert readings
        assert readings[-1] == pytest.approx(patient.vital_signs.heart_rate_bpm, abs=8.0)

    def test_lead_off_reports_invalid(self, patient_sim):
        simulator, patient = patient_sim
        ecg = ECGMonitor("ecg-1", patient)
        published = []
        ecg.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(ecg)
        ecg.detach_lead()
        simulator.run(until=5.0)
        hr = [p for t, p in published if t == "ecg_heart_rate"]
        assert hr and not hr[-1]["valid"]
        ecg.reattach_lead()
        simulator.run(until=10.0)
        hr = [p for t, p in published if t == "ecg_heart_rate"]
        assert hr[-1]["valid"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ECGConfig(sample_period_s=0.0).validate()
