"""Tests for the slotted Reading payload type and its Mapping-compat shim."""

import json
from collections.abc import Mapping

import pytest

from repro.readings import Reading, coerce_reading


class TestReadingBasics:
    def test_field_access(self):
        reading = Reading(97.2, True, 12.5)
        assert reading.value == 97.2
        assert reading.valid is True
        assert reading.time == 12.5

    def test_defaults(self):
        reading = Reading(3.0)
        assert reading.valid is True
        assert reading.time == 0.0

    def test_slots_no_dict(self):
        assert not hasattr(Reading(1.0), "__dict__")

    def test_immutable_assignment_raises(self):
        reading = Reading(1.0)
        with pytest.raises(AttributeError, match="immutable"):
            reading.value = 2.0
        with pytest.raises(AttributeError, match="immutable"):
            reading.extra = "nope"
        with pytest.raises(AttributeError, match="immutable"):
            del reading.valid

    def test_hashable(self):
        assert Reading(1.0, True, 2.0) in {Reading(1.0, True, 2.0)}

    def test_pickle_round_trip(self):
        # Campaign workers move payloads across processes; the immutable
        # __setattr__ must not break unpickling.
        import pickle

        reading = Reading(97.0, False, 3.5)
        clone = pickle.loads(pickle.dumps(reading))
        assert clone == reading and type(clone) is Reading

    def test_repr(self):
        assert repr(Reading(1.0, False, 3.0)) == "Reading(value=1.0, valid=False, time=3.0)"


class TestMappingShim:
    """The dict-payload compatibility contract third-party handlers rely on."""

    def test_getitem(self):
        reading = Reading(88.0, False, 4.0)
        assert reading["value"] == 88.0
        assert reading["valid"] is False
        assert reading["time"] == 4.0

    def test_getitem_unknown_key_raises_keyerror(self):
        with pytest.raises(KeyError):
            Reading(1.0)["unit"]

    def test_get_with_defaults(self):
        reading = Reading(88.0)
        assert reading.get("value") == 88.0
        assert reading.get("valid", False) is True  # real field wins
        assert reading.get("unit") is None
        assert reading.get("unit", "mmHg") == "mmHg"

    def test_iteration_len_contains(self):
        reading = Reading(5.0, True, 1.0)
        assert list(reading) == ["value", "valid", "time"]
        assert len(reading) == 3
        assert "value" in reading and "unit" not in reading
        assert list(reading.keys()) == ["value", "valid", "time"]
        assert list(reading.values()) == [5.0, True, 1.0]
        assert dict(reading.items()) == {"value": 5.0, "valid": True, "time": 1.0}

    def test_isinstance_mapping(self):
        assert isinstance(Reading(1.0), Mapping)

    def test_round_trip_through_dict(self):
        reading = Reading(96.5, False, 30.0)
        as_dict = dict(reading)
        assert as_dict == {"value": 96.5, "valid": False, "time": 30.0}
        assert as_dict == reading.as_dict()
        assert Reading(**as_dict) == reading
        # ...and back through the coercion shim.
        assert coerce_reading(as_dict) == reading

    def test_equality_with_legacy_dict_payload(self):
        reading = Reading(96.5, True, 30.0)
        assert reading == {"value": 96.5, "valid": True, "time": 30.0}
        assert reading != {"value": 96.5, "valid": True, "time": 31.0}
        assert reading != {"value": 96.5}
        assert reading != 96.5

    def test_as_dict_json_matches_legacy_payload_bytes(self):
        # The trace serialisation path depends on this: a Reading rendered
        # through as_dict() must produce the same JSON as the old dict
        # literal the devices built, key order included.
        legacy = {"value": 97.0, "valid": True, "time": 8.0}
        assert json.dumps(Reading(97.0, True, 8.0).as_dict()) == json.dumps(legacy)


class TestCoerceReading:
    def test_reading_passthrough_identity(self):
        reading = Reading(1.0)
        assert coerce_reading(reading) is reading

    def test_legacy_dict_full(self):
        reading = coerce_reading({"value": 2.0, "valid": False, "time": 9.0})
        assert reading == Reading(2.0, False, 9.0)

    def test_legacy_dict_partial_uses_defaults(self):
        reading = coerce_reading({"value": 2.0}, default_time=7.0)
        assert reading == Reading(2.0, True, 7.0)

    def test_bare_numbers(self):
        assert coerce_reading(42, default_time=1.0) == Reading(42.0, True, 1.0)
        assert coerce_reading(3.5) == Reading(3.5, True, 0.0)

    def test_non_reading_payloads_rejected(self):
        assert coerce_reading({"height_cm": 30.0, "time": 5.0}) is None  # status dict
        assert coerce_reading({"attached": False}) is None
        assert coerce_reading("stop") is None
        assert coerce_reading(None) is None
        assert coerce_reading(True) is None  # bools are not measurements
        assert coerce_reading([1.0]) is None


class TestDeviceProducesReadings:
    def test_sensor_publishes_reading_stamped_with_sim_time(self):
        from repro.devices.pulse_oximeter import PulseOximeter
        from repro.patient.model import PatientModel
        from repro.sim.kernel import Simulator

        simulator = Simulator()
        patient = PatientModel()
        simulator.register(patient)
        oximeter = PulseOximeter("ox-1", patient)
        published = []
        oximeter.attach_publisher(lambda topic, payload: published.append((topic, payload)))
        simulator.register(oximeter)
        simulator.run(until=4.1)

        spo2 = [p for t, p in published if t == "spo2"]
        assert spo2, "oximeter published no spo2 readings"
        for reading in spo2:
            assert type(reading) is Reading
            assert reading.valid is True
        assert [r.time for r in spo2] == [pytest.approx(2.0), pytest.approx(4.0)]
        # The legacy shim still answers like the old dict payload did.
        assert spo2[0]["value"] == spo2[0].value

    def test_publish_reading_records_trace_signal_in_same_call(self):
        from repro.devices.bp_monitor import BloodPressureMonitor
        from repro.patient.model import PatientModel
        from repro.sim.kernel import Simulator
        from repro.sim.trace import TraceRecorder

        simulator = Simulator()
        patient = PatientModel()
        simulator.register(patient)
        trace = TraceRecorder()
        monitor = BloodPressureMonitor("bp-1", patient, trace=trace)
        monitor.attach_publisher(lambda topic, payload: None)
        simulator.register(monitor)
        simulator.run(until=130.0)
        samples = trace.samples("bp-1:map_reading")
        assert len(samples) == monitor.readings_published
        assert samples, "publish_reading(record=...) recorded nothing"
