"""Sharded campaign execution, byte-identical merges, streaming aggregation.

The contract under test: a K-way sharded campaign — each shard run
independently, on any box, under any hash seed, possibly interrupted and
resumed — merges into a store byte-identical to a serial run of the whole
campaign, and ``campaign report`` aggregates it record-at-a-time with
tables numerically identical to the materialised path.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    QuantileSketch,
    ResultStore,
    RunningMoments,
    ShardSelector,
    all_shards,
    campaign_table,
    load_results,
    load_spec_or_shard,
    run_campaign,
    streaming_campaign_table,
    write_shard_manifests,
)
from repro.campaign.aggregate import STATISTICS, StreamingAggregator
from repro.campaign.cli import main as campaign_main

SRC = Path(__file__).resolve().parents[1] / "src"

#: Short but non-trivial simulated duration for PCA-backed campaign tests.
SHORT_PCA = {"duration_s": 600.0}


def tiny_spec(**overrides):
    base = dict(
        name="shard-campaign",
        scenario="pca",
        parameters={"mode": ["open_loop", "closed_loop"], **SHORT_PCA},
        cohort_size=2,
        repeats=2,
        base_seed=123,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestShardSelector:
    def test_parse_and_label(self):
        shard = ShardSelector.parse("2/4")
        assert (shard.index, shard.count) == (2, 4)
        assert shard.label == "2/4"
        assert shard.file_stem() == "shard-02-of-04"

    @pytest.mark.parametrize("text", ["0/4", "5/4", "2", "2-4", "a/b", "/4"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(CampaignError):
            ShardSelector.parse(text)

    def test_strategy_validated(self):
        with pytest.raises(CampaignError):
            ShardSelector(1, 2, "roundrobin").validate()

    @pytest.mark.parametrize("strategy", ["contiguous", "strided"])
    @pytest.mark.parametrize("total,count", [(8, 2), (10, 3), (5, 5), (3, 7)])
    def test_partition_is_disjoint_and_complete(self, strategy, total, count):
        seen = []
        for shard in all_shards(count, strategy):
            seen.extend(shard.run_indices(total))
        assert sorted(seen) == list(range(total))
        assert len(seen) == total  # no run owned twice

    def test_contiguous_blocks_are_consecutive(self):
        indices = ShardSelector(2, 3).run_indices(10)
        assert indices == list(range(indices[0], indices[0] + len(indices)))

    def test_strided_samples_whole_range(self):
        assert ShardSelector(2, 4, "strided").run_indices(10) == [1, 5, 9]

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(CampaignError):
            ShardSelector.from_dict({"index": 1, "count": 2, "bogus": 3})

    def test_manifest_block_records_explicit_indices(self):
        block = ShardSelector(1, 2).manifest_block(5)
        assert block["run_indices"] == [0, 1, 2]
        assert block["total_runs"] == 5


class TestShardManifests:
    def test_write_and_load_round_trip(self, tmp_path):
        spec = tiny_spec()
        written = write_shard_manifests(spec, tmp_path / "shards", 3)
        assert [path.name for path, _, _ in written] == [
            "shard-01-of-03.json", "shard-02-of-03.json", "shard-03-of-03.json"]
        assert sum(runs for _, _, runs in written) == spec.grid_size()
        loaded_spec, shard = load_spec_or_shard(written[1][0])
        assert loaded_spec.as_dict() == spec.as_dict()
        assert shard == ShardSelector(2, 3)

    def test_plain_spec_loads_without_shard(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(tiny_spec().as_dict()), encoding="utf-8")
        spec, shard = load_spec_or_shard(path)
        assert shard is None
        assert spec.grid_size() == tiny_spec().grid_size()


def _run_shards(spec, directory, count, strategy="contiguous", workers=1):
    segments = []
    for shard in all_shards(count, strategy):
        segment = directory / f"seg-{shard.index}"
        run_campaign(spec, directory=segment, shard=shard, workers=workers)
        segments.append(segment)
    return segments


class TestShardMergeByteEquality:
    @pytest.mark.parametrize("strategy", ["contiguous", "strided"])
    def test_merged_identical_to_serial(self, tmp_path, strategy):
        spec = tiny_spec()
        run_campaign(spec, directory=tmp_path / "serial")
        segments = _run_shards(spec, tmp_path, 3, strategy)
        result = ResultStore(tmp_path / "merged").merge(segments)
        assert result.complete
        assert result.records == spec.grid_size()
        serial = (tmp_path / "serial" / "results.jsonl").read_bytes()
        merged = (tmp_path / "merged" / "results.jsonl").read_bytes()
        assert merged == serial
        # The merged manifest carries no shard block: it IS the serial one.
        assert ((tmp_path / "merged" / "manifest.json").read_bytes()
                == (tmp_path / "serial" / "manifest.json").read_bytes())

    def test_uneven_shard_count_still_exact(self, tmp_path):
        spec = tiny_spec()  # 8 runs across 5 shards: blocks of 2,2,2,1,1
        run_campaign(spec, directory=tmp_path / "serial")
        segments = _run_shards(spec, tmp_path, 5)
        ResultStore(tmp_path / "merged").merge(segments)
        assert ((tmp_path / "merged" / "results.jsonl").read_bytes()
                == (tmp_path / "serial" / "results.jsonl").read_bytes())

    def test_parallel_sharded_workers_still_exact(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, directory=tmp_path / "serial")
        segments = _run_shards(spec, tmp_path, 2, workers=2)
        ResultStore(tmp_path / "merged").merge(segments)
        assert ((tmp_path / "merged" / "results.jsonl").read_bytes()
                == (tmp_path / "serial" / "results.jsonl").read_bytes())

    def test_shard_index_content_hashes(self, tmp_path):
        import hashlib
        spec = tiny_spec()
        segments = _run_shards(spec, tmp_path, 2)
        result = ResultStore(tmp_path / "merged").merge(segments)
        index = json.loads(
            (tmp_path / "merged" / "shard_index.json").read_text())
        assert index["schema"] == 1
        assert index["shard_count"] == 2
        assert index["merged_records"] == spec.grid_size()
        assert index["merged_sha256"] == result.merged_sha256
        merged_bytes = (tmp_path / "merged" / "results.jsonl").read_bytes()
        assert hashlib.sha256(merged_bytes).hexdigest() == result.merged_sha256
        for entry, segment in zip(index["segments"], segments):
            segment_bytes = (segment / "results.jsonl").read_bytes()
            assert entry["sha256"] == hashlib.sha256(segment_bytes).hexdigest()


class TestShardMergeValidation:
    def test_missing_shard_named(self, tmp_path):
        spec = tiny_spec()
        segments = _run_shards(spec, tmp_path, 3)
        with pytest.raises(CampaignError, match=r"missing shard\(s\) 2/3"):
            ResultStore(tmp_path / "merged").merge(
                [segments[0], segments[2]])

    def test_allow_partial_reports_missing_runs(self, tmp_path):
        spec = tiny_spec()
        segments = _run_shards(spec, tmp_path, 3)
        result = ResultStore(tmp_path / "merged").merge(
            [segments[0], segments[2]], allow_partial=True)
        assert not result.complete
        owned_by_2 = ShardSelector(2, 3).run_indices(spec.grid_size())
        assert result.missing == owned_by_2
        kept = load_results(tmp_path / "merged")
        assert [r["run_index"] for r in kept] == sorted(
            set(range(spec.grid_size())) - set(owned_by_2))

    def test_duplicate_shard_rejected(self, tmp_path):
        spec = tiny_spec()
        segments = _run_shards(spec, tmp_path, 2)
        with pytest.raises(CampaignError, match="twice"):
            ResultStore(tmp_path / "merged").merge(
                [segments[0], segments[0]])

    def test_mismatched_spec_rejected(self, tmp_path):
        seg_a = tmp_path / "a"
        seg_b = tmp_path / "b"
        run_campaign(tiny_spec(), directory=seg_a, shard=ShardSelector(1, 2))
        run_campaign(tiny_spec(base_seed=999), directory=seg_b,
                     shard=ShardSelector(2, 2))
        with pytest.raises(CampaignError, match="different campaign spec"):
            ResultStore(tmp_path / "merged").merge([seg_a, seg_b])

    def test_plain_store_is_not_a_segment(self, tmp_path):
        run_campaign(tiny_spec(), directory=tmp_path / "plain")
        with pytest.raises(CampaignError, match="shard block"):
            ResultStore(tmp_path / "merged").merge([tmp_path / "plain"])

    def test_output_cannot_be_a_segment(self, tmp_path):
        segments = _run_shards(tiny_spec(), tmp_path, 2)
        with pytest.raises(CampaignError, match="cannot also be a segment"):
            ResultStore(segments[0]).merge(segments)

    def test_resume_with_different_shard_rejected(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, directory=tmp_path / "seg",
                     shard=ShardSelector(1, 2))
        with pytest.raises(CampaignError, match="holds shard 1/2"):
            run_campaign(spec, directory=tmp_path / "seg",
                         shard=ShardSelector(2, 2), resume=True)


class TestShardResumeAndRepair:
    def test_interrupted_shard_resumes_then_merges_exactly(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, directory=tmp_path / "serial")
        segments = _run_shards(spec, tmp_path, 2)
        # Interrupt shard 2 after the fact: drop its last record and tear
        # the new tail, exactly what a crash mid-append leaves behind.
        victim = segments[1] / "results.jsonl"
        lines = victim.read_text(encoding="utf-8").splitlines()
        victim.write_text("\n".join(lines[:-2] + [lines[-2][: len(lines[-2]) // 2]]),
                          encoding="utf-8")
        with pytest.raises(CampaignError, match="missing"):
            ResultStore(tmp_path / "merged").merge(segments)
        run_campaign(spec, directory=segments[1],
                     shard=ShardSelector(2, 2), resume=True)
        ResultStore(tmp_path / "merged2").merge(segments)
        assert ((tmp_path / "merged2" / "results.jsonl").read_bytes()
                == (tmp_path / "serial" / "results.jsonl").read_bytes())

    def test_interior_corruption_repairs_per_segment(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, directory=tmp_path / "serial")
        segments = _run_shards(spec, tmp_path, 2)
        victim = segments[0] / "results.jsonl"
        lines = victim.read_text(encoding="utf-8").splitlines()
        lines[1] = lines[1][:10] + "\x00GARBAGE" + lines[1][10:]
        victim.write_text("\n".join(lines) + "\n", encoding="utf-8")
        # The merge refuses (a run is unreadable) and the partial path
        # reports exactly one skipped line on the damaged segment.
        with pytest.raises(CampaignError, match="missing 1 run"):
            ResultStore(tmp_path / "merged").merge(segments)
        partial = ResultStore(tmp_path / "partial").merge(
            segments, allow_partial=True)
        assert partial.segments[0].skipped_lines == 1
        # repair() + resume on the damaged segment restores the record...
        store = ResultStore(segments[0])
        store.repair()
        assert store.last_repair_skipped == {"results.jsonl": 1}
        run_campaign(spec, directory=segments[0],
                     shard=ShardSelector(1, 2), resume=True)
        # ...and the merge is byte-identical again.
        ResultStore(tmp_path / "merged2").merge(segments)
        assert ((tmp_path / "merged2" / "results.jsonl").read_bytes()
                == (tmp_path / "serial" / "results.jsonl").read_bytes())


_CLI_SHARD_SCRIPT = """
import json, sys
from pathlib import Path
from repro.campaign.cli import main

base = Path({base!r})
spec = base / "spec.json"
spec.write_text(json.dumps({spec_dict!r}))
for index in (1, 2, 3):
    code = main(["run", str(spec), "--shard", f"{{index}}/3",
                 "--out", str(base / {out!r} / f"seg-{{index}}"), "--quiet"])
    assert code == 0, code
"""


class TestHashSeedIndependence:
    """Shards run in different interpreters under different hash seeds
    must still merge into the serial golden, byte for byte."""

    def _run_cli(self, script, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run([sys.executable, "-c", script],
                       capture_output=True, text=True, env=env, check=True)

    def test_merge_identical_across_hash_seeds(self, tmp_path):
        spec = tiny_spec(repeats=1)  # 4 runs: keep the subprocess leg fast
        spec_dict = spec.as_dict()
        for out, seed in (("seed0", "0"), ("seed4242", "4242")):
            script = _CLI_SHARD_SCRIPT.format(
                base=str(tmp_path), spec_dict=spec_dict, out=out)
            self._run_cli(script, seed)
        merged = {}
        for out in ("seed0", "seed4242"):
            segments = [str(tmp_path / out / f"seg-{i}") for i in (1, 2, 3)]
            code = campaign_main(
                ["merge", *segments, "--out", str(tmp_path / out / "merged"),
                 "--quiet"])
            assert code == 0
            merged[out] = (tmp_path / out / "merged" /
                           "results.jsonl").read_bytes()
        run_campaign(spec, directory=tmp_path / "serial")
        serial = (tmp_path / "serial" / "results.jsonl").read_bytes()
        assert merged["seed0"] == merged["seed4242"] == serial


class TestStreamingAggregation:
    def _records(self, tmp_path):
        directory = tmp_path / "store"
        run_campaign(tiny_spec(), directory=directory)
        return directory, load_results(directory)

    @pytest.mark.parametrize("statistic", STATISTICS)
    def test_tables_bit_identical_to_materialised(self, tmp_path, statistic):
        directory, records = self._records(tmp_path)
        metrics = ["harmed", "total_drug_delivered_mg", "min_spo2"]
        materialised = campaign_table(
            records, group_by=["mode"], metrics=metrics, statistic=statistic)
        streamed = streaming_campaign_table(
            ResultStore(directory).iter_records(),
            group_by=["mode"], metrics=metrics, statistic=statistic)
        assert streamed.render() == materialised.render()
        assert streamed.rows == materialised.rows

    def test_iter_records_streams_in_file_order(self, tmp_path):
        directory, records = self._records(tmp_path)
        streamed = list(ResultStore(directory).iter_records())
        assert streamed == records
        head = ResultStore(directory).head_records(3)
        assert head == records[:3]

    def test_merged_aggregators_match_single_pass(self, tmp_path):
        directory, records = self._records(tmp_path)
        whole = StreamingAggregator(group_by=["mode"], metrics=["min_spo2"])
        whole.consume(records)
        left = StreamingAggregator(group_by=["mode"], metrics=["min_spo2"])
        right = StreamingAggregator(group_by=["mode"], metrics=["min_spo2"])
        left.consume(records[: len(records) // 2])
        right.consume(records[len(records) // 2:])
        left.merge(right)
        for statistic in ("mean", "min", "max"):
            merged_rows = left.table(statistic=statistic).rows
            whole_rows = whole.table(statistic=statistic).rows
            for merged_row, whole_row in zip(merged_rows, whole_rows):
                assert merged_row[:-1] == whole_row[:-1]
                assert merged_row[-1] == pytest.approx(whole_row[-1])


class TestRunningMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(7)
        values = rng.normal(10.0, 3.0, size=500)
        moments = RunningMoments()
        for value in values:
            moments.add(float(value))
        assert moments.count == 500
        assert moments.mean == pytest.approx(float(values.mean()))
        assert moments.std == pytest.approx(float(values.std(ddof=1)))
        assert moments.minimum == float(values.min())
        assert moments.maximum == float(values.max())

    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(2.0, size=301)
        whole = RunningMoments()
        for value in values:
            whole.add(float(value))
        left, right = RunningMoments(), RunningMoments()
        for value in values[:120]:
            left.add(float(value))
        for value in values[120:]:
            right.add(float(value))
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean)
        assert left.std == pytest.approx(whole.std)


class TestQuantileSketch:
    def test_exact_below_capacity(self):
        sketch = QuantileSketch(capacity=64)
        values = [float(v) for v in range(50)]
        for value in values:
            sketch.add(value)
        assert sketch.exact
        assert sketch.values() == values
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert sketch.quantile(q) == pytest.approx(
                float(np.quantile(values, q)))

    def test_deterministic_beyond_capacity(self):
        def build():
            sketch = QuantileSketch(capacity=32)
            for value in range(1000):
                sketch.add(float(value * 7919 % 1000))
            return sketch
        a, b = build(), build()
        assert not a.exact
        assert a._levels == b._levels  # identical compaction, no randomness
        assert a.quantile(0.5) == b.quantile(0.5)

    def test_approximate_quantiles_bounded_error(self):
        sketch = QuantileSketch(capacity=256)
        n = 20_000
        for value in range(n):
            sketch.add(float(value))
        assert sketch.count == n
        for q in (0.1, 0.5, 0.9):
            assert sketch.quantile(q) == pytest.approx(q * n, rel=0.10)

    def test_merge_preserves_weight(self):
        left = QuantileSketch(capacity=64)
        right = QuantileSketch(capacity=64)
        for value in range(500):
            left.add(float(value))
            right.add(float(value + 500))
        left.merge(right)
        assert left.count == 1000
        assert left.quantile(0.5) == pytest.approx(500.0, rel=0.15)

    def test_rejects_bad_input(self):
        with pytest.raises(CampaignError):
            QuantileSketch(capacity=2)
        sketch = QuantileSketch()
        with pytest.raises(CampaignError):
            sketch.quantile(0.5)  # empty
        sketch.add(1.0)
        with pytest.raises(CampaignError):
            sketch.quantile(1.5)


class TestShardCLI:
    def test_shard_then_run_manifest_then_merge(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec(repeats=1).as_dict()),
                             encoding="utf-8")
        assert campaign_main(["shard", str(spec_path), "--count", "2",
                              "--out", str(tmp_path / "shards"),
                              "--quiet"]) == 0
        for index in (1, 2):
            manifest = tmp_path / "shards" / f"shard-0{index}-of-02.json"
            assert campaign_main(["run", str(manifest),
                                  "--out", str(tmp_path / f"seg-{index}"),
                                  "--quiet"]) == 0
        assert campaign_main(
            ["merge", str(tmp_path / "seg-1"), str(tmp_path / "seg-2"),
             "--out", str(tmp_path / "merged"), "--quiet"]) == 0
        run_campaign(tiny_spec(repeats=1), directory=tmp_path / "serial")
        assert ((tmp_path / "merged" / "results.jsonl").read_bytes()
                == (tmp_path / "serial" / "results.jsonl").read_bytes())
        assert (tmp_path / "merged" / "shard_index.json").exists()

    def test_run_rejects_conflicting_shard_flags(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec().as_dict()),
                             encoding="utf-8")
        campaign_main(["shard", str(spec_path), "--count", "2",
                       "--out", str(tmp_path / "shards"), "--quiet"])
        manifest = tmp_path / "shards" / "shard-01-of-02.json"
        assert campaign_main(["run", str(manifest), "--shard", "2/2",
                              "--quiet"]) == 2

    def test_report_streams_merged_store(self, tmp_path, capsys):
        spec = tiny_spec(repeats=1)
        segments = _run_shards(spec, tmp_path, 2)
        campaign_main(["merge", str(segments[0]), str(segments[1]),
                       "--out", str(tmp_path / "merged"), "--quiet"])
        assert campaign_main(["report", str(tmp_path / "merged"),
                              "--group-by", "mode"]) == 0
        out = capsys.readouterr().out
        assert "open_loop" in out and "closed_loop" in out
