"""Tests for the repro.lint contract analyzer.

Four layers of assurance:

* every rule catches its failing fixture (and only there) in the ``fix``
  package under ``tests/lint_fixtures/``,
* every passing fixture stays clean — the rules aren't just firing on
  everything,
* the analyzer is self-clean: ``src/`` (including ``repro.lint`` itself)
  produces zero failing violations with zero suppressions in the
  simulation core, and
* the baseline workflow round-trips: accepted violations pass, fixed
  ones go stale and fail until the baseline is regenerated.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import load_config, run_lint
from repro.lint.config import load_config_file

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


@pytest.fixture(scope="module")
def fixture_result():
    config = load_config_file(FIXTURES / "pyproject.toml")
    return run_lint([FIXTURES / "fix"], config, root=FIXTURES)


def rules_at(result, rel_path):
    return {v.rule for v in result.failing if v.path == rel_path}


class TestRuleFixtures:
    def test_exit_code_is_one_on_failing_fixtures(self, fixture_result):
        assert fixture_result.exit_code == 1
        assert len(fixture_result.failing) == 17

    def test_det_rules_fire_on_the_det_fixture(self, fixture_result):
        rules = rules_at(fixture_result, "fix/sim/det_bad.py")
        assert rules == {"DET01", "DET02", "DET03", "DET04"}
        det01 = [v for v in fixture_result.failing if v.rule == "DET01"]
        assert len(det01) == 2  # set expression + set-typed local
        det02 = [v for v in fixture_result.failing if v.rule == "DET02"]
        assert len(det02) == 2  # module-level draw + unseeded constructor

    def test_hot_rules_fire_on_the_hot_fixture(self, fixture_result):
        rules = rules_at(fixture_result, "fix/sim/hot_bad.py")
        assert rules == {"HOT01", "HOT02", "HOT03"}
        hot01 = next(v for v in fixture_result.failing if v.rule == "HOT01")
        assert "UnslottedPayload" in hot01.message
        assert hot01.symbol == "dispatch"

    def test_layer01_and_layer03_fire_on_the_sim_fixture(self, fixture_result):
        rules = rules_at(fixture_result, "fix/sim/layer_bad.py")
        assert rules == {"LAYER01", "LAYER03"}

    def test_layer02_fires_on_the_obs_fixture(self, fixture_result):
        assert rules_at(fixture_result, "fix/obs/leaf_bad.py") == {"LAYER02"}

    def test_layer03_fires_on_the_consumer_fixture(self, fixture_result):
        rules = rules_at(fixture_result, "fix/certification/consumer_bad.py")
        assert rules == {"LAYER03"}

    def test_lint01_fires_on_reasonless_suppression(self, fixture_result):
        rules = rules_at(fixture_result, "fix/sim/suppressed_bad.py")
        # The reasonless disable is itself a violation AND fails to
        # suppress the wall-clock read it targeted.
        assert rules == {"LINT01", "DET03"}

    def test_lint02_fires_on_syntax_error(self, fixture_result):
        assert rules_at(fixture_result, "fix/sim/broken.py") == {"LINT02"}

    def test_passing_fixtures_stay_clean(self, fixture_result):
        for clean in (
            "fix/sim/det_good.py",
            "fix/sim/hot_good.py",
            "fix/obs/leaf_good.py",
            "fix/campaign/runner.py",
        ):
            assert rules_at(fixture_result, clean) == set(), clean

    def test_reasoned_suppression_is_recorded_not_failing(self, fixture_result):
        assert rules_at(fixture_result, "fix/sim/suppressed_ok.py") == set()
        suppressed = [
            v for v in fixture_result.suppressed
            if v.path == "fix/sim/suppressed_ok.py"
        ]
        assert [v.rule for v in suppressed] == ["DET03"]

    def test_hot_marker_count_covers_marked_fixtures(self, fixture_result):
        # hot_bad has 3 marked methods, hot_good has 3.
        assert fixture_result.hot_functions == 6


class TestSelfClean:
    def test_src_is_clean_with_zero_suppressions_in_core(self):
        config = load_config(REPO)
        result = run_lint([SRC], config, root=REPO)
        assert result.failing == []
        assert result.exit_code == 0
        core = [
            v for v in result.suppressed
            if v.path.startswith(("src/repro/sim/", "src/repro/middleware/"))
        ]
        assert core == []  # the simulation core earns a clean pass outright

    def test_hot_paths_are_marked_in_src(self):
        config = load_config(REPO)
        result = run_lint([SRC], config, root=REPO)
        assert result.hot_functions >= 12

    def test_cli_json_on_src_is_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "--format", "json"],
            cwd=REPO,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["violations"] == []
        assert payload["summary"]["failing"] == 0
        assert payload["summary"]["exit_code"] == 0

    def test_cli_list_rules_names_every_family(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            cwd=REPO,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        listed = {line.split()[0] for line in proc.stdout.splitlines() if line}
        assert listed == {
            "DET01", "DET02", "DET03", "DET04",
            "GOLD01",
            "HOT01", "HOT02", "HOT03",
            "LAYER01", "LAYER02", "LAYER03",
            "LINT01",
        }


VIOLATING = '''\
"""Mini project module with one deliberate DET02 violation."""

import random


def draw():
    return random.random()
'''

FIXED = '''\
"""Mini project module after the violation was fixed."""

import random


def draw():
    return random.Random(7).random()
'''

MINI_PYPROJECT = """\
[tool.repro-lint]
paths = ["pkg"]
det-scope = ["pkg"]
"""


class TestBaselineRoundTrip:
    def _cli(self, tmp_path, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", "pkg",
             "--config", "pyproject.toml", *argv],
            cwd=tmp_path,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )

    def test_baseline_accepts_then_goes_stale(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(MINI_PYPROJECT)
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(VIOLATING)

        # 1. The violation fails the plain run.
        plain = self._cli(tmp_path)
        assert plain.returncode == 1
        assert "DET02" in plain.stdout

        # 2. Writing a baseline accepts it ...
        wrote = self._cli(tmp_path, "--baseline", "lint-baseline.json",
                          "--write-baseline")
        assert wrote.returncode == 0
        baseline = json.loads((tmp_path / "lint-baseline.json").read_text())
        assert len(baseline["fingerprints"]) == 1

        # 3. ... and the baselined run is clean.
        accepted = self._cli(tmp_path, "--baseline", "lint-baseline.json")
        assert accepted.returncode == 0, accepted.stdout

        # 4. Fixing the violation strands the baseline entry: stale -> 3.
        (pkg / "mod.py").write_text(FIXED)
        stale = self._cli(tmp_path, "--baseline", "lint-baseline.json")
        assert stale.returncode == 3
        assert "stale baseline entry" in stale.stdout

        # 5. Regenerating shrinks the baseline back to empty.
        rewrote = self._cli(tmp_path, "--baseline", "lint-baseline.json",
                            "--write-baseline")
        assert rewrote.returncode == 0
        baseline = json.loads((tmp_path / "lint-baseline.json").read_text())
        assert baseline["fingerprints"] == {}
        clean = self._cli(tmp_path, "--baseline", "lint-baseline.json")
        assert clean.returncode == 0

    def test_baseline_survives_line_moves(self, tmp_path):
        # Fingerprints hash the line's content, not its number: prepending
        # code above the accepted violation must not go stale.
        (tmp_path / "pyproject.toml").write_text(MINI_PYPROJECT)
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(VIOLATING)
        wrote = self._cli(tmp_path, "--baseline", "b.json", "--write-baseline")
        assert wrote.returncode == 0
        (pkg / "mod.py").write_text("X = 1\n\n\n" + VIOLATING)
        moved = self._cli(tmp_path, "--baseline", "b.json")
        assert moved.returncode == 0, moved.stdout


class TestGoldenRegenerationHygiene:
    """GOLD01: touching golden_traces.json requires a CHANGES.md entry
    mentioning regeneration (checked over a git range by repro.lint.gold)."""

    GOLDEN = "tests/data/golden_traces.json"

    def _git(self, repo, *argv):
        subprocess.run(["git", "-C", str(repo), *argv], check=True,
                       capture_output=True)

    def _repo(self, tmp_path):
        repo = tmp_path / "scratch"
        (repo / "tests" / "data").mkdir(parents=True)
        self._git(tmp_path, "init", str(repo))
        self._git(repo, "config", "user.email", "ci@example.invalid")
        self._git(repo, "config", "user.name", "ci")
        (repo / self.GOLDEN).write_text('{"digest": "aaa"}\n')
        (repo / "CHANGES.md").write_text("- seed entry\n")
        self._git(repo, "add", "-A")
        self._git(repo, "commit", "-qm", "seed")
        return repo

    def _gold(self, repo, base):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint.gold",
             "--base", base, "--repo", str(repo)],
            capture_output=True, text=True, env=env)

    def test_unacknowledged_golden_change_fails(self, tmp_path):
        repo = self._repo(tmp_path)
        (repo / self.GOLDEN).write_text('{"digest": "bbb"}\n')
        self._git(repo, "commit", "-aqm", "drift")
        result = self._gold(repo, "HEAD~1")
        assert result.returncode == 1
        assert "GOLD01" in result.stdout

    def test_acknowledged_regeneration_passes(self, tmp_path):
        repo = self._repo(tmp_path)
        (repo / self.GOLDEN).write_text('{"digest": "bbb"}\n')
        with open(repo / "CHANGES.md", "a") as handle:
            handle.write("- PR 9: regenerated goldens for the new scenario\n")
        self._git(repo, "commit", "-aqm", "intentional")
        result = self._gold(repo, "HEAD~1")
        assert result.returncode == 0, result.stdout

    def test_changelog_without_regeneration_word_still_fails(self, tmp_path):
        repo = self._repo(tmp_path)
        (repo / self.GOLDEN).write_text('{"digest": "bbb"}\n')
        with open(repo / "CHANGES.md", "a") as handle:
            handle.write("- PR 9: assorted fixes\n")
        self._git(repo, "commit", "-aqm", "sneaky")
        result = self._gold(repo, "HEAD~1")
        assert result.returncode == 1

    def test_untouched_goldens_pass_without_changelog(self, tmp_path):
        repo = self._repo(tmp_path)
        (repo / "other.py").write_text("x = 1\n")
        self._git(repo, "add", "-A")
        self._git(repo, "commit", "-qm", "unrelated")
        result = self._gold(repo, "HEAD~1")
        assert result.returncode == 0

    def test_bad_ref_is_a_usage_error(self, tmp_path):
        repo = self._repo(tmp_path)
        result = self._gold(repo, "no-such-ref")
        assert result.returncode == 2

    def test_rule_catalog_lists_gold01(self):
        from repro.lint.rules import rule_catalog
        assert "GOLD01" in rule_catalog()
