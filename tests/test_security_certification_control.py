"""Tests for security, certification, and control packages."""

import pytest

from repro.certification.evidence import Evidence, EvidenceStatus, EvidenceStore
from repro.certification.gsn import AssuranceCase, GoalNode, NodeType, SolutionNode, StrategyNode
from repro.certification.incremental import IncrementalCertifier
from repro.control.envelope import EnvelopeLimits, SafetyEnvelope
from repro.control.pid import PIDController, PIDGains
from repro.control.supervisory import (
    CandidateController,
    SupervisoryAdaptiveController,
    SupervisoryConfig,
)
from repro.security.attacks import Attack, AttackCampaign, standard_reprogramming_campaign
from repro.security.audit import AuditLog
from repro.security.auth import AuthenticationError, DeviceAuthenticator
from repro.security.policy import (
    CommandAuthorizationPolicy,
    SecurityPosture,
    closed_loop_attack_surface,
)


class TestDeviceAuthenticator:
    def test_provision_and_authenticate(self):
        auth = DeviceAuthenticator()
        credential = auth.provision("supervisor", b"secret-key")
        assert auth.authenticate(credential)
        assert auth.is_authenticated("supervisor")

    def test_wrong_key_rejected(self):
        auth = DeviceAuthenticator()
        auth.provision("supervisor", b"right-key")
        nonce = auth.challenge("supervisor")
        import hashlib, hmac
        wrong = hmac.new(b"wrong-key", nonce, hashlib.sha256).digest()
        assert not auth.verify("supervisor", wrong)
        assert auth.failed_attempts["supervisor"] == 1

    def test_unprovisioned_principal_rejected(self):
        auth = DeviceAuthenticator()
        with pytest.raises(AuthenticationError):
            auth.challenge("stranger")

    def test_replayed_response_rejected(self):
        auth = DeviceAuthenticator()
        credential = auth.provision("supervisor", b"key")
        nonce = auth.challenge("supervisor")
        response = credential.respond(nonce)
        assert auth.verify("supervisor", response)
        # Replaying the same response against a new nonce fails.
        auth.challenge("supervisor")
        assert not auth.verify("supervisor", response)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            DeviceAuthenticator().provision("x", b"")

    def test_deauthenticate(self):
        auth = DeviceAuthenticator()
        credential = auth.provision("s", b"k")
        auth.authenticate(credential)
        auth.deauthenticate("s")
        assert not auth.is_authenticated("s")


class TestCommandAuthorizationPolicy:
    def test_data_only_blocks_everything(self):
        policy = CommandAuthorizationPolicy(posture=SecurityPosture.DATA_ONLY)
        allowed, reason = policy.authorise("supervisor", "pump", "stop")
        assert not allowed and "data-only" in reason

    def test_open_posture_allows_authenticated(self):
        policy = CommandAuthorizationPolicy(posture=SecurityPosture.OPEN)
        policy.mark_authenticated("supervisor")
        assert policy.authorise("supervisor", "pump", "anything")[0]

    def test_open_posture_blocks_unauthenticated(self):
        policy = CommandAuthorizationPolicy(posture=SecurityPosture.OPEN)
        assert not policy.authorise("attacker", "pump", "stop")[0]

    def test_allowlist_scopes_commands(self):
        policy = CommandAuthorizationPolicy(posture=SecurityPosture.ALLOWLISTED)
        policy.mark_authenticated("supervisor")
        policy.allow("supervisor", "pump", "stop")
        assert policy.authorise("supervisor", "pump", "stop")[0]
        assert not policy.authorise("supervisor", "pump", "set_prescription")[0]
        assert not policy.authorise("other", "pump", "stop")[0]

    def test_decisions_recorded(self):
        policy = CommandAuthorizationPolicy(posture=SecurityPosture.ALLOWLISTED)
        policy.authorise("a", "b", "c")
        assert policy.denied_count == 1 and policy.allowed_count == 0

    def test_as_authoriser_adapter(self):
        policy = CommandAuthorizationPolicy(posture=SecurityPosture.OPEN, require_authentication=False)
        authorise = policy.as_authoriser()
        assert authorise("app", "pump", "stop") == (True, "open posture")

    def test_attack_surface_by_posture(self):
        critical = {("pump", "resume"), ("pump", "set_prescription")}
        open_policy = CommandAuthorizationPolicy(posture=SecurityPosture.OPEN)
        data_only = CommandAuthorizationPolicy(posture=SecurityPosture.DATA_ONLY)
        allowlisted = CommandAuthorizationPolicy(posture=SecurityPosture.ALLOWLISTED)
        allowlisted.allow("supervisor", "pump", "resume")
        assert closed_loop_attack_surface(open_policy, critical)["insider_reachable_fraction"] == 1.0
        assert closed_loop_attack_surface(data_only, critical)["insider_reachable_fraction"] == 0.0
        assert closed_loop_attack_surface(allowlisted, critical)["insider_reachable_fraction"] == 0.5


class TestAttackCampaign:
    def _setup(self, posture, allow_supervisor=True):
        auth = DeviceAuthenticator()
        supervisor_credential = auth.provision("pca-safety-app", b"supervisor-key")
        policy = CommandAuthorizationPolicy(posture=posture)
        if allow_supervisor:
            policy.allow_app_commands("pca-safety-app", "pca-pump-1", ["stop", "resume"])
        campaign = AttackCampaign(auth, policy,
                                  stolen_credentials={"pca-safety-app": supervisor_credential})
        return campaign

    def test_external_attacks_blocked_by_authentication(self):
        campaign = self._setup(SecurityPosture.OPEN)
        results = campaign.run(standard_reprogramming_campaign())
        external = [r for r in results if r.attack.kind in ("reprogram", "replay", "flood")]
        assert all(not r.succeeded for r in external)

    def test_insider_succeeds_under_open_posture(self):
        campaign = self._setup(SecurityPosture.OPEN)
        results = campaign.run(standard_reprogramming_campaign())
        insider = [r for r in results if r.attack.kind == "insider"]
        assert all(r.succeeded for r in insider)

    def test_allowlist_blocks_insider_reprogramming(self):
        campaign = self._setup(SecurityPosture.ALLOWLISTED)
        results = campaign.run(standard_reprogramming_campaign())
        insider = [r for r in results if r.attack.kind == "insider"]
        assert all(not r.succeeded for r in insider)

    def test_data_only_blocks_all(self):
        campaign = self._setup(SecurityPosture.DATA_ONLY)
        campaign.run(standard_reprogramming_campaign())
        assert campaign.success_rate() == 0.0

    def test_outcomes_breakdown(self):
        campaign = self._setup(SecurityPosture.ALLOWLISTED)
        campaign.run(standard_reprogramming_campaign())
        outcomes = campaign.outcomes()
        assert sum(outcomes.values()) == len(standard_reprogramming_campaign())

    def test_invalid_attack_kind_rejected(self):
        with pytest.raises(ValueError):
            Attack(kind="teleport", attacker="x", target_device="pump", command="stop")


class TestAuditLog:
    def test_append_and_chain_valid(self):
        log = AuditLog()
        log.append(1.0, "supervisor", "stop_pump", {"device": "pump-1"})
        log.append(2.0, "nurse", "resume_pump")
        assert len(log) == 2
        assert log.verify_chain()

    def test_tampering_detected(self):
        log = AuditLog()
        log.append(1.0, "supervisor", "stop_pump")
        log.append(2.0, "nurse", "resume_pump")
        log.tamper(0, actor="attacker")
        assert not log.verify_chain()

    def test_queries(self):
        log = AuditLog()
        log.append(1.0, "a", "x")
        log.append(2.0, "b", "x")
        log.append(3.0, "a", "y")
        assert len(log.records_for("a")) == 2
        assert len(log.records_with_action("x")) == 2


def build_assurance_case():
    case = AssuranceCase("pca-safety")
    store = EvidenceStore()
    root = case.add(GoalNode("G1", "Closed-loop PCA does not contribute to patient harm",
                             components={"system"}))
    strategy = case.add(StrategyNode("S1", "Argue over hazards"), parent_id="G1")
    g_overdose = case.add(GoalNode("G2", "Overdose is prevented", components={"supervisor", "pump"}),
                          parent_id="S1")
    g_comm = case.add(GoalNode("G3", "Communication failures are tolerated", components={"middleware"}),
                      parent_id="S1")
    store.add(Evidence("E1", "model checking of supervisor-pump protocol", "model_checking",
                       components={"supervisor", "pump"}, regeneration_cost=5.0))
    store.add(Evidence("E2", "fault-injection test campaign", "testing",
                       components={"middleware", "supervisor"}, regeneration_cost=3.0))
    store.add(Evidence("E3", "delay budget analysis", "analysis",
                       components={"pump", "oximeter"}, regeneration_cost=1.0))
    case.add(SolutionNode("Sn1", "protocol verified", "E1", components={"supervisor", "pump"}),
             parent_id="G2")
    case.add(SolutionNode("Sn2", "fault campaign passed", "E2", components={"middleware"}),
             parent_id="G3")
    case.add(SolutionNode("Sn3", "delay budget within margin", "E3", components={"pump"}),
             parent_id="G2")
    return case, store


class TestAssuranceCase:
    def test_structure_queries(self):
        case, _ = build_assurance_case()
        assert case.root_id == "G1"
        assert len(case.goals()) == 3
        assert len(case.solutions()) == 3
        assert "Sn1" in case.descendants("G1")
        assert "G1" in case.ancestors("Sn1")

    def test_root_must_be_goal(self):
        case = AssuranceCase("x")
        with pytest.raises(ValueError):
            case.add(StrategyNode("S1", "strategy first"))

    def test_solution_cannot_have_children(self):
        case, _ = build_assurance_case()
        with pytest.raises(ValueError):
            case.add(GoalNode("G9", "child of solution"), parent_id="Sn1")

    def test_duplicate_node_rejected(self):
        case, _ = build_assurance_case()
        with pytest.raises(ValueError):
            case.add(GoalNode("G1", "duplicate"), parent_id="G2")

    def test_undeveloped_goal_detection(self):
        case, _ = build_assurance_case()
        assert case.is_complete()
        case.add(GoalNode("G4", "residual risk acceptable"), parent_id="S1")
        assert not case.is_complete()
        assert case.undeveloped_goals()[0].node_id == "G4"

    def test_solutions_for_component(self):
        case, _ = build_assurance_case()
        assert {node.node_id for node in case.solutions_for_component("supervisor")} == {"Sn1"}


class TestIncrementalCertification:
    def test_well_formed_check(self):
        case, store = build_assurance_case()
        certifier = IncrementalCertifier(case, store)
        assert certifier.check_well_formed() == []
        assert certifier.certification_complete()

    def test_upgrade_invalidates_dependent_evidence_only(self):
        case, store = build_assurance_case()
        certifier = IncrementalCertifier(case, store)
        plan = certifier.apply_upgrade({"middleware"})
        assert plan.invalidated_evidence == ["E2"]
        assert store.get("E2").status == EvidenceStatus.INVALIDATED
        assert store.get("E1").status == EvidenceStatus.VALID
        assert "G3" in plan.affected_goals
        assert "G2" in plan.untouched_goals

    def test_incremental_cheaper_than_full(self):
        case, store = build_assurance_case()
        plan = IncrementalCertifier(case, store).plan_upgrade({"middleware"})
        assert plan.incremental_cost < plan.full_recert_cost
        assert 0.0 < plan.cost_saving_fraction < 1.0

    def test_upgrading_everything_costs_full(self):
        case, store = build_assurance_case()
        plan = IncrementalCertifier(case, store).plan_upgrade(
            {"supervisor", "pump", "middleware", "oximeter"}
        )
        assert plan.incremental_cost == plan.full_recert_cost

    def test_regeneration_restores_completeness(self):
        case, store = build_assurance_case()
        certifier = IncrementalCertifier(case, store)
        plan = certifier.apply_upgrade({"pump"})
        assert not certifier.certification_complete()
        certifier.regenerate(plan.invalidated_evidence)
        assert certifier.certification_complete()

    def test_missing_evidence_reported(self):
        case, store = build_assurance_case()
        case.add(SolutionNode("Sn9", "dangling evidence", "E-missing"), parent_id="G3")
        problems = IncrementalCertifier(case, store).check_well_formed()
        assert any("missing evidence" in p for p in problems)


class TestPIDController:
    def test_gains_validation(self):
        with pytest.raises(ValueError):
            PIDGains(kp=-1.0)

    def test_output_limits_enforced(self):
        pid = PIDController(PIDGains(kp=10.0), output_min=0.0, output_max=1.0, setpoint=100.0)
        assert pid.update(0.0, dt=1.0) == 1.0

    def test_proportional_action(self):
        pid = PIDController(PIDGains(kp=0.5), output_max=100.0, setpoint=10.0)
        assert pid.update(6.0, dt=1.0) == pytest.approx(2.0)

    def test_integral_accumulates(self):
        pid = PIDController(PIDGains(kp=0.0, ki=0.1), output_max=100.0, setpoint=10.0)
        first = pid.update(5.0, dt=1.0)
        second = pid.update(5.0, dt=1.0)
        assert second > first

    def test_anti_windup_stops_integral_growth_at_saturation(self):
        pid = PIDController(PIDGains(kp=0.0, ki=1.0), output_max=1.0, setpoint=10.0)
        for _ in range(100):
            pid.update(0.0, dt=1.0)
        # After the setpoint is reached the output should not take hundreds of
        # steps to unwind.
        outputs = [pid.update(20.0, dt=1.0) for _ in range(5)]
        assert outputs[-1] < 1.0

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            PIDController(PIDGains(kp=1.0)).update(0.0, dt=0.0)

    def test_reset(self):
        pid = PIDController(PIDGains(kp=1.0, ki=1.0), setpoint=5.0, output_max=10.0)
        pid.update(0.0, dt=1.0)
        pid.reset()
        assert pid.last_output == 0.0


class TestSupervisoryAdaptiveController:
    def _bank(self):
        # Candidate models: plant gain hypotheses 0.5, 1.0, 2.0.
        candidates = []
        for gain in (0.5, 1.0, 2.0):
            controller = PIDController(PIDGains(kp=1.0 / gain), output_max=10.0, setpoint=5.0)
            candidates.append(CandidateController(
                name=f"gain-{gain}",
                controller=controller,
                predictor=lambda output, dt, gain=gain: gain * output * dt,
            ))
        return candidates

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            SupervisoryAdaptiveController([])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisoryConfig(hysteresis=0.5).validate()

    def test_switches_to_best_model(self):
        controller = SupervisoryAdaptiveController(
            self._bank(), SupervisoryConfig(dwell_time_s=0.0, hysteresis=1.01, forgetting_factor=0.9)
        )
        # Simulate a plant with true gain 2.0: measurement increases by
        # 2 * output * dt each step.
        measurement = 0.0
        time = 0.0
        for _ in range(50):
            output = controller.update(time, measurement, dt=1.0)
            measurement += 2.0 * output * 1.0
            time += 1.0
        assert controller.active_candidate.name == "gain-2.0"

    def test_dwell_time_limits_switching(self):
        controller = SupervisoryAdaptiveController(
            self._bank(), SupervisoryConfig(dwell_time_s=1000.0)
        )
        measurement = 0.0
        for step in range(20):
            output = controller.update(float(step), measurement, dt=1.0)
            measurement += 2.0 * output
        assert controller.switch_count <= 1

    def test_scores_tracked_per_candidate(self):
        controller = SupervisoryAdaptiveController(self._bank())
        controller.update(0.0, 0.0, dt=1.0)
        controller.update(1.0, 1.0, dt=1.0)
        assert set(controller.scores) == {"gain-0.5", "gain-1.0", "gain-2.0"}


class TestSafetyEnvelope:
    def _envelope(self, **overrides):
        limits = dict(max_rate=5.0, max_rate_change_per_s=1.0, max_cumulative=10.0,
                      cumulative_window_s=100.0)
        limits.update(overrides)
        return SafetyEnvelope(EnvelopeLimits(**limits))

    def test_limits_validation(self):
        with pytest.raises(ValueError):
            EnvelopeLimits(max_rate=0.0, max_rate_change_per_s=1.0, max_cumulative=1.0,
                           cumulative_window_s=1.0).validate()

    def test_absolute_clamp(self):
        envelope = self._envelope(max_rate_change_per_s=1000.0)
        assert envelope.apply(1.0, 50.0) == 5.0
        assert envelope.clamp_events == 1

    def test_rate_of_change_clamp(self):
        envelope = self._envelope()
        envelope.apply(0.0, 0.0)
        assert envelope.apply(1.0, 5.0) == pytest.approx(1.0)

    def test_negative_request_clamped_to_zero(self):
        envelope = self._envelope()
        assert envelope.apply(0.0, -3.0) == 0.0

    def test_cumulative_limit(self):
        envelope = self._envelope(max_rate=100.0, max_rate_change_per_s=1000.0, max_cumulative=10.0)
        envelope.apply(0.0, 10.0)
        envelope.apply(1.0, 10.0)  # delivered 10 over the previous second
        allowed = envelope.apply(2.0, 10.0)
        assert allowed < 10.0
