"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import classify_alarms
from repro.analysis.tables import format_table
from repro.control.envelope import EnvelopeLimits, SafetyEnvelope
from repro.patient.pharmacodynamics import PDParameters, RespiratoryDepressionPD, hill
from repro.patient.pharmacokinetics import PKParameters, TwoCompartmentPK
from repro.patient.vitals import VitalSignsModel
from repro.security.audit import AuditLog
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.verification.reachability import check_invariant
from repro.verification.transition_system import Rule, TransitionSystem


positive_floats = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


class TestPKProperties:
    @given(boluses=st.lists(st.floats(min_value=0.0, max_value=20.0), min_size=1, max_size=10),
           dt=st.floats(min_value=0.1, max_value=120.0))
    @settings(max_examples=50, deadline=None)
    def test_drug_amounts_never_negative(self, boluses, dt):
        pk = TwoCompartmentPK(PKParameters())
        for bolus in boluses:
            pk.add_bolus(bolus)
            pk.advance(dt)
        assert pk.central_amount_mg >= 0.0
        assert pk.peripheral_amount_mg >= 0.0

    @given(dose=st.floats(min_value=0.1, max_value=50.0),
           dt=st.floats(min_value=1.0, max_value=60.0))
    @settings(max_examples=50, deadline=None)
    def test_total_drug_decreases_without_infusion(self, dose, dt):
        pk = TwoCompartmentPK(PKParameters())
        pk.add_bolus(dose)
        previous = pk.total_amount_mg
        for _ in range(5):
            pk.advance(dt)
            assert pk.total_amount_mg <= previous + 1e-9
            previous = pk.total_amount_mg

    @given(rate=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_concentration_bounded_by_steady_state(self, rate):
        pk = TwoCompartmentPK(PKParameters())
        steady = pk.steady_state_concentration(rate)
        for _ in range(50):
            pk.advance(5.0, infusion_rate_mg_per_min=rate)
            assert pk.plasma_concentration_mg_per_l <= steady + 1e-9


class TestPDProperties:
    @given(concentration=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_hill_bounded(self, concentration):
        value = hill(concentration, 0.05, 2.5)
        assert 0.0 <= value <= 1.0

    @given(c1=st.floats(min_value=0.0, max_value=1.0), c2=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_depression_monotone_in_concentration(self, c1, c2):
        pd = RespiratoryDepressionPD(PDParameters())
        low, high = sorted((c1, c2))
        assert pd.respiratory_depression(low) <= pd.respiratory_depression(high) + 1e-12

    @given(steps=st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_effect_site_stays_between_zero_and_max_plasma(self, steps):
        pd = RespiratoryDepressionPD(PDParameters())
        max_plasma = max(steps) if steps else 0.0
        for plasma in steps:
            effect = pd.advance(1.0, plasma)
            assert -1e-12 <= effect <= max_plasma + 1e-9


class TestVitalsProperties:
    @given(drives=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_vitals_remain_physiological(self, drives):
        model = VitalSignsModel()
        for drive in drives:
            state = model.advance(1.0, drive, analgesia=0.0)
            assert 0.0 <= state.spo2_percent <= 100.0
            assert state.respiratory_rate_bpm >= 0.0
            assert state.heart_rate_bpm > 0.0
            assert 0.0 <= state.pain_level <= 10.0


class TestKernelProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_events_execute_in_nondecreasing_time_order(self, delays):
        simulator = Simulator()
        times = []
        for delay in delays:
            simulator.schedule(delay, lambda: times.append(simulator.now))
        simulator.run()
        assert times == sorted(times)
        assert len(times) == len(delays)

    @given(seed=st.integers(min_value=0, max_value=2**20), name=st.text(min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_random_streams_deterministic(self, seed, name):
        a = RandomStreams(seed).stream(name).random(3)
        b = RandomStreams(seed).stream(name).random(3)
        assert list(a) == list(b)


class TestEnvelopeProperties:
    @given(requests=st.lists(st.floats(min_value=-10.0, max_value=100.0), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_envelope_output_always_within_limits(self, requests):
        envelope = SafetyEnvelope(EnvelopeLimits(
            max_rate=5.0, max_rate_change_per_s=2.0, max_cumulative=50.0, cumulative_window_s=1000.0))
        time = 0.0
        for request in requests:
            time += 1.0
            allowed = envelope.apply(time, request)
            assert 0.0 <= allowed <= 5.0 + 1e-9


class TestAuditLogProperties:
    @given(entries=st.lists(st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                                      st.text(max_size=8), st.text(max_size=8)),
                            min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_chain_always_verifies_untampered(self, entries):
        log = AuditLog()
        for time, actor, action in entries:
            log.append(time, actor, action)
        assert log.verify_chain()


class TestAlarmClassificationProperties:
    @given(alarms=st.lists(st.floats(min_value=0.0, max_value=1000.0), max_size=20),
           episodes=st.lists(st.tuples(st.floats(min_value=0.0, max_value=500.0),
                                       st.floats(min_value=0.0, max_value=500.0)), max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_confusion_counts_consistent(self, alarms, episodes):
        intervals = [(min(a, b), max(a, b) + 1.0) for a, b in episodes]
        confusion = classify_alarms(alarms, intervals)
        assert confusion.true_positives + confusion.false_positives == len(alarms)
        assert 0 <= confusion.false_negatives <= len(intervals)
        assert 0.0 <= confusion.precision <= 1.0
        assert 0.0 <= confusion.sensitivity <= 1.0


class TestTableProperties:
    @given(rows=st.lists(st.lists(st.one_of(st.integers(), st.floats(allow_nan=False, allow_infinity=False),
                                            st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                                                    max_size=5),
                                            st.booleans()),
                                  min_size=2, max_size=2), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_format_table_never_crashes_and_aligns(self, rows):
        rendered = format_table("t", ["a", "b"], rows)
        lines = rendered.splitlines()
        assert lines[0] == "== t =="
        assert len(lines) == 3 + len(rows)


class TestVerificationProperties:
    @given(limit=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_counter_invariant_always_proved(self, limit):
        system = TransitionSystem(
            "counter",
            variables={"value": tuple(range(limit + 1))},
            initial_states=[{"value": 0}],
            rules=[
                Rule(guard=lambda s, limit=limit: s["value"] < limit,
                     update=lambda s: {"value": s["value"] + 1}, name="inc"),
                Rule(guard=lambda s, limit=limit: s["value"] == limit,
                     update=lambda s: {"value": 0}, name="wrap"),
            ],
        )
        result = check_invariant(system, lambda s, limit=limit: 0 <= s["value"] <= limit)
        assert result.holds
        assert result.states_explored == limit + 1
