"""Failure-path tests for fault-tolerant campaign execution.

Every claim the resilience layer makes is exercised here against the
``chaos`` scenario, whose runs misbehave on command: deterministic raises
quarantine, transients retry with seeded backoff, hung runs trip the
per-run timeout, and SIGKILLed workers are survived — and in every case
the surviving runs' ``results.jsonl`` stays byte-identical to a clean
execution of the same spec.
"""

import json

import pytest

from repro.campaign.cli import main as campaign_main
from repro.campaign.engine import run_campaign
from repro.campaign.registry import CampaignError
from repro.campaign.resilience import (
    DETERMINISTIC,
    ERROR,
    OK,
    TIMEOUT,
    TRANSIENT,
    WORKER_LOST,
    Heartbeat,
    ResilienceConfig,
    RetryPolicy,
    TransientError,
    execute_with_capture,
    pid_alive,
)
from repro.campaign.spec import CampaignSpec, RunManifest
from repro.campaign.store import ResultStore, load_errors, load_results, scan_jsonl


def chaos_spec(name="chaos-test", repeats=6, base_seed=7, **params):
    return CampaignSpec(name=name, scenario="chaos",
                        parameters=dict(params), repeats=repeats,
                        base_seed=base_seed)


def manifest(seed=123, **params):
    return RunManifest(run_index=0, run_id="r0", scenario="chaos",
                       params=params, seed=seed)


# ---------------------------------------------------------------- RetryPolicy
class TestRetryPolicy:
    def test_transient_error_classified_transient(self):
        assert RetryPolicy().classify(TransientError("x")) == TRANSIENT

    def test_plain_runtime_error_is_deterministic(self):
        assert RetryPolicy().classify(RuntimeError("x")) == DETERMINISTIC

    def test_transient_subclass_matches_by_base_name(self):
        class FlakySocket(TransientError):
            pass

        assert RetryPolicy().classify(FlakySocket("x")) == TRANSIENT

    def test_wrapped_cause_keeps_classification(self):
        # The engine wraps runner failures in CampaignError; the original
        # cause must still drive the transient/deterministic decision.
        try:
            try:
                raise ConnectionError("link dropped")
            except ConnectionError as inner:
                raise CampaignError("run failed") from inner
        except CampaignError as wrapped:
            assert RetryPolicy().classify(wrapped) == TRANSIENT

    def test_backoff_is_deterministic_and_grows(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0,
                             backoff_max_s=100.0, backoff_jitter=0.5)
        first = policy.backoff_s(42, 1)
        assert first == policy.backoff_s(42, 1)  # seeded, not random
        assert 1.0 <= first <= 1.5
        assert 2.0 <= policy.backoff_s(42, 2) <= 3.0

    def test_backoff_capped_and_zero_base_is_free(self):
        policy = RetryPolicy(backoff_base_s=10.0, backoff_max_s=1.0,
                             backoff_jitter=0.0)
        assert policy.backoff_s(0, 5) == 1.0
        assert RetryPolicy(backoff_base_s=0.0).backoff_s(0, 3) == 0.0

    def test_invalid_policy_rejected(self):
        with pytest.raises(CampaignError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(CampaignError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(CampaignError):
            ResilienceConfig(run_timeout_s=0.0)


# -------------------------------------------------------- execute_with_capture
class TestExecuteWithCapture:
    def test_success_passes_through(self):
        outcome = execute_with_capture(
            manifest(), RetryPolicy(), execute=lambda m: {"ok": True})
        assert outcome == (OK, {"ok": True}, 1)

    def test_transient_retries_until_success(self):
        calls = []
        slept = []

        def flaky(m):
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("not yet")
            return {"done": True}

        kind, record, attempts = execute_with_capture(
            manifest(), RetryPolicy(max_attempts=3, backoff_base_s=0.5),
            execute=flaky, sleep=slept.append)
        assert (kind, attempts) == (OK, 3)
        assert record == {"done": True}
        assert len(slept) == 2 and all(delay >= 0.5 for delay in slept)

    def test_deterministic_failure_never_retries(self):
        calls = []

        def broken(m):
            calls.append(1)
            raise ValueError("bad config")

        kind, record, attempts = execute_with_capture(
            manifest(), RetryPolicy(max_attempts=5), execute=broken)
        assert (kind, attempts) == (ERROR, 1)
        assert len(calls) == 1
        assert record["error"]["classification"] == DETERMINISTIC
        assert record["error"]["type"] == "ValueError"

    def test_transient_exhaustion_quarantines_as_transient(self):
        def always_flaky(m):
            raise TransientError("forever")

        kind, record, attempts = execute_with_capture(
            manifest(), RetryPolicy(max_attempts=2), execute=always_flaky)
        assert (kind, attempts) == (ERROR, 2)
        assert record["error"]["classification"] == TRANSIENT
        assert record["error"]["attempts"] == 2

    def test_keyboard_interrupt_propagates(self):
        def interrupted(m):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            execute_with_capture(manifest(), RetryPolicy(), execute=interrupted)

    def test_error_record_mirrors_run_envelope(self):
        m = manifest(seed=99, cell=3)

        def broken(run):
            raise RuntimeError("boom")

        _kind, record, _attempts = execute_with_capture(
            m, RetryPolicy(), execute=broken)
        assert record["run_index"] == m.run_index
        assert record["run_id"] == m.run_id
        assert record["scenario"] == "chaos"
        assert record["seed"] == 99
        assert record["params"] == {"cell": 3}
        error = record["error"]
        assert len(error["traceback_digest"]) == 64
        assert "boom" in error["message"]
        assert error["wall_s"] >= 0.0
        json.dumps(record)  # the quarantine record must be plain JSON

    def test_on_retry_called_per_retry(self):
        retries = []

        def flaky(m):
            if len(retries) < 2:
                raise TransientError("x")
            return {}

        execute_with_capture(manifest(), RetryPolicy(max_attempts=3),
                             execute=flaky, on_retry=lambda: retries.append(1))
        assert len(retries) == 2


# ----------------------------------------------------------- serial campaigns
class TestSerialResilience:
    def test_failures_raise_by_default_without_resilience(self):
        with pytest.raises(CampaignError, match="scripted deterministic"):
            run_campaign(chaos_spec(raise_at="1"))

    def test_quarantine_isolates_failing_runs(self, tmp_path):
        report = run_campaign(chaos_spec(raise_at="1,3"), directory=tmp_path,
                              resilience=ResilienceConfig())
        assert (report.ok, report.quarantined) == (4, 2)
        assert report.total == 4  # only surviving runs in results
        errors = load_errors(tmp_path)
        assert [e["run_index"] for e in errors] == [1, 3]
        assert all(e["error"]["classification"] == DETERMINISTIC
                   for e in errors)

    def test_transient_runs_retry_in_place(self, tmp_path):
        report = run_campaign(chaos_spec(flaky_at="2", fail_attempts=2),
                              directory=tmp_path,
                              resilience=ResilienceConfig())
        assert (report.ok, report.retried, report.quarantined) == (6, 1, 0)
        assert not (tmp_path / "errors.jsonl").exists()
        by_index = {r["run_index"]: r for r in load_results(tmp_path)}
        assert by_index[2]["result"]["attempts"] == 2

    def test_resume_redispatches_quarantined_runs(self, tmp_path):
        # First pass: retry budget of 1 quarantines the flaky run.
        spec = chaos_spec(flaky_at="2", fail_attempts=2)
        first = run_campaign(spec, directory=tmp_path,
                             resilience=ResilienceConfig(
                                 retry=RetryPolicy(max_attempts=1)))
        assert first.quarantined == 1
        assert len(load_errors(tmp_path)) == 1
        # Resume with enough budget: the run succeeds, quarantine is empty.
        second = run_campaign(spec, directory=tmp_path, resume=True,
                              resilience=ResilienceConfig())
        assert (second.ok, second.skipped) == (1, 5)
        assert not (tmp_path / "errors.jsonl").exists()
        assert len(load_results(tmp_path)) == 6

    def test_quarantined_results_match_clean_reference(self, tmp_path):
        # The surviving runs of a failing campaign must be byte-identical
        # to the same runs of a campaign that never failed.
        failing = run_campaign(chaos_spec(raise_at="1"),
                               directory=tmp_path / "failing",
                               resilience=ResilienceConfig())
        clean = run_campaign(chaos_spec(), directory=tmp_path / "clean",
                             resilience=ResilienceConfig())
        # Fixed (non-swept) params differ between the two specs, but run ids
        # — and therefore seeds and results — must not.
        survivors = {r["run_index"]: (r["seed"], r["result"])
                     for r in failing.records}
        reference = {r["run_index"]: (r["seed"], r["result"])
                     for r in clean.records}
        assert all(reference[i] == survivors[i] for i in survivors)


# --------------------------------------------------------- parallel campaigns
class TestParallelResilience:
    CONFIG = ResilienceConfig(run_timeout_s=5.0, heartbeat_grace_s=15.0)

    def test_worker_raise_does_not_poison_the_pool(self, tmp_path):
        report = run_campaign(chaos_spec(raise_at="1", repeats=8),
                              workers=2, directory=tmp_path,
                              resilience=ResilienceConfig())
        assert (report.ok, report.quarantined) == (7, 1)
        assert len(load_results(tmp_path)) == 7

    def test_sigkilled_worker_is_survived(self, tmp_path):
        report = run_campaign(chaos_spec(kill_at="2", repeats=8),
                              workers=2, directory=tmp_path,
                              resilience=self.CONFIG)
        assert report.ok == 7
        assert report.quarantined == 1
        assert report.worker_restarts >= 1
        errors = load_errors(tmp_path)
        assert errors[0]["error"]["classification"] == WORKER_LOST
        assert errors[0]["run_index"] == 2

    def test_hung_run_times_out_and_is_quarantined(self, tmp_path):
        config = ResilienceConfig(run_timeout_s=1.0, heartbeat_grace_s=15.0)
        report = run_campaign(chaos_spec(hang_at="1", hang_s=60.0, repeats=6),
                              workers=2, directory=tmp_path,
                              resilience=config)
        assert (report.ok, report.quarantined, report.timed_out) == (5, 1, 1)
        errors = load_errors(tmp_path)
        assert errors[0]["error"]["classification"] == TIMEOUT

    def test_parallel_survivors_byte_identical_to_serial(self, tmp_path):
        spec = chaos_spec(raise_at="1", flaky_at="3", repeats=8)
        run_campaign(spec, directory=tmp_path / "serial",
                     resilience=ResilienceConfig())
        run_campaign(spec, workers=3, directory=tmp_path / "parallel",
                     resilience=ResilienceConfig())
        serial = (tmp_path / "serial" / "results.jsonl").read_bytes()
        parallel = (tmp_path / "parallel" / "results.jsonl").read_bytes()
        assert serial == parallel


# ------------------------------------------------------- interrupt and resume
class TestInterruptResume:
    def test_keyboard_interrupt_leaves_store_closed_and_resumable(self, tmp_path):
        spec = chaos_spec(repeats=6)
        interrupted_dir = tmp_path / "interrupted"

        def interrupt_after_three(done, total, record):
            if done >= 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, directory=interrupted_dir,
                         progress=interrupt_after_three)
        # The store was flushed and closed on the way out: the finished
        # runs are on disk and the campaign resumes cleanly.
        assert len(scan_jsonl(interrupted_dir / "results.jsonl")[0]) == 3
        report = run_campaign(spec, directory=interrupted_dir, resume=True)
        assert (report.executed, report.skipped) == (3, 3)

        reference_dir = tmp_path / "reference"
        run_campaign(spec, directory=reference_dir)
        assert ((interrupted_dir / "results.jsonl").read_bytes()
                == (reference_dir / "results.jsonl").read_bytes())

    def test_interrupt_propagates_in_resilient_mode(self, tmp_path):
        def interrupt_immediately(done, total, record):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(chaos_spec(), directory=tmp_path,
                         progress=interrupt_immediately,
                         resilience=ResilienceConfig())


# ------------------------------------------------------------- store hardening
class TestStoreCorruption:
    def fill(self, tmp_path, count=5):
        store = ResultStore(tmp_path)
        for index in range(count):
            store.append({"run_index": index, "value": index * 10})
        store.close()
        return store

    def corrupt_line(self, path, lineno):
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[lineno] = '{"run_index": ' + "\x00garbage\n"
        path.write_text("".join(lines), encoding="utf-8")

    def test_interior_corruption_skipped_not_truncated(self, tmp_path):
        store = self.fill(tmp_path)
        self.corrupt_line(store.results_path, 2)
        kept = store.repair()
        assert kept == 4
        assert store.last_repair_skipped == {"results.jsonl": 1}
        assert [r["run_index"] for r in store.records()] == [0, 1, 3, 4]

    def test_torn_tail_and_interior_corruption_together(self, tmp_path):
        store = self.fill(tmp_path)
        self.corrupt_line(store.results_path, 1)
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"run_index": 99, "torn')
        assert store.repair() == 4
        assert store.last_repair_skipped == {"results.jsonl": 2}

    def test_errors_file_repaired_too(self, tmp_path):
        store = ResultStore(tmp_path)
        for index in range(3):
            store.append_error({"run_index": index, "error": {"type": "X"}})
        store.close()
        self.corrupt_line(store.errors_path, 1)
        store.repair()
        assert store.last_repair_skipped == {"errors.jsonl": 1}
        assert [e["run_index"] for e in store.error_records()] == [0, 2]

    def test_scan_jsonl_reports_skips(self, tmp_path):
        store = self.fill(tmp_path, count=4)
        self.corrupt_line(store.results_path, 0)
        records, skipped = scan_jsonl(store.results_path)
        assert skipped == 1
        assert [r["run_index"] for r in records] == [1, 2, 3]

    def test_reset_errors_truncates(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append_error({"run_index": 0, "error": {}})
        store.reset_errors()
        assert store.error_records() == []

    def test_finalize_errors_sorts_and_drops_empty_file(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append_error({"run_index": 2, "error": {}})
        store.append_error({"run_index": 0, "error": {}})
        ordered = store.finalize_errors()
        assert [e["run_index"] for e in ordered] == [0, 2]
        store2 = ResultStore(tmp_path / "empty")
        store2.finalize_errors()
        assert not store2.errors_path.exists()

    def test_repair_handles_missing_errors_file(self, tmp_path):
        store = self.fill(tmp_path)
        assert not store.errors_path.exists()
        assert store.repair() == 5
        assert not store.errors_path.exists()


# ------------------------------------------------------------------ heartbeat
class TestHeartbeat:
    def test_roundtrip_and_cleanup(self, tmp_path):
        heartbeat = Heartbeat(str(tmp_path / "hb"))
        assert heartbeat.read(0) is None
        heartbeat.start(0)
        pid, started_at = heartbeat.read(0)
        assert pid_alive(pid)
        assert started_at > 0
        heartbeat.finish(0)
        assert heartbeat.read(0) is None
        heartbeat.cleanup()
        assert not heartbeat.directory.exists()

    def test_pid_alive_on_dead_pid(self):
        # PID 2**22 is above the default pid_max on Linux.
        assert not pid_alive(2 ** 22)


# ------------------------------------------------------------------------ CLI
class TestResilienceCLI:
    def write_spec(self, tmp_path, **over):
        payload = {"name": "cli-chaos", "scenario": "chaos",
                   "parameters": {"raise_at": "1", "flaky_at": "2"},
                   "repeats": 5, "base_seed": 3}
        payload.update(over)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_isolate_failures_flag_quarantines_and_exits_zero(
            self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        out_dir = tmp_path / "campaign"
        assert campaign_main(["run", str(spec_path), "--out", str(out_dir),
                              "--isolate-failures"]) == 0
        out = capsys.readouterr().out
        assert "4 ok (1 after retry), 1 quarantined" in out
        assert "errors.jsonl" in out
        assert len(load_errors(out_dir)) == 1

    def test_without_isolate_failures_cli_fails(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        assert campaign_main(["run", str(spec_path), "--quiet"]) == 2

    def test_run_timeout_requires_isolate_failures(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        assert campaign_main(["run", str(spec_path), "--quiet",
                              "--run-timeout", "5"]) == 2

    def test_json_mode_emits_outcome_event(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        assert campaign_main(["run", str(spec_path), "--json",
                              "--isolate-failures", "--retries", "1"]) == 0
        events = [json.loads(line)
                  for line in capsys.readouterr().out.splitlines()]
        outcome = next(e for e in events if e["event"] == "campaign-outcomes")
        assert outcome["quarantined"] == 2  # flaky had no retry budget
        assert outcome["ok"] == 3


# ---------------------------------------------------------------- fault sweeps
class TestFaultSweepSpecs:
    def outage_spec(self, **over):
        data = dict(
            name="outage", scenario="pca",
            parameters={"duration_s": 60.0},
            faults=[{"kind": "channel_outage", "start": [30.0, 60.0],
                     "duration": [10.0, 20.0],
                     "target": "uplink:pulse-ox-1"}],
            base_seed=3,
        )
        data.update(over)
        return CampaignSpec(**data)

    def test_fault_fields_become_sweep_axes(self):
        spec = self.outage_spec()
        assert spec.sweep_axes() == ["fault0.start", "fault0.duration"]
        assert spec.grid_size() == 4
        manifests = spec.expand()
        assert len(manifests) == 4
        assert manifests[0].run_id == "fault0.start=30.0&fault0.duration=10.0&rep=0"

    def test_resolved_fault_values_land_in_params_and_plan(self):
        manifests = self.outage_spec().expand()
        last = manifests[-1]
        assert last.params["fault0.start"] == 60.0
        assert last.params["fault0.duration"] == 20.0
        plan = last.params["fault_plan"]
        assert plan == [{"kind": "channel_outage", "start": 60.0,
                         "duration": 20.0, "target": "uplink:pulse-ox-1",
                         "parameters": {}}]

    def test_faults_on_unsupporting_scenario_rejected(self):
        spec = CampaignSpec(name="x", scenario="chaos",
                            faults=[{"kind": "device_crash", "start": 1.0}])
        with pytest.raises(CampaignError, match="does not support fault"):
            spec.validate()

    def test_unknown_fault_field_rejected(self):
        spec = self.outage_spec(
            faults=[{"kind": "channel_outage", "start": 1.0, "severity": 9}])
        with pytest.raises(CampaignError, match="unknown fields"):
            spec.validate()

    def test_unknown_fault_kind_rejected(self):
        spec = self.outage_spec(faults=[{"kind": "gremlins", "start": 1.0}])
        with pytest.raises(CampaignError, match="kind"):
            spec.validate()

    def test_empty_fault_sweep_rejected(self):
        spec = self.outage_spec(
            faults=[{"kind": "channel_outage", "start": [],
                     "target": "uplink:pulse-ox-1"}])
        with pytest.raises(CampaignError, match="sweeps no values"):
            spec.validate()

    def test_as_dict_roundtrip_carries_faults(self):
        spec = self.outage_spec()
        clone = CampaignSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert clone.faults == spec.faults
        assert clone.expand()[0].run_id == spec.expand()[0].run_id

    def test_faultless_spec_dict_unchanged(self):
        # No 'faults' key for fault-less specs: manifests written before
        # this feature existed still compare equal on resume.
        spec = CampaignSpec(name="plain", scenario="chaos")
        assert "faults" not in spec.as_dict()

    def test_outage_sweep_executes_and_groups(self, tmp_path):
        spec = self.outage_spec(
            faults=[{"kind": "channel_outage", "start": 20.0,
                     "duration": [5.0, 15.0],
                     "target": "uplink:pulse-ox-1"}])
        report = run_campaign(spec, directory=tmp_path)
        assert report.ok == 2
        by_duration = {r["params"]["fault0.duration"] for r in report.records}
        assert by_duration == {5.0, 15.0}
