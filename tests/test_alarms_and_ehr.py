"""Tests for alarm systems (threshold, adaptive, smart, fatigue) and the EHR."""

import numpy as np
import pytest

from repro.alarms.adaptive import AdaptiveMargins, AdaptiveThresholdAlarm, adaptive_rules_for_patient
from repro.alarms.fatigue import AlarmFatigueModel, FatigueParameters
from repro.alarms.smart import (
    ContextEvent,
    CorroborationRule,
    SmartAlarmEngine,
    SuppressionRule,
    bed_map_suppression_rules,
    spo2_wire_disconnection_rules,
)
from repro.alarms.thresholds import (
    AlarmSeverity,
    ThresholdAlarm,
    ThresholdRule,
    default_adult_rules,
)
from repro.ehr.access import AccessPolicy, AccessRequest, Role
from repro.ehr.store import EHRStore, HistoryEntry
from repro.patient.population import PatientPopulation
from repro.readings import Reading


class TestThresholdAlarm:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            ThresholdRule(vital="spo2", threshold=90.0, direction="sideways")
        with pytest.raises(ValueError):
            ThresholdRule(vital="spo2", threshold=90.0, persistence_s=-1.0)

    def test_below_rule_fires(self):
        alarm = ThresholdAlarm("a", [ThresholdRule("spo2", 90.0, "below")])
        raised = alarm.observe(10.0, "spo2", 88.0)
        assert len(raised) == 1
        assert raised[0].vital == "spo2"

    def test_above_rule_fires(self):
        alarm = ThresholdAlarm("a", [ThresholdRule("heart_rate", 120.0, "above")])
        assert alarm.observe(0.0, "heart_rate", 130.0)

    def test_no_alarm_within_limits(self):
        alarm = ThresholdAlarm("a", default_adult_rules())
        assert alarm.observe(0.0, "spo2", 97.0) == []
        assert alarm.observe(0.0, "heart_rate", 75.0) == []

    def test_other_vital_ignored(self):
        alarm = ThresholdAlarm("a", [ThresholdRule("spo2", 90.0)])
        assert alarm.observe(0.0, "heart_rate", 10.0) == []

    def test_rearm_time_suppresses_repeats(self):
        alarm = ThresholdAlarm("a", [ThresholdRule("spo2", 90.0)], rearm_time_s=60.0)
        assert alarm.observe(0.0, "spo2", 85.0)
        assert alarm.observe(10.0, "spo2", 85.0) == []
        assert alarm.observe(61.0, "spo2", 85.0)

    def test_persistence_filter(self):
        alarm = ThresholdAlarm("a", [ThresholdRule("spo2", 90.0, persistence_s=30.0)])
        assert alarm.observe(0.0, "spo2", 85.0) == []
        assert alarm.observe(10.0, "spo2", 85.0) == []
        assert alarm.observe(31.0, "spo2", 85.0)

    def test_persistence_resets_on_recovery(self):
        alarm = ThresholdAlarm("a", [ThresholdRule("spo2", 90.0, persistence_s=30.0)])
        alarm.observe(0.0, "spo2", 85.0)
        alarm.observe(10.0, "spo2", 95.0)
        assert alarm.observe(35.0, "spo2", 85.0) == []

    def test_alarm_times_and_filtering(self):
        alarm = ThresholdAlarm("a", default_adult_rules(), rearm_time_s=0.0)
        alarm.observe(1.0, "spo2", 80.0)
        alarm.observe(2.0, "map", 50.0)
        assert alarm.alarm_times == [1.0, 2.0]
        assert len(alarm.alarms_for("map")) == 1


class TestThresholdAlarmReadingIntake:
    def _alarm(self):
        return ThresholdAlarm("t", [
            ThresholdRule(vital="spo2", threshold=90.0, direction="below",
                          severity=AlarmSeverity.CRITICAL),
        ], rearm_time_s=0.0)

    def test_observe_reading_matches_observe(self):
        via_reading, via_scalar = self._alarm(), self._alarm()
        raised_r = via_reading.observe_reading("spo2", Reading(85.0, True, 10.0))
        raised_s = via_scalar.observe(10.0, "spo2", 85.0)
        assert len(raised_r) == len(raised_s) == 1
        assert raised_r[0] == raised_s[0]

    def test_invalid_reading_raises_nothing(self):
        alarm = self._alarm()
        # Probe-off artefact: value 0.0 would trip the threshold if the
        # validity flag were ignored.
        assert alarm.observe_reading("spo2", Reading(0.0, False, 10.0)) == []
        assert alarm.alarms == []

    def test_smart_engine_observe_reading(self):
        engine = SmartAlarmEngine(self._alarm())
        assert engine.observe_reading("spo2", Reading(0.0, False, 5.0)) == []
        raised = engine.observe_reading("spo2", Reading(84.0, True, 6.0))
        assert len(raised) == 1
        assert raised[0].time == 6.0


class TestAdaptiveAlarm:
    @pytest.fixture
    def ehr_with_athlete(self):
        ehr = EHRStore()
        population = PatientPopulation(seed=11)
        athlete = population.sample_one("athlete-1", athlete=True)
        typical = population.sample_one("typical-1")
        ehr.admit_from_parameters(athlete)
        ehr.admit_from_parameters(typical)
        return ehr, athlete, typical

    def test_margins_validation(self):
        with pytest.raises(ValueError):
            AdaptiveMargins(heart_rate_low_fraction=1.5).validate()

    def test_athlete_gets_lower_heart_rate_limit(self, ehr_with_athlete):
        ehr, athlete, typical = ehr_with_athlete
        athlete_rules = adaptive_rules_for_patient(ehr, athlete.patient_id)
        typical_rules = adaptive_rules_for_patient(ehr, typical.patient_id)
        athlete_low = next(r for r in athlete_rules if r.vital == "heart_rate" and r.direction == "below")
        typical_low = next(r for r in typical_rules if r.vital == "heart_rate" and r.direction == "below")
        assert athlete_low.threshold < typical_low.threshold

    def test_athlete_bradycardia_not_alarmed_adaptively(self, ehr_with_athlete):
        ehr, athlete, typical = ehr_with_athlete
        fixed = ThresholdAlarm("fixed", default_adult_rules())
        adaptive = AdaptiveThresholdAlarm("adaptive", ehr, athlete.patient_id)
        resting_hr = athlete.baseline_heart_rate_bpm  # below 60
        assert fixed.observe(0.0, "heart_rate", resting_hr - 3.0)
        assert adaptive.observe(0.0, "heart_rate", resting_hr - 3.0) == []

    def test_adaptive_still_alarms_on_genuine_bradycardia(self, ehr_with_athlete):
        ehr, athlete, _ = ehr_with_athlete
        adaptive = AdaptiveThresholdAlarm("adaptive", ehr, athlete.patient_id)
        assert adaptive.observe(0.0, "heart_rate", athlete.baseline_heart_rate_bpm * 0.5)

    def test_missing_baseline_falls_back_to_default(self):
        ehr = EHRStore()
        ehr.admit("mystery")
        rules = adaptive_rules_for_patient(ehr, "mystery")
        spo2_rule = next(r for r in rules if r.vital == "spo2")
        assert spo2_rule.threshold == pytest.approx(91.0)

    def test_refresh_from_ehr_picks_up_new_baseline(self, ehr_with_athlete):
        ehr, athlete, _ = ehr_with_athlete
        adaptive = AdaptiveThresholdAlarm("adaptive", ehr, athlete.patient_id)
        ehr.set_baseline(athlete.patient_id, "heart_rate_bpm", 90.0)
        adaptive.refresh_from_ehr()
        low = next(r for r in adaptive.rules if r.vital == "heart_rate" and r.direction == "below")
        assert low.threshold == pytest.approx(90.0 * 0.65)


class TestSmartAlarmEngine:
    def _engine(self, **kwargs):
        base = ThresholdAlarm("base", default_adult_rules(), rearm_time_s=0.0)
        return SmartAlarmEngine(base, **kwargs)

    def test_clinical_alarm_passes_through_without_rules(self):
        engine = self._engine()
        raised = engine.observe(0.0, "spo2", 80.0)
        assert len(raised) == 1
        assert engine.counts()["clinical"] == 1

    def test_corroborated_alarm_is_clinical(self):
        engine = self._engine(corroboration_rules=spo2_wire_disconnection_rules())
        engine.observe(0.0, "map", 55.0)           # blood pressure also collapsing
        raised = engine.observe(1.0, "spo2", 70.0)
        assert raised  # genuine emergency
        assert engine.counts()["technical"] == 0 or engine.counts()["clinical"] >= 1

    def test_uncorroborated_spo2_drop_becomes_technical(self):
        engine = self._engine(corroboration_rules=spo2_wire_disconnection_rules())
        engine.observe(0.0, "map", 92.0)            # blood pressure normal
        raised = engine.observe(1.0, "spo2", 40.0)  # probe fell off
        assert raised == []
        assert engine.counts()["technical"] == 1
        assert engine.counts()["clinical"] == 0

    def test_stale_corroboration_ignored(self):
        engine = self._engine(corroboration_rules=spo2_wire_disconnection_rules())
        engine.observe(0.0, "map", 92.0)
        raised = engine.observe(500.0, "spo2", 40.0)  # MAP reading far too old
        assert raised  # falls back to clinical because corroboration is stale

    def test_context_suppression(self):
        engine = self._engine(suppression_rules=bed_map_suppression_rules(window_s=60.0))
        engine.observe_context(ContextEvent(time=10.0, kind="bed_height_change", source="bed"))
        raised = engine.observe(30.0, "map", 55.0)
        assert raised == []
        assert engine.counts()["suppressed"] == 1
        assert engine.technical_advisories  # re-zero advisory

    def test_context_outside_window_does_not_suppress(self):
        engine = self._engine(suppression_rules=bed_map_suppression_rules(window_s=60.0))
        engine.observe_context(ContextEvent(time=10.0, kind="bed_height_change", source="bed"))
        raised = engine.observe(200.0, "map", 55.0)
        assert len(raised) == 1

    def test_suppression_rule_validation(self):
        with pytest.raises(ValueError):
            SuppressionRule(vital="map", context_kind="bed", window_s=0.0)


class TestAlarmFatigue:
    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            FatigueParameters(base_response_probability=0.0).validate()
        with pytest.raises(ValueError):
            FatigueParameters(half_life_false_alarms=0.0).validate()

    def test_no_fatigue_initially(self):
        model = AlarmFatigueModel()
        assert model.response_probability(0.0) == pytest.approx(0.97)

    def test_false_alarms_reduce_response_probability(self):
        model = AlarmFatigueModel()
        for index in range(30):
            model.record_alarm(float(index), is_false=True)
        assert model.response_probability(31.0) < 0.5

    def test_true_alarms_do_not_cause_fatigue(self):
        model = AlarmFatigueModel()
        for index in range(30):
            model.record_alarm(float(index), is_false=False)
        assert model.response_probability(31.0) == pytest.approx(0.97)

    def test_floor_respected(self):
        model = AlarmFatigueModel(FatigueParameters(floor=0.2, half_life_false_alarms=1.0))
        for index in range(100):
            model.record_alarm(float(index), is_false=True)
        assert model.response_probability(101.0) == pytest.approx(0.2)

    def test_old_false_alarms_forgotten(self):
        model = AlarmFatigueModel(FatigueParameters(memory_window_s=100.0))
        for index in range(20):
            model.record_alarm(float(index), is_false=True)
        assert model.recent_false_alarms(1000.0) == 0
        assert model.response_probability(1000.0) == pytest.approx(0.97)

    def test_simulate_responses_degrades_after_false_burst(self):
        model = AlarmFatigueModel(FatigueParameters(half_life_false_alarms=5.0))
        stream = [(float(t), True) for t in range(50)] + [(100.0, False)]
        responses = model.simulate_responses(stream, rng=np.random.default_rng(0))
        assert len(responses) == 51
        # Responses late in the stream should include misses.
        assert not all(responses[25:])


class TestEHRStore:
    def test_admit_and_get(self):
        ehr = EHRStore()
        record = ehr.admit("p1", {"age": 60})
        assert ehr.get("p1") is record
        assert "p1" in ehr and len(ehr) == 1

    def test_admit_twice_merges_demographics(self):
        ehr = EHRStore()
        ehr.admit("p1", {"age": 60})
        ehr.admit("p1", {"sex": "F"})
        assert ehr.get("p1").demographics == {"age": 60, "sex": "F"}

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            EHRStore().get("ghost")

    def test_admit_from_parameters_sets_baselines(self):
        ehr = EHRStore()
        patient = PatientPopulation(seed=1).sample_one("p1", athlete=True)
        record = ehr.admit_from_parameters(patient)
        assert record.vital_baselines["heart_rate_bpm"] == patient.baseline_heart_rate_bpm
        assert record.is_athlete

    def test_observations_build_baseline(self):
        ehr = EHRStore()
        ehr.admit("p1")
        for index, value in enumerate([88.0, 90.0, 92.0]):
            ehr.record_observation("p1", float(index), "map_mmhg", value)
        assert ehr.baseline("p1", "map_mmhg") == pytest.approx(90.0)

    def test_baseline_default(self):
        ehr = EHRStore()
        ehr.admit("p1")
        assert ehr.baseline("p1", "unknown", default=42.0) == 42.0

    def test_medication_history(self):
        ehr = EHRStore()
        ehr.admit("p1")
        ehr.record_medication("p1", 10.0, "morphine", 2.0)
        assert "morphine" in ehr.get("p1").medications
        assert ehr.get("p1").history_in_category("medication")

    def test_history_sorted_by_time(self):
        ehr = EHRStore()
        record = ehr.admit("p1")
        record.add_history(HistoryEntry(5.0, "observation", "late"))
        record.add_history(HistoryEntry(1.0, "observation", "early"))
        assert [entry.description for entry in record.history] == ["early", "late"]


class TestEHRReadingIntake:
    def test_record_reading_stores_observation_with_reading_time(self):
        ehr = EHRStore()
        ehr.admit("p1")
        ehr.record_reading("p1", "spo2", Reading(96.0, True, 120.0))
        (entry,) = ehr.get("p1").history_in_category("observation")
        assert entry.time == 120.0
        assert entry.description == "spo2"
        assert entry.data == {"value": 96.0}

    def test_invalid_readings_do_not_poison_baselines(self):
        ehr = EHRStore()
        ehr.admit("p1")
        for index in range(5):
            ehr.record_reading("p1", "map_mmhg", Reading(90.0 + index, True, float(index)))
        ehr.record_reading("p1", "map_mmhg", Reading(0.0, False, 6.0))  # artefact
        assert ehr.baseline("p1", "map_mmhg") == 92.0


class TestEHRAccessPolicy:
    def test_nurse_can_read_history(self):
        policy = AccessPolicy()
        decision = policy.check(AccessRequest("nurse-1", Role.NURSE, "p1", "history"))
        assert decision.allowed

    def test_researcher_cannot_read_history(self):
        policy = AccessPolicy()
        decision = policy.check(AccessRequest("res-1", Role.RESEARCHER, "p1", "history"))
        assert not decision.allowed

    def test_device_supervisor_reads_baselines_only(self):
        policy = AccessPolicy()
        assert policy.check(AccessRequest("app", Role.DEVICE_SUPERVISOR, "p1", "baselines")).allowed
        assert not policy.check(AccessRequest("app", Role.DEVICE_SUPERVISOR, "p1", "demographics")).allowed

    def test_write_permissions_separate_from_read(self):
        policy = AccessPolicy()
        assert not policy.check(
            AccessRequest("admin", Role.ADMINISTRATOR, "p1", "demographics", write=True)
        ).allowed

    def test_grant_and_revoke(self):
        policy = AccessPolicy()
        policy.grant(Role.RESEARCHER, "history")
        assert policy.check(AccessRequest("r", Role.RESEARCHER, "p1", "history")).allowed
        policy.revoke(Role.RESEARCHER, "history")
        assert not policy.check(AccessRequest("r", Role.RESEARCHER, "p1", "history")).allowed

    def test_consent_withdrawal_overrides_role(self):
        policy = AccessPolicy()
        policy.withdraw_consent("p1", "nurse-1")
        assert not policy.check(AccessRequest("nurse-1", Role.NURSE, "p1", "history")).allowed
        assert policy.check(AccessRequest("nurse-2", Role.NURSE, "p1", "history")).allowed

    def test_audit_log_records_everything(self):
        policy = AccessPolicy()
        policy.check(AccessRequest("nurse-1", Role.NURSE, "p1", "history"))
        policy.check(AccessRequest("res-1", Role.RESEARCHER, "p1", "history"))
        assert len(policy.audit_log) == 2
        assert len(policy.denials()) == 1
        assert len(policy.accesses_for_patient("p1")) == 2
