"""Unit tests for the ``repro.obs`` observability package.

Covers the metric types and registry, deterministic span tracing, the
sampling profiler, NDJSON export ordering, the shard-merge semantics, and
the structured logging facade.  Integration with the simulation layers
(golden-digest invariance, CLI, campaign export) lives in
``test_obs_integration.py``.
"""

import io
import json

import pytest

from repro.obs import metrics as obsm
from repro.obs.export import (
    dump_lines,
    merge_lines,
    merge_snapshots,
    read_snapshot,
    snapshot_lines,
    write_snapshot,
)
from repro.obs.logging import StructLogger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import SamplingProfiler, owner_of
from repro.obs.spans import SpanTracer, derive_id
from repro.sim.kernel import Simulator


@pytest.fixture
def obs_on():
    """Enable observability for the test, restoring prior state after."""
    was_enabled = obsm.enabled()
    obsm.enable()
    obsm.registry().reset()
    from repro.obs.spans import tracer
    tracer().reset()
    yield obsm.registry()
    obsm.registry().reset()
    tracer().reset()
    if not was_enabled:
        obsm.disable()


class TestMetricTypes:
    def test_counter_inc_and_direct_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        counter.value += 2
        assert counter.value == 8
        assert counter.line() == {"type": "counter", "name": "c", "value": 8}

    def test_gauge_aggs(self):
        gauge = Gauge("g", agg="max")
        gauge.set(3.0)
        gauge.set_max(1.0)
        assert gauge.value == 3.0
        gauge.set_max(7.0)
        assert gauge.value == 7.0
        with pytest.raises(ValueError):
            Gauge("bad", agg="median")

    def test_histogram_bucket_edges_are_upper_inclusive(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 100.0):
            hist.observe(value)
        # le-semantics: 1.0 lands in the first bucket, 5.0 in the third,
        # 100.0 overflows.
        assert hist.counts == [2, 2, 2, 1]
        assert hist.count == 7
        assert hist.sum == pytest.approx(114.9)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        reg.gauge("g", agg="max")
        with pytest.raises(ValueError):
            reg.gauge("g", agg="last")
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 3.0))

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.counter("aa")
        reg.gauge("mm")
        assert [line["name"] for line in reg.snapshot()] == ["aa", "mm", "zz"]

    def test_reset_preserves_cached_references(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.value = 10
        reg.reset()
        assert counter.value == 0
        counter.value += 1  # a cached bundle reference keeps working
        assert reg.counter("c").value == 1


class TestEnableSwitch:
    def test_bundles_are_none_when_disabled(self):
        was_enabled = obsm.enabled()
        obsm.disable()
        try:
            assert obsm.kernel_instruments() is None
            assert obsm.channel_instruments() is None
            assert obsm.bus_instruments() is None
            assert obsm.sampler_instruments() is None
            assert obsm.campaign_instruments() is None
            assert Simulator()._metrics is None
        finally:
            if was_enabled:
                obsm.enable()

    def test_bundles_share_registry_metrics_when_enabled(self, obs_on):
        a = obsm.channel_instruments()
        b = obsm.channel_instruments()
        assert a is not None and b is not None
        assert a.delivered is b.delivered  # process-level aggregate

    def test_kernel_flush_run_accounts_deltas(self, obs_on):
        inst = obsm.kernel_instruments()
        inst.heap_peak = 17
        inst.flush_run(100, 50.0, 0.5)
        assert obs_on.counter("kernel.events_fired").value == 100
        assert obs_on.counter("kernel.sim_seconds_total").value == 50.0
        assert obs_on.gauge("kernel.heap_peak", agg="max").value == 17
        assert obs_on.gauge("kernel.events_per_s", agg="max").value == 200.0


class TestSpans:
    def test_ids_are_deterministic(self):
        assert derive_id("run-1") == derive_id("run-1")
        assert derive_id("run-1") != derive_id("run-2")
        tracer_a, tracer_b = SpanTracer(), SpanTracer()
        for tracer in (tracer_a, tracer_b):
            with tracer.trace("seed").span("outer"):
                pass
        ids = lambda t: [(s["trace_id"], s["span_id"], s["parent_id"])
                         for s in t.lines()]
        assert ids(tracer_a) == ids(tracer_b)  # wall timestamps may differ

    def test_nesting_sets_parent_ids(self):
        tracer = SpanTracer()
        context = tracer.trace("run")
        with context.span("outer") as outer:
            with context.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == ""
        assert outer.trace_id == inner.trace_id == derive_id("run")

    def test_custom_clock_and_attrs(self):
        tracer = SpanTracer()
        ticks = iter([1.0, 4.5])
        with tracer.trace("s", clock=lambda: next(ticks),
                          clock_name="sim").span("phase", mode="x") as span:
            pass
        assert span.start == 1.0 and span.end == 4.5
        assert span.duration == 3.5
        line = span.line()
        assert line["clock"] == "sim"
        assert line["attrs"] == {"mode": "x"}

    def test_cap_counts_dropped_spans(self):
        tracer = SpanTracer(cap=2)
        context = tracer.trace("s")
        for i in range(5):
            with context.span(f"p{i}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3


class TestProfiler:
    def test_owner_attribution(self):
        assert owner_of("") == "<anonymous>"
        assert owner_of("channel:uplink:dev-a:deliver") == "channel:uplink:dev-a"
        assert owner_of("bus:forward:vitals") == "bus"
        assert owner_of("pump-1:_tick") == "pump-1"
        assert owner_of("plain") == "plain"

    def test_samples_every_nth_event(self):
        profiler = SamplingProfiler(every=3)
        sim = Simulator()
        sim.attach_profiler(profiler)
        for i in range(9):
            sim.schedule(0.1 * (i + 1), lambda: None, name="worker:tick")
        sim.run()
        assert profiler.events_seen == 9
        report = profiler.report()
        assert report["worker"]["samples"] == 3.0
        assert report["worker"]["est_total_wall_s"] == pytest.approx(
            report["worker"]["sampled_wall_s"] * 3)
        lines = profiler.lines()
        assert lines[0]["type"] == "profile"
        assert lines[0]["owner"] == "worker"

    def test_every_one_samples_everything(self):
        profiler = SamplingProfiler(every=1)
        sim = Simulator()
        sim.attach_profiler(profiler)
        sim.schedule(1.0, lambda: None, name="a:x")
        sim.schedule(2.0, lambda: None, name="b:y")
        sim.run()
        report = profiler.report()
        assert report["a"]["samples"] == 1.0
        assert report["b"]["samples"] == 1.0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(every=0)


class TestExport:
    def test_snapshot_line_ordering(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        reg.counter("z_counter").inc()
        reg.gauge("a_gauge").set(1.0)
        tracer = SpanTracer()
        with tracer.trace("s").span("phase"):
            pass
        profiler = SamplingProfiler(every=1)
        sim = Simulator()
        sim.attach_profiler(profiler)
        sim.schedule(1.0, lambda: None, name="o:t")
        sim.run()
        lines = snapshot_lines(registry=reg, tracer=tracer,
                               profilers=[profiler])
        kinds = [line["type"] for line in lines]
        assert kinds == ["meta", "counter", "gauge", "histogram", "span",
                        "profile"]

    def test_dump_is_sorted_compact_ndjson(self):
        text = dump_lines([{"b": 1, "a": 2, "type": "meta"}])
        assert text == '{"a":2,"b":1,"type":"meta"}\n'

    def test_write_and_read_roundtrip(self, tmp_path, obs_on):
        obs_on.counter("c").inc(3)
        path = write_snapshot(tmp_path / "snap.ndjson")
        lines = read_snapshot(path)
        assert lines[0]["type"] == "meta"
        assert {"type": "counter", "name": "c", "value": 3} in lines


class TestMerge:
    def shard(self, counter=0, gauge=0.0, counts=(0, 0)):
        return [
            {"type": "meta", "schema": 1},
            {"type": "counter", "name": "c", "value": counter},
            {"type": "gauge", "name": "g", "value": gauge, "agg": "max"},
            {"type": "histogram", "name": "h", "bounds": [1.0],
             "counts": list(counts), "sum": float(sum(counts)),
             "count": sum(counts)},
        ]

    def test_counters_sum_gauges_fold_histograms_add(self):
        merged = merge_lines([self.shard(2, 5.0, (1, 0)),
                              self.shard(3, 1.0, (0, 2))])
        by_name = {line.get("name"): line for line in merged}
        assert by_name["c"]["value"] == 5
        assert by_name["g"]["value"] == 5.0  # agg=max
        assert by_name["h"]["counts"] == [1, 2]
        assert by_name["h"]["count"] == 3
        assert merged[0]["merged_shards"] == 2

    def test_last_gauge_takes_final_shard(self):
        shards = [[{"type": "gauge", "name": "g", "value": v, "agg": "last"}]
                  for v in (1.0, 2.0, 3.0)]
        merged = merge_lines(shards)
        assert merged[-1]["value"] == 3.0

    def test_conflicting_gauge_aggs_rejected(self):
        with pytest.raises(ValueError):
            merge_lines([[{"type": "gauge", "name": "g", "value": 1, "agg": "max"}],
                         [{"type": "gauge", "name": "g", "value": 1, "agg": "sum"}]])

    def test_mismatched_histogram_bounds_rejected(self):
        hist = {"type": "histogram", "name": "h", "counts": [0, 0],
                "sum": 0.0, "count": 0}
        with pytest.raises(ValueError):
            merge_lines([[dict(hist, bounds=[1.0])],
                         [dict(hist, bounds=[2.0])]])

    def test_spans_concatenate_and_profiles_sum(self):
        span = {"type": "span", "trace_id": "t", "span_id": "s1",
                "parent_id": "", "name": "p", "clock": "sim",
                "start": 0.0, "end": 1.0}
        profile = {"type": "profile", "owner": "o", "samples": 2,
                   "sampled_wall_s": 0.5, "every": 64}
        merged = merge_lines([[span, profile],
                              [dict(span, span_id="s2"), dict(profile)]])
        spans = [line for line in merged if line["type"] == "span"]
        profiles = [line for line in merged if line["type"] == "profile"]
        assert {s["span_id"] for s in spans} == {"s1", "s2"}
        assert profiles[0]["samples"] == 4
        assert profiles[0]["sampled_wall_s"] == pytest.approx(1.0)

    def test_merge_snapshot_files_in_sorted_order(self, tmp_path):
        for name, value in (("b.ndjson", 2.0), ("a.ndjson", 1.0)):
            (tmp_path / name).write_text(dump_lines(
                [{"type": "gauge", "name": "g", "value": value,
                  "agg": "last"}]), encoding="utf-8")
        out = tmp_path / "merged.ndjson"
        merged = merge_snapshots([tmp_path / "b.ndjson", tmp_path / "a.ndjson"],
                                 out=out)
        # Sorted path order: a.ndjson merges first, b.ndjson last -> 2.0.
        assert merged[-1]["value"] == 2.0
        assert read_snapshot(out) == merged


class TestStructLogger:
    def capture(self, mode):
        out, err = io.StringIO(), io.StringIO()
        return StructLogger("t", mode=mode, out=out, err=err), out, err

    def test_human_mode_prints_message_verbatim(self):
        log, out, err = self.capture("human")
        log.info("hello world", event="greeting", n=1)
        assert out.getvalue() == "hello world\n"
        assert err.getvalue() == ""

    def test_json_mode_emits_structured_ndjson(self):
        log, out, _ = self.capture("json")
        log.info("msg", event="thing", n=2)
        record = json.loads(out.getvalue())
        assert record == {"level": "info", "logger": "t", "event": "thing",
                          "msg": "msg", "n": 2}

    def test_quiet_suppresses_info_but_not_errors(self):
        log, out, err = self.capture("quiet")
        log.info("nope")
        log.error("bad")
        assert out.getvalue() == ""
        assert err.getvalue() == "bad\n"

    def test_errors_go_to_stderr_in_every_mode(self):
        for mode in ("human", "json", "quiet"):
            log, out, err = self.capture(mode)
            log.error("boom", event="err")
            assert out.getvalue() == ""
            assert err.getvalue() != ""

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            StructLogger(mode="verbose")
