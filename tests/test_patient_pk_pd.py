"""Tests for the pharmacokinetic and pharmacodynamic models."""

import numpy as np
import pytest

from repro.patient.pharmacodynamics import PDParameters, RespiratoryDepressionPD, hill
from repro.patient.pharmacokinetics import PKParameters, TwoCompartmentPK


class TestPKParameters:
    def test_defaults_validate(self):
        PKParameters().validate()

    @pytest.mark.parametrize("field", [
        "central_volume_l", "peripheral_volume_l", "clearance_l_per_min",
        "distribution_clearance_l_per_min",
    ])
    def test_non_positive_rejected(self, field):
        with pytest.raises(ValueError):
            PKParameters(**{field: 0.0}).validate()

    def test_rate_constants_positive(self):
        p = PKParameters()
        assert p.k10 > 0 and p.k12 > 0 and p.k21 > 0

    def test_weight_scaling(self):
        base = PKParameters()
        heavy = base.scaled_for_weight(140.0)
        light = base.scaled_for_weight(50.0)
        assert heavy.central_volume_l > base.central_volume_l > light.central_volume_l
        assert heavy.clearance_l_per_min > light.clearance_l_per_min

    def test_clearance_multiplier(self):
        base = PKParameters()
        slow = base.scaled_for_weight(70.0, clearance_multiplier=0.5)
        assert slow.clearance_l_per_min == pytest.approx(base.clearance_l_per_min * 0.5, rel=0.05)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            PKParameters().scaled_for_weight(0.0)


class TestTwoCompartmentPK:
    def test_initially_empty(self):
        pk = TwoCompartmentPK(PKParameters())
        assert pk.total_amount_mg == 0.0
        assert pk.plasma_concentration_mg_per_l == 0.0

    def test_bolus_raises_concentration(self):
        pk = TwoCompartmentPK(PKParameters())
        pk.add_bolus(10.0)
        assert pk.plasma_concentration_mg_per_l == pytest.approx(
            10.0 / PKParameters().central_volume_l
        )

    def test_negative_bolus_rejected(self):
        with pytest.raises(ValueError):
            TwoCompartmentPK(PKParameters()).add_bolus(-1.0)

    def test_elimination_decreases_total_drug(self):
        pk = TwoCompartmentPK(PKParameters())
        pk.add_bolus(10.0)
        before = pk.total_amount_mg
        pk.advance(30.0)
        assert pk.total_amount_mg < before

    def test_drug_never_negative(self):
        pk = TwoCompartmentPK(PKParameters())
        pk.add_bolus(1.0)
        pk.advance(10000.0)
        assert pk.central_amount_mg >= 0.0
        assert pk.peripheral_amount_mg >= 0.0

    def test_infusion_approaches_steady_state(self):
        pk = TwoCompartmentPK(PKParameters())
        rate = 0.1  # mg/min
        for _ in range(200):
            pk.advance(10.0, infusion_rate_mg_per_min=rate)
        expected = pk.steady_state_concentration(rate)
        assert pk.plasma_concentration_mg_per_l == pytest.approx(expected, rel=0.05)

    def test_steady_state_formula(self):
        pk = TwoCompartmentPK(PKParameters(clearance_l_per_min=2.0))
        assert pk.steady_state_concentration(1.0) == pytest.approx(0.5)

    def test_zero_dt_is_noop(self):
        pk = TwoCompartmentPK(PKParameters())
        pk.add_bolus(5.0)
        before = pk.plasma_concentration_mg_per_l
        assert pk.advance(0.0) == before

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            TwoCompartmentPK(PKParameters()).advance(-1.0)

    def test_negative_infusion_rejected(self):
        with pytest.raises(ValueError):
            TwoCompartmentPK(PKParameters()).advance(1.0, infusion_rate_mg_per_min=-1.0)

    def test_matrix_exponential_matches_euler(self):
        exact = TwoCompartmentPK(PKParameters())
        euler = TwoCompartmentPK(PKParameters())
        exact.add_bolus(5.0)
        euler.add_bolus(5.0)
        for _ in range(20):
            exact.advance(2.0, 0.05)
            euler.advance_euler(2.0, 0.05, substeps=2000)
        assert exact.plasma_concentration_mg_per_l == pytest.approx(
            euler.plasma_concentration_mg_per_l, rel=1e-3
        )

    def test_large_step_stable(self):
        pk = TwoCompartmentPK(PKParameters())
        pk.add_bolus(10.0)
        pk.advance(100000.0)
        assert pk.total_amount_mg == pytest.approx(0.0, abs=1e-6)

    def test_mass_conservation_without_elimination_shortstep(self):
        # Over a very short step elimination is negligible; total mass stays close.
        pk = TwoCompartmentPK(PKParameters())
        pk.add_bolus(10.0)
        pk.advance(0.001)
        assert pk.total_amount_mg == pytest.approx(10.0, rel=1e-3)

    def test_half_lives_ordered(self):
        distribution, elimination = TwoCompartmentPK(PKParameters()).half_life_min()
        assert 0 < distribution < elimination

    def test_reset(self):
        pk = TwoCompartmentPK(PKParameters())
        pk.add_bolus(5.0)
        pk.reset()
        assert pk.total_amount_mg == 0.0


class TestHillFunction:
    def test_zero_concentration(self):
        assert hill(0.0, 1.0, 2.0) == 0.0

    def test_at_ec50_is_half(self):
        assert hill(1.0, 1.0, 3.0) == pytest.approx(0.5)

    def test_monotone_increasing(self):
        values = [hill(c, 1.0, 2.0) for c in np.linspace(0.1, 10, 50)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_bounded_by_one(self):
        assert hill(100.0, 1.0, 2.0) < 1.0
        assert hill(1e9, 1.0, 2.0) <= 1.0


class TestPDParameters:
    def test_defaults_validate(self):
        PDParameters().validate()

    def test_invalid_ec50_rejected(self):
        with pytest.raises(ValueError):
            PDParameters(ec50_respiratory_mg_per_l=0.0).validate()

    def test_invalid_ke0_rejected(self):
        with pytest.raises(ValueError):
            PDParameters(ke0_per_min=0.0).validate()

    def test_sensitivity_lowers_ec50(self):
        base = PDParameters()
        sensitive = base.with_sensitivity(2.0)
        assert sensitive.ec50_respiratory_mg_per_l == pytest.approx(base.ec50_respiratory_mg_per_l / 2.0)
        assert sensitive.ec50_analgesia_mg_per_l == pytest.approx(base.ec50_analgesia_mg_per_l / 2.0)

    def test_invalid_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            PDParameters().with_sensitivity(0.0)


class TestRespiratoryDepressionPD:
    def test_initial_state(self):
        pd = RespiratoryDepressionPD(PDParameters())
        assert pd.effect_site_concentration_mg_per_l == 0.0
        assert pd.respiratory_depression() == 0.0
        assert pd.respiratory_drive() == 1.0
        assert pd.analgesia() == 0.0

    def test_effect_site_lags_plasma(self):
        pd = RespiratoryDepressionPD(PDParameters())
        effect = pd.advance(1.0, plasma_concentration_mg_per_l=0.1)
        assert 0.0 < effect < 0.1

    def test_effect_site_converges_to_constant_plasma(self):
        pd = RespiratoryDepressionPD(PDParameters())
        for _ in range(500):
            pd.advance(1.0, 0.05)
        assert pd.effect_site_concentration_mg_per_l == pytest.approx(0.05, rel=1e-3)

    def test_depression_increases_with_concentration(self):
        pd = RespiratoryDepressionPD(PDParameters())
        low = pd.respiratory_depression(0.01)
        high = pd.respiratory_depression(0.2)
        assert high > low

    def test_depression_bounded_by_max(self):
        parameters = PDParameters()
        pd = RespiratoryDepressionPD(parameters)
        assert pd.respiratory_depression(1000.0) <= parameters.max_respiratory_depression

    def test_drive_is_complement_of_depression(self):
        pd = RespiratoryDepressionPD(PDParameters())
        assert pd.respiratory_drive(0.1) == pytest.approx(1.0 - pd.respiratory_depression(0.1))

    def test_analgesia_saturates_before_respiratory_depression(self):
        # At a mid-range analgesic concentration, pain relief should exceed
        # respiratory depression: the therapeutic window that makes PCA usable.
        pd = RespiratoryDepressionPD(PDParameters())
        concentration = PDParameters().ec50_analgesia_mg_per_l * 1.5
        assert pd.analgesia(concentration) > pd.respiratory_depression(concentration)

    def test_inverse_concentration_for_depression(self):
        pd = RespiratoryDepressionPD(PDParameters())
        target = 0.4
        concentration = pd.concentration_for_depression(target)
        assert pd.respiratory_depression(concentration) == pytest.approx(target, rel=1e-6)

    def test_inverse_rejects_out_of_range(self):
        pd = RespiratoryDepressionPD(PDParameters())
        with pytest.raises(ValueError):
            pd.concentration_for_depression(0.999)

    def test_inverse_zero(self):
        assert RespiratoryDepressionPD(PDParameters()).concentration_for_depression(0.0) == 0.0

    def test_negative_inputs_rejected(self):
        pd = RespiratoryDepressionPD(PDParameters())
        with pytest.raises(ValueError):
            pd.advance(-1.0, 0.1)
        with pytest.raises(ValueError):
            pd.advance(1.0, -0.1)

    def test_reset(self):
        pd = RespiratoryDepressionPD(PDParameters())
        pd.advance(10.0, 0.1)
        pd.reset()
        assert pd.effect_site_concentration_mg_per_l == 0.0
