"""Tests for the end-to-end clinical scenarios."""

import pytest

from repro.scenarios.bed_map import BedMapConfig, BedMapScenario
from repro.scenarios.home import (
    DeteriorationEpisode,
    HomeMonitoringConfig,
    HomeMonitoringScenario,
)
from repro.scenarios.pca_scenario import pca_fault_campaign
from repro.scenarios.proton import ProtonSchedulingConfig, ProtonSchedulingScenario
from repro.scenarios.xray_vent import XRayVentilatorConfig, XRayVentilatorScenario


class TestPCAFaultCampaign:
    def test_default_campaign_contents(self):
        faults = pca_fault_campaign()
        kinds = [fault.kind for fault in faults]
        assert "misprogramming" in kinds and "pca_by_proxy" in kinds

    def test_optional_outage_included(self):
        faults = pca_fault_campaign(include_communication_outage=True)
        assert any(fault.kind == "channel_outage" for fault in faults)


class TestXRayVentilatorScenario:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            XRayVentilatorConfig(mode="psychic").validate()

    def test_state_broadcast_no_apnea_and_sharp_images(self):
        config = XRayVentilatorConfig(mode="state_broadcast", image_requests=5,
                                      request_period_s=60.0, seed=1)
        result = XRayVentilatorScenario(config).run()
        assert result.mode == "state_broadcast"
        assert result.apnea_episodes == 0
        assert result.total_apnea_time_s == 0.0
        assert result.sharp_images >= 4
        assert result.blurred_images == 0

    def test_pause_restart_creates_short_apneas(self):
        config = XRayVentilatorConfig(mode="pause_restart", image_requests=5,
                                      request_period_s=60.0, seed=1)
        result = XRayVentilatorScenario(config).run()
        assert result.apnea_episodes >= 4
        assert result.unsafe_apnea_events == 0
        assert result.sharp_images >= 4

    def test_pause_restart_with_lost_resume_is_hazardous(self):
        config = XRayVentilatorConfig(mode="pause_restart", image_requests=5,
                                      request_period_s=120.0, command_loss_probability=0.6, seed=3)
        result = XRayVentilatorScenario(config).run()
        assert result.unsafe_apnea_events >= 1

    def test_watchdog_bounds_apnea(self):
        config = XRayVentilatorConfig(mode="pause_restart", image_requests=5,
                                      request_period_s=120.0, command_loss_probability=0.6,
                                      apnea_watchdog_enabled=True, apnea_watchdog_timeout_s=30.0, seed=3)
        result = XRayVentilatorScenario(config).run()
        assert result.max_apnea_time_s < 60.0

    def test_manual_mode_can_forget_restart(self):
        config = XRayVentilatorConfig(mode="manual", image_requests=10, request_period_s=60.0,
                                      forget_restart_probability=1.0, seed=0)
        result = XRayVentilatorScenario(config).run()
        assert result.ventilator_left_paused
        assert result.unsafe_apnea_events >= 1

    def test_image_success_rate_property(self):
        config = XRayVentilatorConfig(mode="state_broadcast", image_requests=4,
                                      request_period_s=60.0, seed=2)
        result = XRayVentilatorScenario(config).run()
        assert 0.0 <= result.image_success_rate <= 1.0


class TestBedMapScenario:
    def test_context_awareness_suppresses_bed_artifacts(self):
        baseline = BedMapScenario(BedMapConfig(use_context_awareness=False, seed=4)).run()
        aware = BedMapScenario(BedMapConfig(use_context_awareness=True, seed=4)).run()
        assert baseline.false_alarm_count > aware.false_alarm_count
        assert aware.suppressed_alarms > 0

    def test_true_hypotension_still_detected_with_context_awareness(self):
        result = BedMapScenario(BedMapConfig(use_context_awareness=True, seed=4)).run()
        assert result.missed_episodes == 0

    def test_no_bed_moves_no_false_alarms(self):
        result = BedMapScenario(BedMapConfig(bed_moves=0, true_hypotension_episodes=1,
                                             use_context_awareness=False, seed=5)).run()
        assert result.false_alarm_count == 0
        assert result.confusion.true_positives >= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BedMapConfig(duration_s=0.0).validate()


class TestProtonSchedulingScenario:
    def test_throughput_without_motion(self):
        config = ProtonSchedulingConfig(rooms=2, fractions_per_room=2, motion_events_per_room=0,
                                        duration_s=3600.0)
        result = ProtonSchedulingScenario(config).run()
        assert result.fractions_requested == 4
        assert result.fractions_completed == 4
        assert result.completion_rate == 1.0
        assert result.beam_switches >= 1

    def test_motion_events_abort_fractions(self):
        # Long fractions keep the beam busy for most of the run, so patient
        # motion reliably interrupts at least one delivery.
        config = ProtonSchedulingConfig(rooms=3, fractions_per_room=3, fraction_spots=600,
                                        spot_duration_s=0.5, motion_events_per_room=4,
                                        duration_s=3600.0, seed=1)
        result = ProtonSchedulingScenario(config).run()
        assert result.motion_events == 12
        assert result.fractions_aborted >= 1

    def test_emergency_shutdown_stops_facility(self):
        config = ProtonSchedulingConfig(rooms=2, fractions_per_room=3, motion_events_per_room=0,
                                        emergency_shutdown_time_s=50.0, duration_s=3600.0)
        result = ProtonSchedulingScenario(config).run()
        assert result.emergency_shutdown_triggered
        assert result.fractions_completed < result.fractions_requested

    def test_more_rooms_increase_waiting(self):
        few = ProtonSchedulingScenario(ProtonSchedulingConfig(
            rooms=1, fractions_per_room=3, motion_events_per_room=0, duration_s=3600.0)).run()
        many = ProtonSchedulingScenario(ProtonSchedulingConfig(
            rooms=4, fractions_per_room=3, motion_events_per_room=0, duration_s=3600.0)).run()
        assert many.mean_waiting_time_s > few.mean_waiting_time_s

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProtonSchedulingConfig(rooms=0).validate()


class TestHomeMonitoringScenario:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            HomeMonitoringConfig(mode="carrier_pigeon").validate()

    def test_real_time_detects_episodes_quickly(self):
        config = HomeMonitoringConfig(mode="real_time", seed=1)
        result = HomeMonitoringScenario(config).run()
        assert result.detected_episodes == result.episodes
        assert result.mean_detection_latency_s < 3600.0

    def test_store_and_forward_detects_late(self):
        real_time = HomeMonitoringScenario(HomeMonitoringConfig(mode="real_time", seed=1)).run()
        batch = HomeMonitoringScenario(HomeMonitoringConfig(mode="store_and_forward", seed=1,
                                                            upload_period_s=4 * 3600.0)).run()
        assert batch.mean_detection_latency_s > real_time.mean_detection_latency_s

    def test_longer_upload_period_worsens_latency(self):
        short = HomeMonitoringScenario(HomeMonitoringConfig(
            mode="store_and_forward", upload_period_s=2 * 3600.0, seed=2)).run()
        long = HomeMonitoringScenario(HomeMonitoringConfig(
            mode="store_and_forward", upload_period_s=8 * 3600.0, seed=2)).run()
        assert long.mean_detection_latency_s >= short.mean_detection_latency_s

    def test_custom_episodes(self):
        config = HomeMonitoringConfig(
            mode="real_time",
            episodes=[DeteriorationEpisode(onset_s=3600.0, spo2_drop=12.0)],
            seed=3,
        )
        result = HomeMonitoringScenario(config).run()
        assert result.episodes == 1
        assert result.detected_episodes == 1

    def test_detected_within_window(self):
        result = HomeMonitoringScenario(HomeMonitoringConfig(mode="real_time", seed=1)).run()
        assert result.detected_within(3600.0) == result.detected_episodes
