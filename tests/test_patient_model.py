"""Tests for the composite PatientModel (the Figure 1 'Patient Model' box)."""

import pytest

from repro.patient.model import PatientModel
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


@pytest.fixture
def registered_patient(trace):
    simulator = Simulator()
    patient = PatientModel(trace=trace, update_period_s=5.0)
    simulator.register(patient)
    return simulator, patient


class TestStandalone:
    def test_initial_vitals_are_baseline(self):
        patient = PatientModel()
        assert patient.vital_signs.spo2_percent == pytest.approx(98.0)
        assert patient.plasma_concentration_mg_per_l == 0.0

    def test_bolus_increases_concentration_and_total(self):
        patient = PatientModel()
        patient.infuse_bolus(2.0)
        assert patient.plasma_concentration_mg_per_l > 0
        assert patient.total_drug_delivered_mg == pytest.approx(2.0)

    def test_basal_infusion_accumulates_drug(self):
        patient = PatientModel()
        patient.set_infusion_rate(0.1)
        patient.advance_by(60.0)
        assert patient.total_drug_delivered_mg == pytest.approx(6.0)
        assert patient.plasma_concentration_mg_per_l > 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PatientModel().set_infusion_rate(-1.0)

    def test_large_overdose_causes_respiratory_failure(self):
        patient = PatientModel()
        patient.infuse_bolus(25.0)
        for _ in range(40):
            patient.advance_by(1.0)
        assert patient.in_respiratory_failure

    def test_small_dose_does_not_cause_failure(self):
        patient = PatientModel()
        patient.infuse_bolus(1.0)
        for _ in range(120):
            patient.advance_by(1.0)
        assert not patient.in_respiratory_failure

    def test_wants_bolus_when_in_pain(self):
        patient = PatientModel()
        assert patient.wants_bolus

    def test_sedated_patient_stops_pressing(self):
        patient = PatientModel()
        patient.infuse_bolus(30.0)
        for _ in range(30):
            patient.advance_by(1.0)
        assert not patient.wants_bolus

    def test_invalid_update_period_rejected(self):
        with pytest.raises(ValueError):
            PatientModel(update_period_s=0.0)


class TestInSimulation:
    def test_periodic_advance_records_traces(self, registered_patient, trace):
        simulator, patient = registered_patient
        simulator.run(until=60.0)
        prefix = patient.parameters.patient_id
        assert len(trace.samples(f"{prefix}:spo2")) >= 10
        assert len(trace.samples(f"{prefix}:plasma_mg_per_l")) >= 10

    def test_respiratory_failure_event_recorded(self, trace):
        simulator = Simulator()
        patient = PatientModel(trace=trace, update_period_s=5.0)
        simulator.register(patient)
        patient.infuse_bolus(30.0)
        simulator.run(until=30 * 60.0)
        assert trace.count_events(f"{patient.parameters.patient_id}:respiratory_failure") >= 1

    def test_no_failure_event_without_drug(self, registered_patient, trace):
        simulator, patient = registered_patient
        simulator.run(until=30 * 60.0)
        assert trace.count_events(f"{patient.parameters.patient_id}:respiratory_failure") == 0

    def test_simulated_time_advances_physiology(self, registered_patient):
        simulator, patient = registered_patient
        patient.set_infusion_rate(0.2)
        simulator.run(until=30 * 60.0)
        assert patient.effect_site_concentration_mg_per_l > 0.0
        assert patient.vital_signs.respiratory_rate_bpm < 14.0
