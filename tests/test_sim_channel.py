"""Tests for network channels (latency, loss, outages, stats)."""

import numpy as np
import pytest

from repro.sim.channel import Channel, ChannelConfig
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_channel(sim, **kwargs):
    rng = kwargs.pop("rng", None)
    return Channel(sim, "test-channel", ChannelConfig(**kwargs), rng=rng)


class TestConfigValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(latency_s=-0.1).validate()

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(jitter_s=-0.1).validate()

    def test_loss_probability_bounds(self):
        with pytest.raises(ValueError):
            ChannelConfig(loss_probability=1.5).validate()

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(bandwidth_msgs_per_s=0).validate()

    def test_valid_config_passes(self):
        ChannelConfig(latency_s=0.1, jitter_s=0.01, loss_probability=0.05).validate()


class TestDelivery:
    def test_message_delivered_after_latency(self, sim):
        channel = make_channel(sim, latency_s=0.5)
        received = []
        channel.subscribe(lambda message: received.append(message))
        channel.send("a", "topic", {"x": 1})
        sim.run()
        assert len(received) == 1
        assert received[0].delivered_at == pytest.approx(0.5)
        assert received[0].latency == pytest.approx(0.5)

    def test_payload_preserved(self, sim):
        channel = make_channel(sim)
        received = []
        channel.subscribe(lambda message: received.append(message.payload))
        channel.send("a", "topic", {"value": 42})
        sim.run()
        assert received == [{"value": 42}]

    def test_topic_filtered_subscription(self, sim):
        channel = make_channel(sim)
        spo2, all_messages = [], []
        channel.subscribe(lambda m: spo2.append(m), topic="spo2")
        channel.subscribe(lambda m: all_messages.append(m))
        channel.send("ox", "spo2", 97)
        channel.send("ox", "heart_rate", 70)
        sim.run()
        assert len(spo2) == 1
        assert len(all_messages) == 2

    def test_unsubscribe(self, sim):
        channel = make_channel(sim)
        received = []
        handler = lambda m: received.append(m)  # noqa: E731
        channel.subscribe(handler)
        channel.unsubscribe(handler)
        channel.send("a", "t", 1)
        sim.run()
        assert received == []

    def test_sequence_numbers_increase(self, sim):
        channel = make_channel(sim)
        m1 = channel.send("a", "t", 1)
        m2 = channel.send("a", "t", 2)
        assert m2.sequence > m1.sequence

    def test_delivery_statistics(self, sim):
        channel = make_channel(sim, latency_s=0.1)
        channel.subscribe(lambda m: None)
        for _ in range(5):
            channel.send("a", "t", 0)
        sim.run()
        assert channel.sent == 5
        assert channel.delivered == 5
        assert channel.dropped == 0
        assert channel.mean_latency == pytest.approx(0.1)
        assert channel.stats()["loss_rate"] == 0.0


class TestLossAndOutages:
    def test_full_loss_drops_everything(self, sim):
        channel = make_channel(sim, loss_probability=1.0, rng=np.random.default_rng(0))
        received = []
        channel.subscribe(lambda m: received.append(m))
        for _ in range(10):
            channel.send("a", "t", 0)
        sim.run()
        assert received == []
        assert channel.dropped == 10
        assert channel.loss_rate == 1.0

    def test_partial_loss_rate_roughly_matches(self, sim):
        channel = make_channel(sim, loss_probability=0.3, rng=np.random.default_rng(1))
        for _ in range(500):
            channel.send("a", "t", 0)
        sim.run()
        assert 0.2 < channel.loss_rate < 0.4

    def test_lossy_config_without_rng_rejected(self, sim):
        # Silently disabling configured loss would invalidate the experiment;
        # the channel refuses to be built in that state.
        with pytest.raises(ValueError, match="rng"):
            make_channel(sim, loss_probability=0.9)

    def test_outage_drops_messages_in_window(self, sim):
        channel = make_channel(sim)
        received = []
        channel.subscribe(lambda m: received.append(m))
        channel.add_outage(1.0, 2.0)
        sim.schedule(0.5, lambda: channel.send("a", "t", "before"))
        sim.schedule(1.5, lambda: channel.send("a", "t", "during"))
        sim.schedule(2.5, lambda: channel.send("a", "t", "after"))
        sim.run()
        assert [m.payload for m in received] == ["before", "after"]

    def test_invalid_outage_rejected(self, sim):
        channel = make_channel(sim)
        with pytest.raises(ValueError):
            channel.add_outage(2.0, 1.0)

    def test_in_outage_query(self, sim):
        channel = make_channel(sim)
        channel.add_outage(1.0, 2.0)
        assert channel.in_outage(1.5)
        assert not channel.in_outage(2.5)


class TestJitterAndBandwidth:
    def test_jitter_varies_latency(self, sim):
        channel = Channel(sim, "jitter-channel",
                          ChannelConfig(latency_s=0.5, jitter_s=0.2),
                          rng=np.random.default_rng(2), retain_messages=True)
        channel.subscribe(lambda m: None)
        for _ in range(50):
            channel.send("a", "t", 0)
        sim.run()
        latencies = channel.latencies
        assert min(latencies) >= 0.3 - 1e-9
        assert max(latencies) <= 0.7 + 1e-9
        assert max(latencies) - min(latencies) > 0.05

    def test_bandwidth_serialises_messages(self, sim):
        channel = make_channel(sim, latency_s=0.0, bandwidth_msgs_per_s=1.0)
        received = []
        channel.subscribe(lambda m: received.append(m.delivered_at))
        for _ in range(3):
            channel.send("a", "t", 0)
        sim.run()
        assert received == pytest.approx([1.0, 2.0, 3.0])
