"""LAYER03 (consumer -> core) failing fixture."""

from fix.sim import det_good  # LAYER03: consumer imports the live engine

__all__ = ["det_good"]
