"""Fixture certification layer: read-only consumer."""
