"""Fixture 'simulation core' layer: in det-scope, in layer-core."""
