"""One failing fixture per DET rule, all inside the det-scope package."""

import random
import time
from heapq import heappush


def det01_set_expression():
    out = []
    for item in {"a", "b", "c"}:  # DET01: set expression
        out.append(item)
    return out


def det01_set_typed_name():
    seen = set()
    seen.add("x")
    return [item for item in seen]  # DET01: set-typed local


def det02_module_level_random():
    return random.random()  # DET02: shared unseeded generator


def det02_unseeded_constructor():
    return random.Random()  # DET02: constructed without a seed


def det03_wall_clock():
    return time.time()  # DET03: wall clock outside the allowlist


def det04_identity_sort(items):
    return sorted(items, key=id)  # DET04: id() orders the result


def det04_identity_heap(heap, obj):
    heappush(heap, (hash(obj), obj))  # DET04: hash() in a heap entry
