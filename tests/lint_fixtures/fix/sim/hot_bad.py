"""One failing fixture per HOT rule inside marked-hot functions."""


class UnslottedPayload:
    def __init__(self, value):
        self.value = value


class Worker:
    def dispatch(self, value):  # repro-lint: hot
        return UnslottedPayload(value)  # HOT01: no __slots__

    def publish(self, value, time):  # repro-lint: hot
        return {"value": value, "time": time}  # HOT02: per-call dict

    def forward(self, items):  # repro-lint: hot
        return sorted(items, key=lambda item: item.seq)  # HOT03: lambda
