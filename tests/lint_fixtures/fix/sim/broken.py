"""LINT02 fixture: unparseable on purpose."""

def broken(:
    return
