"""A reasonless suppression: LINT01, and the target rule still fails."""

import time


def sloppy_stamp():
    return time.time()  # repro-lint: disable=DET03
