"""LAYER01 + LAYER03 (core -> consumer) failing fixture."""

from fix.campaign import runner  # LAYER01: sim imports its driver
from fix.certification import consumer_bad  # LAYER03: core imports a consumer

__all__ = ["runner", "consumer_bad"]
