"""Passing counterparts for every HOT rule."""


class SlottedPayload:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def _seq_key(item):
    return item.seq


class Worker:
    def __init__(self):
        self._key = _seq_key  # hoisted once, reused per call

    def dispatch(self, value):  # repro-lint: hot
        return SlottedPayload(value)  # slotted: no per-instance dict

    def accumulate(self, items):  # repro-lint: hot
        acc = {}  # empty accumulator dict is allowed
        for item in items:
            acc[item.key] = item
        return acc

    def forward(self, items):  # repro-lint: hot
        return sorted(items, key=self._key)
