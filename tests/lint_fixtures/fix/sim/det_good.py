"""Passing counterparts for every DET rule."""

import random


def det01_sorted_iteration():
    names = {"a", "b", "c"}
    return [item for item in sorted(names)]  # sorted first: deterministic


def det02_seeded_stream():
    rng = random.Random(42)
    return rng.random()


def det03_simulated_time(simulator):
    return simulator.now  # simulated clock, not the wall clock


def det04_stable_sort(items):
    return sorted(items, key=lambda pair: pair[0])
