"""A reasoned suppression: recorded as suppressed, never failing."""

import time


def watchdog_stamp():
    return time.time()  # repro-lint: disable=DET03 -- real watchdog timestamp
