"""LAYER02 failing fixture: the observability leaf imports the project."""

from fix.campaign import runner  # LAYER02: obs must stay an import leaf

__all__ = ["runner"]
