"""Passing LAYER02/DET03 fixture: stdlib only, allowlisted wall clock."""

import json
import time


def snapshot():
    return json.dumps({"captured_at": time.time()})  # allowlisted module
