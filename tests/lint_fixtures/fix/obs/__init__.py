"""Fixture observability layer: import leaf, wall-clock allowlisted."""
