"""Fixture package for repro.lint tests (parsed, never imported)."""
