"""A clean campaign module; exists only to be (wrongly) imported."""


def run() -> int:
    return 0
