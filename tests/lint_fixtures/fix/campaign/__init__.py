"""Fixture 'campaign driver' layer: forbidden import target for fix.sim."""
