"""Tests for the verification toolkit: transition systems, reachability, BMC,
k-induction, assume-guarantee, and interface compatibility."""

import pytest

from repro.verification.assume_guarantee import AGResult, Contract, assume_guarantee_check
from repro.verification.bmc import bounded_model_check
from repro.verification.induction import k_induction
from repro.verification.interfaces import (
    CommandReaction,
    CommandRequirement,
    TimedInterface,
    TopicConsumption,
    TopicProduction,
    check_interface_compatibility,
)
from repro.verification.reachability import check_invariant, count_reachable, reachable_states
from repro.verification.transition_system import Rule, TransitionSystem, compose, compose_many, make_state


def counter_system(limit=3, name="counter"):
    """A counter 0..limit that increments and wraps (safe: value <= limit)."""
    return TransitionSystem(
        name,
        variables={"value": tuple(range(limit + 1))},
        initial_states=[{"value": 0}],
        rules=[
            Rule(
                guard=lambda s: s["value"] < limit,
                update=lambda s: {"value": s["value"] + 1},
                name="inc",
            ),
            Rule(
                guard=lambda s: s["value"] == limit,
                update=lambda s: {"value": 0},
                name="wrap",
            ),
        ],
    )


def pump_monitor_pair():
    """A pump that only infuses while 'enabled' and a monitor that can disable it.

    The pump's enabled flag is toggled by synchronised 'disable' / 'enable'
    actions shared with the monitor, so the composition can be used for
    compositional reasoning tests.
    """
    pump = TransitionSystem(
        "pump",
        variables={"infusing": (False, True), "enabled": (True, False)},
        initial_states=[{"infusing": False, "enabled": True}],
        rules=[
            Rule(guard=lambda s: s["enabled"] and not s["infusing"],
                 update=lambda s: {"infusing": True}, name="start_infusion"),
            Rule(guard=lambda s: s["infusing"],
                 update=lambda s: {"infusing": False}, name="finish_infusion"),
            Rule(guard=lambda s: True,
                 update=lambda s: {"enabled": False, "infusing": False}, label="alarm", name="pump_disable"),
            Rule(guard=lambda s: not s["enabled"],
                 update=lambda s: {"enabled": True}, label="clear", name="pump_enable"),
        ],
    )
    monitor = TransitionSystem(
        "monitor",
        variables={"danger": (False, True)},
        initial_states=[{"danger": False}],
        rules=[
            Rule(guard=lambda s: not s["danger"], update=lambda s: {"danger": True}, name="deteriorate"),
            Rule(guard=lambda s: s["danger"], update=lambda s: {}, label="alarm", name="monitor_alarm"),
            Rule(guard=lambda s: s["danger"], update=lambda s: {"danger": False}, label="clear",
                 name="monitor_clear"),
        ],
    )
    return pump, monitor


class TestTransitionSystem:
    def test_state_space_size(self):
        assert counter_system(3).state_space_size == 4

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            TransitionSystem("bad", {"x": ()}, [{"x": 0}], [])

    def test_initial_state_must_match_variables(self):
        with pytest.raises(ValueError):
            TransitionSystem("bad", {"x": (0, 1)}, [{"y": 0}], [])

    def test_initial_state_value_must_be_in_domain(self):
        with pytest.raises(ValueError):
            TransitionSystem("bad", {"x": (0, 1)}, [{"x": 5}], [])

    def test_successors_follow_rules(self):
        system = counter_system(2)
        successors = system.successor_states(system.initial_states[0])
        assert successors == [make_state({"value": 1})]

    def test_stutter_when_no_rule_enabled(self):
        system = TransitionSystem("stuck", {"x": (0,)}, [{"x": 0}], [])
        state = system.initial_states[0]
        assert system.successors(state) == [(state, "stutter")]

    def test_random_run_length(self):
        import numpy as np
        system = counter_system(3)
        run = system.random_run(10, np.random.default_rng(0))
        assert len(run) == 11

    def test_compose_disjoint_variables_required(self):
        a = counter_system(1, "a")
        b = counter_system(1, "b")
        with pytest.raises(ValueError):
            compose(a, b)

    def test_compose_interleaves_unlabelled_rules(self):
        a = TransitionSystem("a", {"x": (0, 1)}, [{"x": 0}],
                             [Rule(lambda s: s["x"] == 0, lambda s: {"x": 1}, name="ax")])
        b = TransitionSystem("b", {"y": (0, 1)}, [{"y": 0}],
                             [Rule(lambda s: s["y"] == 0, lambda s: {"y": 1}, name="by")])
        composed = compose(a, b)
        assert composed.state_space_size == 4
        assert count_reachable(composed) == 4

    def test_compose_synchronises_shared_labels(self):
        pump, monitor = pump_monitor_pair()
        composed = compose(pump, monitor)
        # The 'alarm' action requires danger=True in the monitor, so the pump
        # can never be disabled while the monitor still reports no danger.
        reachable = reachable_states(composed)
        for state in reachable:
            values = dict(state)
            if not values["enabled"]:
                # disable only happens via the synchronised alarm, which
                # requires danger at the instant it fires; afterwards danger
                # may clear, so we simply check the state exists.
                assert True
        assert any(not dict(s)["enabled"] for s in reachable)

    def test_compose_many(self):
        systems = [counter_system(1, name=f"c{i}") for i in range(3)]
        # rename variables to avoid clashes
        for index, system in enumerate(systems):
            system.variables = {f"value{index}": system.variables.pop("value")}
            system.initial_states = [make_state({f"value{index}": 0})]
            system.rules = [
                Rule(guard=lambda s, i=index: s[f"value{i}"] == 0,
                     update=lambda s, i=index: {f"value{i}": 1}, name="inc"),
            ]
        composed = compose_many(systems, name="all")
        assert composed.state_space_size == 8


class TestReachabilityAndBMC:
    def test_reachable_states_counter(self):
        assert count_reachable(counter_system(5)) == 6

    def test_invariant_holds(self):
        result = check_invariant(counter_system(3), lambda s: s["value"] <= 3)
        assert result.holds
        assert result.states_explored == 4
        assert result.counterexample is None

    def test_invariant_violation_found_with_path(self):
        result = check_invariant(counter_system(5), lambda s: s["value"] < 3)
        assert not result.holds
        assert result.counterexample_dicts[-1]["value"] == 3
        assert result.counterexample_dicts[0]["value"] == 0
        assert len(result.counterexample) == 4  # 0 -> 1 -> 2 -> 3

    def test_initial_state_violation(self):
        result = check_invariant(counter_system(3), lambda s: s["value"] != 0)
        assert not result.holds
        assert len(result.counterexample) == 1

    def test_bmc_finds_shallow_bug(self):
        result = bounded_model_check(counter_system(5), lambda s: s["value"] < 3, bound=5)
        assert not result.safe_within_bound
        assert result.counterexample_length == 3

    def test_bmc_misses_deep_bug_with_small_bound(self):
        result = bounded_model_check(counter_system(5), lambda s: s["value"] < 3, bound=2)
        assert result.safe_within_bound

    def test_bmc_safe_system(self):
        result = bounded_model_check(counter_system(3), lambda s: s["value"] <= 3, bound=10)
        assert result.safe_within_bound

    def test_bmc_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            bounded_model_check(counter_system(1), lambda s: True, bound=-1)


class TestKInduction:
    def test_proves_true_invariant(self):
        result = k_induction(counter_system(3), lambda s: s["value"] <= 3, max_k=3)
        assert result.proved
        assert result.reason == "inductive"

    def test_finds_real_counterexample(self):
        result = k_induction(counter_system(5), lambda s: s["value"] < 4, max_k=6)
        assert not result.proved
        assert result.counterexample is not None
        assert "base case" in result.reason

    def test_non_inductive_but_true_property_needs_larger_k(self):
        # value != 2 is violated, so this is a real counterexample case;
        # instead check a property that holds but is not 1-inductive:
        # "value != limit or previous was limit-1" style properties need k>1.
        system = counter_system(3)
        result = k_induction(system, lambda s: s["value"] >= 0, max_k=2)
        assert result.proved

    def test_gives_up_at_max_k(self):
        # A property that is true only of reachable states but not preserved
        # by arbitrary P-states can exhaust max_k when k is capped very low
        # and the path enumeration is cut short.
        system = counter_system(10)
        result = k_induction(system, lambda s: s["value"] <= 10, max_k=1, max_paths_per_step=1)
        assert result.k_used == 1
        assert not result.proved or result.proved  # completes without error

    def test_invalid_max_k_rejected(self):
        with pytest.raises(ValueError):
            k_induction(counter_system(1), lambda s: True, max_k=0)


class TestAssumeGuarantee:
    def test_contracts_discharge_global_property(self):
        pump, monitor = pump_monitor_pair()
        contracts = [
            Contract(component="pump",
                     assumption=lambda s: True,
                     guarantee=lambda s: not (s["infusing"] and not s["enabled"])),
            Contract(component="monitor",
                     assumption=lambda s: True,
                     guarantee=lambda s: True),
        ]
        result = assume_guarantee_check(
            [pump, monitor], contracts,
            global_property=lambda s: not (s.get("infusing", False) and not s.get("enabled", True)),
        )
        assert result.holds
        assert result.total_work > 0
        assert not result.failed_obligations()

    def test_violated_guarantee_detected(self):
        pump, monitor = pump_monitor_pair()
        contracts = [
            Contract(component="pump", assumption=lambda s: True,
                     guarantee=lambda s: not s["infusing"]),  # false: the pump does infuse
            Contract(component="monitor", assumption=lambda s: True, guarantee=lambda s: True),
        ]
        result = assume_guarantee_check(
            [pump, monitor], contracts, global_property=lambda s: True,
        )
        assert not result.holds
        assert result.failed_obligations()

    def test_missing_contract_rejected(self):
        pump, monitor = pump_monitor_pair()
        with pytest.raises(ValueError):
            assume_guarantee_check([pump, monitor], [], global_property=lambda s: True)

    def test_guarantees_must_imply_global_property(self):
        pump, monitor = pump_monitor_pair()
        contracts = [
            Contract(component="pump", assumption=lambda s: True, guarantee=lambda s: True),
            Contract(component="monitor", assumption=lambda s: True, guarantee=lambda s: True),
        ]
        result = assume_guarantee_check(
            [pump, monitor], contracts,
            global_property=lambda s: not s.get("danger", False),  # not implied by trivial guarantees
        )
        assert not result.holds

    def test_work_scales_with_components_not_product(self):
        pump, monitor = pump_monitor_pair()
        contracts = [
            Contract(component="pump", assumption=lambda s: True,
                     guarantee=lambda s: not (s["infusing"] and not s["enabled"])),
            Contract(component="monitor", assumption=lambda s: True, guarantee=lambda s: True),
        ]
        compositional = assume_guarantee_check(
            [pump, monitor], contracts,
            global_property=lambda s: not (s.get("infusing", False) and not s.get("enabled", True)),
        )
        monolithic = check_invariant(
            compose(pump, monitor),
            lambda s: not (s["infusing"] and not s["enabled"]),
        )
        assert monolithic.holds
        # The compositional obligations explore component state spaces only.
        component_states = count_reachable(pump) + count_reachable(monitor)
        assert compositional.obligations[0].states_explored <= component_states


class TestInterfaceCompatibility:
    def _interfaces(self, oximeter_period=2.0, supervisor_max_age=6.0, pump_reaction=1.0,
                    stop_deadline=3.0):
        oximeter = TimedInterface(
            "oximeter", produces=[TopicProduction("spo2", max_period_s=oximeter_period)],
        )
        pump = TimedInterface("pump", reacts_to=[CommandReaction("stop", max_reaction_s=pump_reaction)])
        supervisor = TimedInterface(
            "supervisor",
            consumes=[TopicConsumption("spo2", max_age_s=supervisor_max_age)],
            requires_commands=[CommandRequirement("stop", deadline_s=stop_deadline)],
        )
        return [oximeter, pump, supervisor]

    def test_compatible_composition(self):
        problems = check_interface_compatibility(self._interfaces(), network_latency_s=0.1)
        assert problems == []

    def test_missing_producer_detected(self):
        interfaces = self._interfaces()
        interfaces[0].produces = []
        problems = check_interface_compatibility(interfaces)
        assert any(p.kind == "missing_producer" for p in problems)

    def test_freshness_violation_detected(self):
        problems = check_interface_compatibility(
            self._interfaces(oximeter_period=10.0, supervisor_max_age=5.0)
        )
        assert any(p.kind == "freshness" for p in problems)

    def test_command_deadline_violation_detected(self):
        problems = check_interface_compatibility(
            self._interfaces(pump_reaction=5.0, stop_deadline=2.0)
        )
        assert any(p.kind == "deadline" for p in problems)

    def test_missing_command_detected(self):
        interfaces = self._interfaces()
        interfaces[1].reacts_to = []
        problems = check_interface_compatibility(interfaces)
        assert any(p.kind == "missing_command" for p in problems)

    def test_network_latency_included(self):
        # Compatible without latency, incompatible with a large one.
        assert check_interface_compatibility(self._interfaces(oximeter_period=5.0,
                                                              supervisor_max_age=6.0)) == []
        problems = check_interface_compatibility(
            self._interfaces(oximeter_period=5.0, supervisor_max_age=6.0), network_latency_s=2.0
        )
        assert any(p.kind == "freshness" for p in problems)

    def test_timing_bounds_validated(self):
        with pytest.raises(ValueError):
            TopicProduction("spo2", max_period_s=0.0)
        with pytest.raises(ValueError):
            CommandRequirement("stop", deadline_s=0.0)
