"""Tests for the population-scale campaign subsystem."""

import hashlib
import json

import pytest

from golden_workload import GOLDEN_PATH, SCENARIO_SPECS

from repro.campaign import (
    CampaignEngine,
    CampaignError,
    CampaignSpec,
    ResultStore,
    cohort_patient,
    get_scenario,
    list_scenarios,
    load_results,
    run_campaign,
    safety_outcomes,
    safety_table,
    campaign_table,
)
from repro.campaign.cli import main as campaign_main
from repro.sim.random import derive_seed

#: Short but non-trivial simulated duration for PCA-backed campaign tests.
SHORT_PCA = {"duration_s": 600.0}


def tiny_spec(**overrides):
    base = dict(
        name="test-campaign",
        scenario="pca",
        parameters={"mode": ["open_loop", "closed_loop"], **SHORT_PCA},
        cohort_size=2,
        base_seed=123,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestRegistry:
    def test_all_five_scenarios_registered(self):
        names = {scenario.name for scenario in list_scenarios()}
        assert {"pca", "xray_vent", "bed_map", "proton", "home"} <= names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(CampaignError):
            get_scenario("does-not-exist")

    def test_unknown_parameter_rejected(self):
        spec = tiny_spec(parameters={"not_a_parameter": 1})
        with pytest.raises(CampaignError):
            spec.expand()

    def test_cohort_requires_support(self):
        spec = CampaignSpec(name="x", scenario="proton", cohort_size=3)
        with pytest.raises(CampaignError):
            spec.expand()

    def test_engine_injected_params_not_user_settable(self):
        # Regression: supplying patient_index directly used to pass validation
        # and then crash the runner with a raw KeyError on cohort_seed.
        spec = tiny_spec(parameters={"patient_index": 0, **SHORT_PCA})
        with pytest.raises(CampaignError, match="injected by the engine"):
            spec.validate()

    def test_scenario_declares_result_schema(self):
        scenario = get_scenario("pca")
        assert "harmed" in scenario.result_fields
        assert scenario.supports_cohort


class TestExpansion:
    def test_grid_size_and_order(self):
        spec = tiny_spec(repeats=3)
        manifests = spec.expand()
        assert len(manifests) == 2 * 2 * 3 == spec.grid_size()
        assert [m.run_index for m in manifests] == list(range(12))
        assert len({m.run_id for m in manifests}) == 12

    def test_seeds_differ_per_run_but_are_stable(self):
        first = tiny_spec().expand()
        second = tiny_spec().expand()
        assert [m.seed for m in first] == [m.seed for m in second]
        assert len({m.seed for m in first}) == len(first)

    def test_seed_derivation_independent_of_base_seed_only_through_hash(self):
        a = tiny_spec(base_seed=1).expand()
        b = tiny_spec(base_seed=2).expand()
        assert [m.run_id for m in a] == [m.run_id for m in b]
        assert all(x.seed != y.seed for x, y in zip(a, b))

    def test_defaults_resolved_into_params(self):
        manifest = tiny_spec().expand()[0]
        assert manifest.params["policy"] == "fused"  # scenario default
        assert manifest.params["duration_s"] == 600.0  # fixed override

    def test_manifest_seed_matches_derive_seed(self):
        spec = tiny_spec()
        manifest = spec.expand()[0]
        assert manifest.seed == derive_seed(spec.base_seed, f"run:{manifest.run_id}")

    def test_spec_roundtrip_via_json(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.as_dict()))
        assert CampaignSpec.from_file(path) == spec

    def test_spec_rejects_unknown_fields(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict({"name": "x", "scenario": "pca", "bogus": 1})

    def test_grid_size_matches_expansion_length(self):
        # grid_size is computed arithmetically for cheap banners; this pins
        # it to the expansion it must stay in sync with.
        for spec in (
            tiny_spec(),
            tiny_spec(repeats=3),
            tiny_spec(cohort_size=0),
            tiny_spec(parameters={"mode": ["closed_loop"],
                                  "policy": ["fused", "threshold"], **SHORT_PCA}),
        ):
            assert spec.grid_size() == len(spec.expand())

    def test_spec_file_errors_are_campaign_errors(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot read"):
            CampaignSpec.from_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CampaignError, match="not valid JSON"):
            CampaignSpec.from_file(bad)

    def test_empty_sweep_list_rejected(self):
        # Regression: an empty sweep used to "succeed" with zero runs.
        spec = tiny_spec(parameters={"mode": [], **SHORT_PCA})
        with pytest.raises(CampaignError, match="no values"):
            spec.validate()

    def test_duplicate_sweep_values_rejected(self):
        # Regression: duplicate values expanded to runs with identical run
        # ids and therefore identical seeds — correlated "samples".
        spec = tiny_spec(parameters={"mode": ["open_loop", "open_loop"], **SHORT_PCA})
        with pytest.raises(CampaignError, match="duplicate run id"):
            spec.expand()


class TestCohort:
    def test_cohort_patient_is_deterministic(self):
        a = cohort_patient(99, 5)
        b = cohort_patient(99, 5)
        assert a == b
        assert a.patient_id == "patient-005"

    def test_cohort_patients_differ_by_index(self):
        assert cohort_patient(99, 0) != cohort_patient(99, 1)

    def test_same_patient_across_configurations(self):
        # Paired populations: patient i is identical under every mode.
        manifests = tiny_spec().expand()
        by_mode = {}
        for manifest in manifests:
            key = manifest.params["patient_index"]
            by_mode.setdefault(key, []).append(manifest)
        for group in by_mode.values():
            patients = {
                cohort_patient(m.params["cohort_seed"], m.params["patient_index"])
                for m in group
            }
            assert len(patients) == 1


class TestEngine:
    def test_in_memory_campaign_runs(self):
        report = run_campaign(tiny_spec())
        assert report.total == 4
        assert report.executed == 4
        modes = {record["params"]["mode"] for record in report.records}
        assert modes == {"open_loop", "closed_loop"}
        for record in report.records:
            assert record["result"]["patient_id"].startswith("patient-")

    def test_serial_and_parallel_records_identical(self):
        serial = run_campaign(tiny_spec(), workers=1)
        parallel = run_campaign(tiny_spec(), workers=2)
        assert serial.records == parallel.records

    def test_serial_and_parallel_stores_byte_identical(self, tmp_path):
        run_campaign(tiny_spec(), workers=1, directory=tmp_path / "serial")
        run_campaign(tiny_spec(), workers=2, directory=tmp_path / "parallel")
        serial = (tmp_path / "serial" / "results.jsonl").read_bytes()
        parallel = (tmp_path / "parallel" / "results.jsonl").read_bytes()
        assert serial == parallel

    def test_resume_after_interruption(self, tmp_path):
        directory = tmp_path / "campaign"
        reference = run_campaign(tiny_spec(), workers=1, directory=directory)
        results = directory / "results.jsonl"
        full = results.read_bytes()

        # Interrupt: keep one intact record plus a torn partial line.
        lines = full.decode().splitlines()
        results.write_text(lines[0] + "\n" + lines[1][:30])

        resumed = run_campaign(
            tiny_spec(), workers=1, directory=directory, resume=True
        )
        assert resumed.skipped == 1
        assert resumed.executed == 3
        assert resumed.records == reference.records
        assert results.read_bytes() == full

    def test_fresh_run_into_dirty_directory_rejected(self, tmp_path):
        directory = tmp_path / "campaign"
        run_campaign(tiny_spec(), workers=1, directory=directory)
        with pytest.raises(CampaignError):
            run_campaign(tiny_spec(), workers=1, directory=directory)

    def test_fresh_run_rejected_even_when_only_a_torn_line_survives(self, tmp_path):
        # Regression: a crash during the very first record write leaves a
        # results file with no intact records; a fresh (non-resume) run must
        # still refuse rather than append onto the fragment and lose work.
        directory = tmp_path / "campaign"
        directory.mkdir()
        (directory / "results.jsonl").write_text('{"run_index": 0, "torn')
        with pytest.raises(CampaignError):
            run_campaign(tiny_spec(), workers=1, directory=directory)
        resumed = run_campaign(tiny_spec(), workers=1, directory=directory, resume=True)
        assert resumed.total == 4 and resumed.executed == 4

    def test_resume_with_different_spec_rejected(self, tmp_path):
        directory = tmp_path / "campaign"
        run_campaign(tiny_spec(), workers=1, directory=directory)
        other = tiny_spec(base_seed=999)
        with pytest.raises(CampaignError):
            run_campaign(other, workers=1, directory=directory, resume=True)

    def test_resume_with_changed_resolved_params_rejected(self, tmp_path):
        # Regression: a changed scenario registry *default* alters resolved
        # run params without touching the spec; resuming would silently mix
        # two parameterisations in one results file.
        import json as json_module

        directory = tmp_path / "campaign"
        run_campaign(tiny_spec(), workers=1, directory=directory)
        manifest_path = directory / "manifest.json"
        manifest = json_module.loads(manifest_path.read_text())
        manifest["runs"][0]["params"]["bolus_dose_mg"] = 99.0
        manifest_path.write_text(json_module.dumps(manifest, sort_keys=True,
                                                   separators=(",", ":")))
        with pytest.raises(CampaignError, match="resolved run parameters"):
            run_campaign(tiny_spec(), workers=1, directory=directory, resume=True)

    def test_progress_callback_sees_every_run(self):
        seen = []
        run_campaign(tiny_spec(), progress=lambda done, total, record: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(CampaignError):
            CampaignEngine(tiny_spec(), workers=0)

    def test_resume_without_directory_rejected(self):
        # Regression: resume used to be silently ignored without a store,
        # re-running everything and persisting nothing.
        with pytest.raises(CampaignError, match="no campaign directory"):
            run_campaign(tiny_spec(), resume=True)

    def test_bad_parameter_value_surfaces_as_campaign_error(self):
        # Regression: an invalid *value* (names are checked at expansion)
        # used to escape as a raw ValueError traceback.
        spec = tiny_spec(parameters={"mode": "sideways_loop", **SHORT_PCA})
        with pytest.raises(CampaignError, match="sideways_loop"):
            run_campaign(spec)

    def test_unexpected_runner_error_keeps_its_traceback(self):
        # Config rejections stay one-line, but a programming error inside a
        # runner must keep its crash site in the message (pickling across
        # workers drops __cause__).
        from repro.campaign.engine import execute_manifest
        from repro.campaign.registry import ScenarioSpec, register_scenario
        from repro.campaign.spec import RunManifest

        def crashing_runner(params, seed):
            return {} + []  # TypeError

        register_scenario(ScenarioSpec(name="_crash_test", runner=crashing_runner))
        try:
            manifest = RunManifest(run_index=0, run_id="rep=0",
                                   scenario="_crash_test", params={}, seed=1)
            with pytest.raises(CampaignError) as excinfo:
                execute_manifest(manifest)
            assert "TypeError" in str(excinfo.value)
            assert "crashing_runner" in str(excinfo.value)  # traceback frame
        finally:
            from repro.campaign import registry
            registry._REGISTRY.pop("_crash_test", None)

    def test_cohort_shaping_fractions_require_a_cohort(self):
        # Regression: sweeping sensitive_fraction without a cohort silently
        # simulated the identical default patient under different seeds.
        spec = tiny_spec(
            parameters={"sensitive_fraction": [0.0, 0.9], **SHORT_PCA},
            cohort_size=0,
        )
        with pytest.raises(CampaignError, match="cohort_size"):
            run_campaign(spec)


class TestGoldenScenarioTraces:
    """All five scenarios must produce seed-identical result bytes.

    The digests in ``tests/data/golden_traces.json`` were captured on the
    seed (pre-rewrite) kernel/trace/engine; every hot-path change since must
    leave the finalized ``results.jsonl`` byte-for-byte unchanged.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())["campaigns"]

    @pytest.mark.parametrize("scenario_key", sorted(SCENARIO_SPECS))
    def test_campaign_results_match_seed_bytes(self, scenario_key, golden, tmp_path):
        spec = CampaignSpec(**SCENARIO_SPECS[scenario_key])
        run_campaign(spec, workers=1, directory=tmp_path)
        digest = hashlib.sha256((tmp_path / "results.jsonl").read_bytes()).hexdigest()
        assert digest == golden[scenario_key]

    def test_parallel_chunked_buffered_results_match_seed_bytes(self, golden, tmp_path):
        # The perf knobs (pool initializer, chunksize, buffered flushes) must
        # not leak into the results: same bytes as the seed's serial path.
        spec = CampaignSpec(**SCENARIO_SPECS["pca"])
        run_campaign(spec, workers=2, directory=tmp_path,
                     chunksize=2, flush_every=16)
        digest = hashlib.sha256((tmp_path / "results.jsonl").read_bytes()).hexdigest()
        assert digest == golden["pca"]


class TestStore:
    def test_load_results_round_trips(self, tmp_path):
        report = run_campaign(tiny_spec(), workers=1, directory=tmp_path)
        assert load_results(tmp_path) == report.records

    def test_non_finite_floats_stored_as_null(self, tmp_path):
        # Regression: NaN used to be written as a bare `NaN` token, which is
        # not JSON and breaks every non-Python consumer of results.jsonl.
        store = ResultStore(tmp_path)
        store.append({"run_index": 0,
                      "result": {"min_spo2": float("nan"), "t": float("inf")}})
        line = store.results_path.read_text().strip()
        assert "NaN" not in line and "Infinity" not in line
        assert store.records() == [{"run_index": 0,
                                    "result": {"min_spo2": None, "t": None}}]

    def test_repair_truncates_torn_tail(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append({"run_index": 0, "value": 1})
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"run_index": 1, "val')
        assert store.repair() == 1
        assert store.completed() == {0: {"run_index": 0, "value": 1}}

    def test_manifest_written_and_loaded(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, workers=1, directory=tmp_path)
        manifest = ResultStore(tmp_path).load_manifest()
        assert manifest["spec"] == spec.as_dict()
        assert len(manifest["runs"]) == 4


    def test_append_holds_one_persistent_handle(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append({"run_index": 0})
        handle = store._results._handle
        assert handle is not None
        store.append({"run_index": 1})
        assert store._results._handle is handle  # no reopen per record
        store.close()
        assert store._results._handle is None
        assert len(store.records()) == 2

    def test_flush_every_batches_fsyncs_but_records_flushes_on_read(self, tmp_path):
        store = ResultStore(tmp_path, flush_every=100)
        for index in range(5):
            store.append({"run_index": index})
        # records() must see buffered appends (it flushes before reading).
        assert len(store.records()) == 5
        store.close()
        assert len(load_results(tmp_path)) == 5

    def test_close_is_idempotent_and_append_reopens(self, tmp_path):
        store = ResultStore(tmp_path, flush_every=10)
        store.append({"run_index": 0})
        store.close()
        store.close()
        store.append({"run_index": 1})
        store.close()
        assert [r["run_index"] for r in store.records()] == [0, 1]

    def test_repair_with_open_buffered_handle(self, tmp_path):
        # repair() atomically replaces the file; a stale open handle would
        # keep appending to the orphaned inode and silently lose records.
        store = ResultStore(tmp_path, flush_every=10)
        store.append({"run_index": 0})
        store.flush()
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"run_index": 1, "torn')
        assert store.repair() == 1
        store.append({"run_index": 2})
        store.close()
        assert [r["run_index"] for r in store.records()] == [0, 2]

    def test_invalid_flush_every_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            ResultStore(tmp_path, flush_every=0)


class TestEngineKnobs:
    def test_invalid_chunksize_rejected(self):
        with pytest.raises(CampaignError):
            CampaignEngine(tiny_spec(), chunksize=0)

    def test_explicit_chunksize_and_flush_every_keep_records_identical(self, tmp_path):
        reference = run_campaign(tiny_spec())
        tuned = run_campaign(tiny_spec(), workers=2, directory=tmp_path,
                             chunksize=3, flush_every=4)
        assert tuned.records == reference.records

    def test_flush_every_survives_a_failing_run(self, tmp_path):
        # The engine's deterministic close must push buffered records to disk
        # even when a run raises mid-campaign, so resume skips finished work.
        spec = tiny_spec(parameters={"mode": ["open_loop", "sideways_loop"],
                                     **SHORT_PCA})
        with pytest.raises(CampaignError):
            run_campaign(spec, workers=1, directory=tmp_path, flush_every=50)
        assert len(load_results(tmp_path)) > 0

    def test_cli_chunksize_and_flush_every_flags(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec().as_dict()))
        out_dir = tmp_path / "out"
        assert campaign_main(["run", str(spec_path), "--workers", "2",
                              "--chunksize", "2", "--flush-every", "8",
                              "--out", str(out_dir), "--quiet"]) == 0
        assert len(load_results(out_dir)) == 4


class TestAggregation:
    def test_safety_outcomes_by_mode(self):
        report = run_campaign(tiny_spec())
        outcomes = safety_outcomes(report.records, group_by=("mode",))
        assert set(outcomes) == {("open_loop",), ("closed_loop",)}
        assert all(outcome.patients == 2 for outcome in outcomes.values())

    def test_safety_table_renders(self):
        report = run_campaign(tiny_spec())
        rendered = safety_table(report.records).render()
        assert "harm_rate" in rendered
        assert "closed_loop" in rendered

    def test_campaign_table_statistics(self):
        report = run_campaign(tiny_spec())
        table = campaign_table(
            report.records,
            group_by=("mode",),
            metrics=("min_spo2", "harmed"),
            statistic="min",
        )
        assert table.columns == ["mode", "runs", "min_min_spo2", "min_harmed"]
        assert len(table.rows) == 2

    def test_unknown_group_field_rejected(self):
        report = run_campaign(tiny_spec())
        with pytest.raises(CampaignError):
            campaign_table(report.records, group_by=("nope",), metrics=("harmed",))


class TestOtherScenarios:
    @pytest.mark.parametrize(
        "scenario,parameters",
        [
            ("xray_vent", {"mode": ["manual", "state_broadcast"], "image_requests": 3}),
            ("bed_map", {"use_context_awareness": [True, False],
                         "duration_s": 3600.0, "bed_moves": 2}),
            ("proton", {"rooms": [2], "fractions_per_room": 2, "duration_s": 1200.0}),
            ("home", {"mode": ["store_and_forward", "real_time"],
                      "duration_s": 7200.0, "sample_period_s": 120.0}),
        ],
    )
    def test_campaignable(self, scenario, parameters):
        spec = CampaignSpec(name=f"t-{scenario}", scenario=scenario,
                            parameters=parameters, base_seed=5)
        report = run_campaign(spec)
        assert report.total == spec.grid_size()
        schema = get_scenario(scenario).result_fields
        for record in report.records:
            assert all(key in record["result"] for key in schema)

    def test_scenario_runs_are_reproducible(self):
        spec = CampaignSpec(name="repro", scenario="xray_vent",
                            parameters={"mode": "manual", "image_requests": 3,
                                        "forget_restart_probability": 0.5},
                            repeats=2, base_seed=17)
        assert run_campaign(spec).records == run_campaign(spec).records


class TestCLI:
    def _write_spec(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec().as_dict()))
        return spec_path

    def test_list_command(self, capsys):
        assert campaign_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pca" in out and "result fields" in out

    def test_run_and_report(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        out_dir = tmp_path / "out"
        assert campaign_main(["run", str(spec_path), "--workers", "2",
                              "--out", str(out_dir), "--quiet"]) == 0
        assert (out_dir / "results.jsonl").exists()
        capsys.readouterr()
        assert campaign_main(["report", str(out_dir), "--group-by", "mode"]) == 0
        out = capsys.readouterr().out
        assert "open_loop" in out and "closed_loop" in out

    def test_report_empty_directory_fails(self, tmp_path):
        assert campaign_main(["report", str(tmp_path)]) == 1

    def test_run_unknown_scenario_is_campaign_error(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"name": "bad", "scenario": "nope"}))
        assert campaign_main(["run", str(spec_path), "--quiet"]) == 2
