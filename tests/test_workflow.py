"""Tests for the clinical workflow language, semantics, analysis, and compiler."""

import pytest

from repro.devices.base import DeviceDescriptor
from repro.middleware.bus import BusConfig, DeviceBus
from repro.middleware.registry import DeviceRegistry
from repro.middleware.supervisor_host import SupervisorHost
from repro.scenarios.pca_scenario import PCA_OUTCOME_ALPHABET, build_pca_scenario_spec
from repro.sim.kernel import Simulator
from repro.workflow.analysis import analyse_scenario, errors
from repro.workflow.compiler import compile_scenario, device_requirements
from repro.workflow.semantics import ScenarioInterpreter, StepStatus
from repro.workflow.spec import (
    CaregiverRole,
    ClinicalScenario,
    DataFlow,
    DecisionRule,
    DeviceRole,
    ProcedureStep,
)


@pytest.fixture
def pca_spec():
    return build_pca_scenario_spec()


class TestScenarioSpec:
    def test_pca_spec_contains_all_elements(self, pca_spec):
        assert pca_spec.device_roles and pca_spec.data_flows
        assert pca_spec.caregiver_roles and pca_spec.procedure and pca_spec.decision_rules

    def test_accessors(self, pca_spec):
        assert pca_spec.device_role("analgesia_pump").device_type == "pca_pump"
        assert pca_spec.caregiver_role("nurse")
        assert pca_spec.step("program_pump").role == "nurse"
        with pytest.raises(KeyError):
            pca_spec.device_role("missing")
        with pytest.raises(KeyError):
            pca_spec.step("missing")

    def test_initial_steps(self, pca_spec):
        assert [step.step_id for step in pca_spec.initial_steps()] == ["verify_prescription"]

    def test_decision_rules_sorted_by_priority(self, pca_spec):
        priorities = [rule.priority for rule in pca_spec.sorted_decision_rules()]
        assert priorities == sorted(priorities, reverse=True)

    def test_topics_consumed(self, pca_spec):
        assert "spo2" in pca_spec.topics_consumed

    def test_data_flow_timing_validation(self):
        with pytest.raises(ValueError):
            DataFlow(source_role="a", topic="t", destination_role="b", max_latency_s=0.0)


class TestSemantics:
    def test_happy_path_completes(self, pca_spec):
        interpreter = ScenarioInterpreter(
            pca_spec,
            outcome_oracle=lambda step: {"monitor": "shift_end"}.get(step.step_id, "ok"),
        )
        result = interpreter.run()
        assert result.completed
        assert result.visited_step_ids[0] == "verify_prescription"
        assert result.visited_step_ids[-1] == "handover"
        assert result.total_duration_s > 0

    def test_unhandled_outcome_reported(self, pca_spec):
        interpreter = ScenarioInterpreter(
            pca_spec, outcome_oracle=lambda step: "earthquake"
        )
        result = interpreter.run()
        assert not result.completed
        assert "do not cover" in result.error
        assert result.steps[-1].status == StepStatus.UNHANDLED_OUTCOME

    def test_alarm_path_through_assessment(self, pca_spec):
        outcomes = {"monitor": "alarm", "assess_patient": "discontinue"}
        interpreter = ScenarioInterpreter(
            pca_spec, outcome_oracle=lambda step: outcomes.get(step.step_id, "ok")
        )
        result = interpreter.run()
        assert result.completed
        assert "assess_patient" in result.visited_step_ids

    def test_non_terminating_loop_detected(self, pca_spec):
        # Always looping between monitor/assess_patient without terminating.
        outcomes = {"monitor": "alarm", "assess_patient": "resume"}
        interpreter = ScenarioInterpreter(
            pca_spec, outcome_oracle=lambda step: outcomes.get(step.step_id, "ok"), max_steps=30
        )
        result = interpreter.run()
        assert not result.completed
        assert "did not terminate" in result.error

    def test_missing_initial_step_error(self):
        scenario = ClinicalScenario(name="empty", procedure=[
            ProcedureStep(step_id="a", role="nurse", action="do", next_steps={})
        ])
        result = ScenarioInterpreter(scenario).run()
        assert not result.completed
        assert "no initial" in result.error

    def test_explore_all_outcomes(self, pca_spec):
        interpreter = ScenarioInterpreter(pca_spec)
        results = interpreter.explore_all_outcomes({"verify_prescription": ["ok", "mismatch"]})
        assert len(results) == 2


class TestAnalysis:
    def test_clean_scenario_has_no_errors(self, pca_spec):
        findings = analyse_scenario(pca_spec, outcome_alphabet=PCA_OUTCOME_ALPHABET)
        assert errors(findings) == []

    def test_dangling_transition_detected(self, pca_spec):
        pca_spec.procedure.append(
            ProcedureStep(step_id="extra", role="nurse", action="x", next_steps={"ok": "nowhere"})
        )
        findings = analyse_scenario(pca_spec)
        assert any(f.category == "dangling_transition" for f in findings)

    def test_unreachable_step_detected(self, pca_spec):
        pca_spec.procedure.append(
            ProcedureStep(step_id="orphan", role="nurse", action="x", next_steps={})
        )
        findings = analyse_scenario(pca_spec)
        assert any(f.category == "unreachable_step" for f in findings)

    def test_missing_outcome_coverage_detected(self, pca_spec):
        alphabet = dict(PCA_OUTCOME_ALPHABET)
        alphabet["program_pump"] = ["ok", "programming_error", "power_failure"]
        findings = analyse_scenario(pca_spec, outcome_alphabet=alphabet)
        unhandled = [f for f in findings if f.category == "unhandled_outcome"]
        assert unhandled and unhandled[0].subject == "program_pump"

    def test_undeclared_caregiver_role_detected(self, pca_spec):
        pca_spec.procedure.append(
            ProcedureStep(step_id="x1", role="surgeon", action="operate", next_steps={})
        )
        findings = analyse_scenario(pca_spec)
        assert any(f.category == "undeclared_caregiver_role" for f in findings)

    def test_idle_caregiver_role_warned(self, pca_spec):
        pca_spec.caregiver_roles.append(CaregiverRole(role="anesthesiologist"))
        findings = analyse_scenario(pca_spec)
        assert any(f.category == "idle_caregiver_role" for f in findings)

    def test_flow_topic_not_published_detected(self, pca_spec):
        pca_spec.data_flows.append(
            DataFlow(source_role="analgesia_pump", topic="etco2", destination_role="supervisor")
        )
        findings = analyse_scenario(pca_spec)
        assert any(f.category == "flow_topic_not_published" for f in findings)

    def test_rule_command_not_required_detected(self, pca_spec):
        pca_spec.decision_rules.append(
            DecisionRule(name="bad", condition=lambda obs: False, target_role="spo2_source",
                         command="stop")
        )
        findings = analyse_scenario(pca_spec)
        assert any(f.category == "rule_command_not_required" for f in findings)

    def test_multiple_initial_steps_detected(self, pca_spec):
        pca_spec.procedure.append(
            ProcedureStep(step_id="second_start", role="nurse", action="x", next_steps={},
                          is_initial=True)
        )
        findings = analyse_scenario(pca_spec)
        assert any(f.category == "multiple_initial_steps" for f in findings)

    def test_deployability_against_registry(self, pca_spec):
        registry = DeviceRegistry()
        findings = analyse_scenario(pca_spec, registry=registry)
        assert any(f.category == "unsatisfiable_device_requirement" for f in findings)
        registry.register(DeviceDescriptor(
            device_id="pump-1", device_type="pca_pump", published_topics=("pump_status",),
            accepted_commands=("stop", "resume")))
        registry.register(DeviceDescriptor(
            device_id="ox-1", device_type="pulse_oximeter", published_topics=("spo2", "heart_rate")))
        registry.register(DeviceDescriptor(
            device_id="cap-1", device_type="capnograph", published_topics=("respiratory_rate",)))
        findings = analyse_scenario(pca_spec, registry=registry)
        assert not any(f.category == "unsatisfiable_device_requirement" for f in findings)


class TestCompiler:
    def test_device_requirements_generated(self, pca_spec):
        requirements = device_requirements(pca_spec)
        roles = {r.role for r in requirements}
        assert {"analgesia_pump", "spo2_source", "respiration_source"} <= roles

    def test_compile_requires_assignments_for_rule_targets(self, pca_spec):
        with pytest.raises(ValueError):
            compile_scenario(pca_spec, role_assignments={"spo2_source": "ox-1"})

    def test_compiled_app_fires_rule_and_commands_device(self, pca_spec):
        from repro.devices.pca_pump import PCAPump
        from repro.devices.pulse_oximeter import PulseOximeter
        from repro.devices.capnograph import Capnograph
        from repro.patient.model import PatientModel

        simulator = Simulator()
        patient = PatientModel()
        simulator.register(patient)
        bus = DeviceBus(simulator, BusConfig())
        pump = PCAPump("pump-1", patient, command_delay_s=0.5)
        oximeter = PulseOximeter("ox-1", patient)
        capnograph = Capnograph("cap-1", patient)
        for device in (pump, oximeter, capnograph):
            bus.attach_device(device)
            simulator.register(device)
        host = SupervisorHost(bus, algorithm_delay_s=0.05)
        app = compile_scenario(pca_spec, {
            "analgesia_pump": "pump-1", "spo2_source": "ox-1", "respiration_source": "cap-1",
        })
        host.attach_app(app)
        simulator.register(host)

        # Drive the patient into respiratory depression so the rules fire.
        patient.infuse_bolus(20.0)
        simulator.run(until=30 * 60.0)
        assert app.fired_rules, "a decision rule should have fired"
        assert pump.stopped_by_supervisor

    def test_compiled_app_does_not_fire_without_cause(self, pca_spec):
        from repro.devices.pca_pump import PCAPump
        from repro.devices.pulse_oximeter import PulseOximeter
        from repro.devices.capnograph import Capnograph
        from repro.patient.model import PatientModel

        simulator = Simulator()
        patient = PatientModel()
        simulator.register(patient)
        bus = DeviceBus(simulator, BusConfig())
        pump = PCAPump("pump-1", patient)
        oximeter = PulseOximeter("ox-1", patient)
        capnograph = Capnograph("cap-1", patient)
        for device in (pump, oximeter, capnograph):
            bus.attach_device(device)
            simulator.register(device)
        host = SupervisorHost(bus)
        app = compile_scenario(pca_spec, {
            "analgesia_pump": "pump-1", "spo2_source": "ox-1", "respiration_source": "cap-1",
        })
        host.attach_app(app)
        simulator.register(host)
        simulator.run(until=10 * 60.0)
        assert app.fired_rules == []
        assert not pump.stopped_by_supervisor

    def test_compiled_app_observations_tracked(self, pca_spec):
        app = compile_scenario(pca_spec, {
            "analgesia_pump": "p", "spo2_source": "o", "respiration_source": "c",
        })

        class _Message:
            sent_at = 0.0
            delivered_at = 0.1

        app.on_data("spo2", {"value": 97.0, "valid": True}, _Message())
        app.on_data("spo2", {"value": 50.0, "valid": False}, _Message())
        assert app.observations == {"spo2": 97.0}

    def test_compiled_app_payload_routing_through_reading_shim(self, pca_spec):
        # The latest-value tracker must accept every observation shape a
        # topic has ever carried (slotted Readings, legacy dicts, bare
        # numbers) and ignore command parameters and status payloads — the
        # old isinstance(payload, dict) check silently dropped Readings.
        from repro.readings import Reading

        app = compile_scenario(pca_spec, {
            "analgesia_pump": "p", "spo2_source": "o", "respiration_source": "c",
        })

        class _Message:
            sent_at = 0.0
            delivered_at = 0.1

        message = _Message()
        app.on_data("spo2", Reading(96.0, True, 1.0), message)
        assert app.observations == {"spo2": 96.0}
        app.on_data("spo2", Reading(40.0, False, 2.0), message)  # invalid: kept out
        assert app.observations == {"spo2": 96.0}
        app.on_data("respiratory_rate", 11, message)  # bare number is tracked
        assert app.observations["respiratory_rate"] == 11.0

        # Command/status topics carry non-reading payloads: never tracked.
        app.on_data("pump_status", {"device_id": "p", "stopped": False}, message)
        app.on_data("bed_height", {"height_cm": 30.0, "time": 5.0}, message)
        app.on_data("__command__:p:stop", {"reason": "test"}, message)
        app.on_data("probe_status", {"attached": True}, message)
        assert set(app.observations) == {"spo2", "respiratory_rate"}
