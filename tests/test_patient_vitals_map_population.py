"""Tests for vital-sign dynamics, MAP model, and patient populations."""

import numpy as np
import pytest

from repro.patient.map_model import ArterialPressureModel, ArterialPressureParameters, MMHG_PER_CM_HEIGHT
from repro.patient.population import DEFAULT_PATIENT, PatientParameters, PatientPopulation
from repro.patient.vitals import VitalSignsModel, VitalSignsParameters


class TestVitalSignsParameters:
    def test_defaults_validate(self):
        VitalSignsParameters().validate()

    def test_min_spo2_above_baseline_rejected(self):
        with pytest.raises(ValueError):
            VitalSignsParameters(min_spo2=99.0, baseline_spo2=98.0).validate()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            VitalSignsParameters(hypoventilation_threshold=0.0).validate()


class TestVitalSignsModel:
    def test_initial_state_matches_baseline(self):
        model = VitalSignsModel()
        state = model.state
        assert state.spo2_percent == VitalSignsParameters().baseline_spo2
        assert state.respiratory_rate_bpm == VitalSignsParameters().baseline_respiratory_rate_bpm
        assert state.pain_level == VitalSignsParameters().initial_pain_level

    def test_full_drive_keeps_spo2_at_baseline(self):
        model = VitalSignsModel()
        for _ in range(100):
            model.advance(1.0, respiratory_drive=1.0, analgesia=0.0)
        assert model.state.spo2_percent == pytest.approx(VitalSignsParameters().baseline_spo2, abs=0.1)

    def test_low_drive_causes_desaturation(self):
        model = VitalSignsModel()
        for _ in range(30):
            model.advance(1.0, respiratory_drive=0.2, analgesia=0.0)
        assert model.state.spo2_percent < 90.0

    def test_spo2_recovers_after_drive_restored(self):
        model = VitalSignsModel()
        for _ in range(30):
            model.advance(1.0, respiratory_drive=0.2, analgesia=0.0)
        low = model.state.spo2_percent
        for _ in range(30):
            model.advance(1.0, respiratory_drive=1.0, analgesia=0.0)
        assert model.state.spo2_percent > low + 5.0

    def test_spo2_never_below_floor(self):
        model = VitalSignsModel()
        for _ in range(500):
            model.advance(1.0, respiratory_drive=0.0, analgesia=0.0)
        assert model.state.spo2_percent >= VitalSignsParameters().min_spo2

    def test_respiratory_rate_tracks_drive(self):
        model = VitalSignsModel()
        state = model.advance(1.0, respiratory_drive=0.5, analgesia=0.0)
        assert state.respiratory_rate_bpm == pytest.approx(
            0.5 * VitalSignsParameters().baseline_respiratory_rate_bpm
        )

    def test_analgesia_reduces_pain(self):
        with_analgesia = VitalSignsModel()
        without = VitalSignsModel()
        with_analgesia.advance(10.0, 1.0, analgesia=0.8)
        without.advance(10.0, 1.0, analgesia=0.0)
        assert with_analgesia.state.pain_level < without.state.pain_level

    def test_hypoxia_raises_heart_rate(self):
        model = VitalSignsModel()
        baseline_hr = model.state.heart_rate_bpm
        for _ in range(30):
            model.advance(1.0, respiratory_drive=0.1, analgesia=1.0)
        assert model.state.heart_rate_bpm > baseline_hr

    def test_respiratory_failure_detection(self):
        model = VitalSignsModel()
        assert not model.is_in_respiratory_failure()
        for _ in range(60):
            model.advance(1.0, respiratory_drive=0.1, analgesia=0.0)
        assert model.is_in_respiratory_failure()

    def test_pain_stimulus(self):
        model = VitalSignsModel()
        before = model.state.pain_level
        model.add_pain_stimulus(2.0)
        assert model.state.pain_level == pytest.approx(min(10.0, before + 2.0))

    def test_invalid_inputs_rejected(self):
        model = VitalSignsModel()
        with pytest.raises(ValueError):
            model.advance(-1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            model.advance(1.0, 2.0, 0.0)
        with pytest.raises(ValueError):
            model.advance(1.0, 1.0, 2.0)

    def test_reset(self):
        model = VitalSignsModel()
        model.advance(30.0, 0.1, 0.0)
        model.reset()
        assert model.state.spo2_percent == VitalSignsParameters().baseline_spo2


class TestArterialPressureModel:
    def test_initial_reading_matches_baseline(self):
        model = ArterialPressureModel()
        assert model.measured_map_mmhg == pytest.approx(90.0)

    def test_bed_height_offsets_reading_not_true_map(self):
        model = ArterialPressureModel()
        model.set_bed_height_offset(40.0)
        assert model.true_map_mmhg == pytest.approx(90.0)
        assert model.measured_map_mmhg == pytest.approx(90.0 - 40.0 * MMHG_PER_CM_HEIGHT)

    def test_drift_toward_target(self):
        model = ArterialPressureModel()
        model.set_target_map(60.0)
        model.advance(60.0)
        assert model.true_map_mmhg < 65.0

    def test_hypotension_detection(self):
        model = ArterialPressureModel()
        assert not model.is_truly_hypotensive()
        model.set_target_map(50.0)
        model.advance(200.0)
        assert model.is_truly_hypotensive()

    def test_reading_hypotension_from_artifact(self):
        model = ArterialPressureModel()
        model.set_bed_height_offset(45.0)
        assert model.reading_is_hypotensive()
        assert not model.is_truly_hypotensive()

    def test_noise_applied_with_rng(self):
        model = ArterialPressureModel(rng=np.random.default_rng(0))
        readings = {round(model.measured_map_mmhg, 6) for _ in range(10)}
        assert len(readings) > 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ArterialPressureParameters(baseline_map_mmhg=0.0).validate()
        with pytest.raises(ValueError):
            ArterialPressureModel().set_target_map(0.0)
        with pytest.raises(ValueError):
            ArterialPressureModel().advance(-1.0)


class TestPatientParameters:
    def test_default_patient_validates(self):
        DEFAULT_PATIENT.validate()

    def test_invalid_weight_rejected(self):
        import dataclasses
        bad = dataclasses.replace(DEFAULT_PATIENT, weight_kg=0.0)
        with pytest.raises(ValueError):
            bad.validate()

    def test_pk_parameters_scaled_by_weight(self):
        import dataclasses
        heavy = dataclasses.replace(DEFAULT_PATIENT, weight_kg=120.0)
        assert heavy.pk_parameters().central_volume_l > DEFAULT_PATIENT.pk_parameters().central_volume_l

    def test_pd_parameters_scaled_by_sensitivity(self):
        import dataclasses
        sensitive = dataclasses.replace(DEFAULT_PATIENT, opioid_sensitivity=2.0)
        assert (
            sensitive.pd_parameters().ec50_respiratory_mg_per_l
            < DEFAULT_PATIENT.pd_parameters().ec50_respiratory_mg_per_l
        )

    def test_vitals_parameters_carry_baselines(self):
        vitals = DEFAULT_PATIENT.vitals_parameters()
        assert vitals.baseline_heart_rate_bpm == DEFAULT_PATIENT.baseline_heart_rate_bpm

    def test_as_record_round_trip(self):
        record = DEFAULT_PATIENT.as_record()
        assert record["patient_id"] == DEFAULT_PATIENT.patient_id
        assert record["weight_kg"] == DEFAULT_PATIENT.weight_kg


class TestPatientPopulation:
    def test_sample_count(self, population):
        assert len(population.sample(10)) == 10

    def test_sample_zero(self, population):
        assert population.sample(0) == []

    def test_negative_count_rejected(self, population):
        with pytest.raises(ValueError):
            population.sample(-1)

    def test_all_sampled_patients_valid(self, population):
        for patient in population.sample(50):
            patient.validate()

    def test_unique_ids(self, population):
        patients = population.sample(20)
        assert len({p.patient_id for p in patients}) == 20

    def test_reproducible_with_same_seed(self):
        a = PatientPopulation(seed=3).sample(5)
        b = PatientPopulation(seed=3).sample(5)
        assert [p.weight_kg for p in a] == [p.weight_kg for p in b]

    def test_sensitive_patient_has_higher_sensitivity(self, population):
        normal = population.sample_one("n", sensitive=False)
        sensitive = population.sample_one("s", sensitive=True)
        assert sensitive.opioid_sensitivity >= 1.6
        assert sensitive.opioid_sensitivity > normal.opioid_sensitivity or normal.opioid_sensitivity > 1.6

    def test_athlete_has_low_heart_rate(self, population):
        athlete = population.sample_one("a", athlete=True)
        assert athlete.is_athlete
        assert athlete.baseline_heart_rate_bpm < 60.0
        assert "athlete" in athlete.tags

    def test_fraction_arguments_validated(self, population):
        with pytest.raises(ValueError):
            population.sample(5, sensitive_fraction=1.5)

    def test_cohorts_partition_population(self, population):
        cohorts = population.sample_cohorts(60)
        total = sum(len(group) for group in cohorts.values())
        assert total == 60
        assert set(cohorts) == {"typical", "opioid_sensitive", "athlete"}
