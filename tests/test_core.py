"""Tests for the core closed-loop PCA system: supervisor, delays, caregiver, loop."""

import dataclasses

import numpy as np
import pytest

from repro.core.caregiver import Caregiver, CaregiverConfig
from repro.core.delays import (
    DelayBudget,
    DelayComponent,
    loop_delay_budget,
    max_additional_drug_during_reaction,
    required_threshold_margin,
)
from repro.core.loop import ClosedLoopPCASystem, PCASystemConfig
from repro.core.pca import PCASafetySupervisor, SupervisorConfig, SupervisorDecision
from repro.devices.pca_pump import PCAPrescription
from repro.patient.population import PatientPopulation
from repro.sim.faults import FaultSpec
from repro.sim.kernel import Simulator


class TestSupervisorConfig:
    def test_defaults_validate(self):
        SupervisorConfig().validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            SupervisorConfig(policy="magic").validate()

    def test_resume_below_stop_threshold_rejected(self):
        with pytest.raises(ValueError):
            SupervisorConfig(spo2_stop_threshold=95.0, spo2_resume_threshold=92.0).validate()


class _FakeQoS:
    def __init__(self):
        self.stale = set()

    def is_stale(self, topic):
        return topic in self.stale


class _FakeHost:
    """Captures supervisor commands without a full middleware stack."""

    def __init__(self):
        self.qos = _FakeQoS()
        self.commands = []

    def send_command(self, app, device_id, command, parameters=None):
        self.commands.append((device_id, command))
        return True


def make_supervisor(**config_overrides):
    supervisor = PCASafetySupervisor("app", "pump-1", SupervisorConfig(**config_overrides))
    host = _FakeHost()
    supervisor.host = host
    return supervisor, host


def feed(supervisor, time, spo2=None, heart_rate=None, respiratory_rate=None):
    class _Message:
        sent_at = time
        delivered_at = time

    if spo2 is not None:
        supervisor.on_data("spo2", {"value": spo2, "valid": True, "time": time}, _Message())
    if heart_rate is not None:
        supervisor.on_data("heart_rate", {"value": heart_rate, "valid": True, "time": time}, _Message())
    if respiratory_rate is not None:
        supervisor.on_data("respiratory_rate", {"value": respiratory_rate, "valid": True, "time": time},
                           _Message())


class TestPCASafetySupervisorLogic:
    def test_no_action_when_healthy(self):
        supervisor, host = make_supervisor()
        feed(supervisor, 10.0, spo2=98.0, heart_rate=75.0, respiratory_rate=14.0)
        supervisor.step(10.0)
        assert host.commands == []
        assert not supervisor.pump_stopped

    def test_stop_on_low_spo2(self):
        supervisor, host = make_supervisor()
        feed(supervisor, 10.0, spo2=89.0, heart_rate=75.0, respiratory_rate=14.0)
        supervisor.step(10.0)
        assert host.commands == [("pump-1", "stop")]
        assert supervisor.pump_stopped
        assert supervisor.stop_count == 1
        assert supervisor.first_stop_time == 10.0

    def test_stop_only_once_while_condition_persists(self):
        supervisor, host = make_supervisor()
        for time in (10.0, 12.0, 14.0):
            feed(supervisor, time, spo2=88.0, heart_rate=75.0, respiratory_rate=14.0)
            supervisor.step(time)
        assert supervisor.stop_count == 1

    def test_fused_policy_stops_on_low_respiratory_rate(self):
        supervisor, host = make_supervisor(policy="fused")
        feed(supervisor, 10.0, spo2=97.0, heart_rate=75.0, respiratory_rate=6.0)
        supervisor.step(10.0)
        assert supervisor.pump_stopped

    def test_threshold_policy_ignores_respiratory_rate(self):
        supervisor, host = make_supervisor(policy="threshold")
        feed(supervisor, 10.0, spo2=97.0, heart_rate=75.0, respiratory_rate=6.0)
        supervisor.step(10.0)
        assert not supervisor.pump_stopped

    def test_trend_policy_predicts_crossing(self):
        supervisor, host = make_supervisor(policy="trend", trend_window_samples=8,
                                            trend_arm_spo2=96.0)
        # Falling SpO2 trend: 95.5 down to ~94, slope -0.15/ step of 2 s.
        for index in range(10):
            time = 2.0 * index
            feed(supervisor, time, spo2=95.5 - 0.3 * index, heart_rate=75.0, respiratory_rate=12.0)
        supervisor.step(20.0)
        assert supervisor.pump_stopped
        assert "trend" in supervisor.events[0].reason

    def test_trend_not_armed_at_high_spo2(self):
        supervisor, host = make_supervisor(policy="trend", trend_window_samples=8)
        for index in range(10):
            feed(supervisor, 2.0 * index, spo2=99.0 - 0.1 * index, heart_rate=75.0, respiratory_rate=12.0)
        supervisor.step(20.0)
        assert not supervisor.pump_stopped

    def test_stale_data_fails_safe(self):
        supervisor, host = make_supervisor()
        feed(supervisor, 10.0, spo2=98.0, heart_rate=75.0, respiratory_rate=14.0)
        host.qos.stale.add("spo2")
        supervisor.step(100.0)
        assert supervisor.pump_stopped
        assert "stale" in supervisor.events[0].reason

    def test_startup_grace_tolerates_missing_topics(self):
        supervisor, host = make_supervisor(startup_grace_s=30.0)
        host.qos.stale.add("respiratory_rate")  # capnograph has not reported yet
        feed(supervisor, 5.0, spo2=98.0, heart_rate=75.0)
        supervisor.step(5.0)
        assert not supervisor.pump_stopped

    def test_after_grace_missing_topic_stops(self):
        supervisor, host = make_supervisor(startup_grace_s=30.0)
        host.qos.stale.add("respiratory_rate")
        feed(supervisor, 40.0, spo2=98.0, heart_rate=75.0)
        supervisor.step(40.0)
        assert supervisor.pump_stopped

    def test_invalid_spo2_fails_safe(self):
        supervisor, host = make_supervisor()

        class _Message:
            sent_at = 50.0
            delivered_at = 50.0

        supervisor.on_data("spo2", {"value": 0.0, "valid": False, "time": 50.0}, _Message())
        feed(supervisor, 50.0, heart_rate=75.0, respiratory_rate=14.0)
        supervisor.step(50.0)
        assert supervisor.pump_stopped

    def test_resume_after_recovery_and_hold_time(self):
        supervisor, host = make_supervisor(resume_hold_time_s=100.0)
        feed(supervisor, 10.0, spo2=88.0, heart_rate=75.0, respiratory_rate=12.0)
        supervisor.step(10.0)
        assert supervisor.pump_stopped
        feed(supervisor, 50.0, spo2=96.5, heart_rate=75.0, respiratory_rate=13.0)
        supervisor.step(50.0)
        assert supervisor.pump_stopped  # hold time not yet elapsed
        feed(supervisor, 160.0, spo2=97.0, heart_rate=75.0, respiratory_rate=13.0)
        supervisor.step(160.0)
        assert not supervisor.pump_stopped
        assert supervisor.resume_count == 1

    def test_resume_disabled(self):
        supervisor, host = make_supervisor(resume_enabled=False)
        feed(supervisor, 10.0, spo2=88.0, heart_rate=75.0, respiratory_rate=12.0)
        supervisor.step(10.0)
        feed(supervisor, 1000.0, spo2=99.0, heart_rate=75.0, respiratory_rate=14.0)
        supervisor.step(1000.0)
        assert supervisor.pump_stopped


class TestDelayBudget:
    def test_component_validation(self):
        with pytest.raises(ValueError):
            DelayComponent(name="x", nominal_s=-1.0)
        with pytest.raises(ValueError):
            DelayComponent(name="x", nominal_s=2.0, worst_case_s=1.0)

    def test_budget_totals(self):
        budget = DelayBudget()
        budget.add(DelayComponent("a", 1.0, 2.0)).add(DelayComponent("b", 0.5))
        assert budget.nominal_total_s == pytest.approx(1.5)
        assert budget.worst_case_total_s == pytest.approx(2.5)
        assert budget.dominant_component().name == "a"

    def test_duplicate_component_rejected(self):
        budget = DelayBudget()
        budget.add(DelayComponent("a", 1.0))
        with pytest.raises(ValueError):
            budget.add(DelayComponent("a", 2.0))

    def test_loop_delay_budget_structure(self):
        budget = loop_delay_budget(
            sensor_sample_period_s=2.0,
            signal_processing_delay_s=3.0,
            uplink_latency_s=0.05,
            supervisor_step_period_s=2.0,
            algorithm_delay_s=0.1,
            command_latency_s=0.05,
            pump_stop_delay_s=1.0,
        )
        assert len(budget.components) == 7
        assert budget.worst_case_total_s > budget.nominal_total_s
        rows = budget.as_rows()
        assert rows[-1]["component"] == "TOTAL"

    def test_retransmissions_increase_worst_case(self):
        kwargs = dict(
            sensor_sample_period_s=2.0, signal_processing_delay_s=3.0, uplink_latency_s=0.1,
            supervisor_step_period_s=2.0, algorithm_delay_s=0.1, command_latency_s=0.1,
            pump_stop_delay_s=1.0,
        )
        without = loop_delay_budget(**kwargs)
        with_retx = loop_delay_budget(retransmissions=3, **kwargs)
        assert with_retx.worst_case_total_s > without.worst_case_total_s

    def test_additional_drug_during_reaction(self):
        budget = DelayBudget([DelayComponent("total", 36.0)])
        drug = max_additional_drug_during_reaction(budget, basal_rate_mg_per_hr=10.0, pending_bolus_mg=1.0)
        assert drug == pytest.approx(1.0 + 0.1)

    def test_required_threshold_margin(self):
        budget = DelayBudget([DelayComponent("total", 60.0)])
        assert required_threshold_margin(budget, spo2_fall_rate_per_min=2.0) == pytest.approx(2.0)


class TestCaregiver:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CaregiverConfig(rounding_period_s=0.0).validate()
        with pytest.raises(ValueError):
            CaregiverConfig(distraction_probability=1.5).validate()

    def test_rounds_happen_periodically(self):
        simulator = Simulator()
        caregiver = Caregiver("nurse", CaregiverConfig(rounding_period_s=100.0),
                              rng=np.random.default_rng(0))
        simulator.register(caregiver)
        simulator.run(until=450.0)
        assert caregiver.rounds_done == 4

    def test_alarm_response_has_delay(self):
        simulator = Simulator()
        caregiver = Caregiver("nurse", CaregiverConfig(distraction_probability=0.0),
                              rng=np.random.default_rng(1))
        simulator.register(caregiver)
        simulator.schedule(10.0, lambda: caregiver.notify_alarm("low_spo2"))
        simulator.run(until=4000.0)
        alarm_responses = [t for t, label in caregiver.interventions if label == "low_spo2"]
        assert alarm_responses and alarm_responses[0] > 10.0 + 10.0

    def test_distraction_misses_alarms(self):
        simulator = Simulator()
        caregiver = Caregiver("nurse", CaregiverConfig(distraction_probability=1.0),
                              rng=np.random.default_rng(2))
        simulator.register(caregiver)
        assert not caregiver.notify_alarm("x")
        assert caregiver.alarms_missed == 1

    def test_alarm_fatigue_reduces_attention(self):
        caregiver = Caregiver("nurse", CaregiverConfig(fatigue_half_life=5.0),
                              rng=np.random.default_rng(3))
        initial = caregiver.attention
        caregiver.false_alarms_seen = 10
        assert caregiver.attention < initial

    def test_response_rate_accounting(self):
        simulator = Simulator()
        caregiver = Caregiver("nurse", CaregiverConfig(distraction_probability=0.5),
                              rng=np.random.default_rng(4))
        simulator.register(caregiver)
        for _ in range(40):
            caregiver.notify_alarm("x")
        assert 0.0 < caregiver.response_rate < 1.0


class TestClosedLoopPCASystem:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PCASystemConfig(mode="bogus").validate()
        with pytest.raises(ValueError):
            PCASystemConfig(duration_s=0.0).validate()

    def test_build_is_idempotent(self):
        system = ClosedLoopPCASystem(PCASystemConfig(duration_s=60.0))
        system.build()
        pump_before = system.pump
        system.build()
        assert system.pump is pump_before

    def test_closed_loop_has_supervisor_open_loop_does_not(self):
        closed = ClosedLoopPCASystem(PCASystemConfig(mode="closed_loop", duration_s=60.0)).build()
        open_ = ClosedLoopPCASystem(PCASystemConfig(mode="open_loop", duration_s=60.0)).build()
        assert closed.supervisor is not None
        assert open_.supervisor is None

    def test_run_produces_result_record(self):
        result = ClosedLoopPCASystem(PCASystemConfig(mode="closed_loop", duration_s=1800.0, seed=1)).run()
        assert result.mode == "closed_loop"
        assert result.min_spo2 > 0
        record = result.as_record()
        assert record["patient_id"] == "default"

    def test_closed_loop_protects_against_misprogramming(self):
        population = PatientPopulation(seed=5)
        patient = population.sample_one("victim")
        prescription = PCAPrescription(bolus_dose_mg=1.5, lockout_interval_s=300.0,
                                       hourly_limit_mg=12.0, basal_rate_mg_per_hr=1.0)
        fault = [FaultSpec(kind="misprogramming", start=1200.0, target="pca-pump-1",
                           parameters={"rate_multiplier": 6.0})]
        results = {}
        for mode in ("open_loop", "closed_loop"):
            config = PCASystemConfig(mode=mode, duration_s=3.0 * 3600.0, patient=patient,
                                     prescription=prescription, faults=fault, seed=9)
            results[mode] = ClosedLoopPCASystem(config).run()
        assert results["closed_loop"].min_spo2 > results["open_loop"].min_spo2
        assert results["closed_loop"].supervisor_stops >= 1
        assert (
            results["closed_loop"].respiratory_failure_events
            <= results["open_loop"].respiratory_failure_events
        )
        assert not results["closed_loop"].harmed

    def test_paired_runs_reproducible(self):
        config = PCASystemConfig(mode="closed_loop", duration_s=1800.0, seed=3)
        a = ClosedLoopPCASystem(config).run()
        b = ClosedLoopPCASystem(PCASystemConfig(mode="closed_loop", duration_s=1800.0, seed=3)).run()
        assert a.min_spo2 == pytest.approx(b.min_spo2)
        assert a.total_drug_delivered_mg == pytest.approx(b.total_drug_delivered_mg)

    def test_communication_outage_triggers_fail_safe_stop(self):
        faults = [FaultSpec(kind="channel_outage", start=600.0, duration=1200.0,
                            target="uplink:pulse-ox-1")]
        config = PCASystemConfig(mode="closed_loop", duration_s=3600.0, faults=faults, seed=2)
        system = ClosedLoopPCASystem(config)
        result = system.run()
        assert result.supervisor_stops >= 1
        reasons = [event.reason for event in system.supervisor.events]
        assert any("stale" in reason for reason in reasons)
