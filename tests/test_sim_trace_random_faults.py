"""Tests for trace recording, random streams, and fault injection."""

import numpy as np
import pytest

from repro.sim.channel import Channel, ChannelConfig
from repro.sim.faults import FaultInjector, FaultSpec, communication_failure_campaign
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.sim.trace import TraceRecorder, resample


class TestTraceRecorder:
    def test_record_and_read_samples(self, trace):
        trace.record(0.0, "spo2", 98.0)
        trace.record(1.0, "spo2", 97.0)
        assert trace.samples("spo2") == [(0.0, 98.0), (1.0, 97.0)]
        assert list(trace.values("spo2")) == [98.0, 97.0]
        assert list(trace.times("spo2")) == [0.0, 1.0]

    def test_signals_sorted(self, trace):
        trace.record(0.0, "b", 1)
        trace.record(0.0, "a", 1)
        assert trace.signals() == ["a", "b"]

    def test_last_and_value_at(self, trace):
        trace.record(0.0, "hr", 70)
        trace.record(5.0, "hr", 80)
        assert trace.last("hr") == (5.0, 80)
        assert trace.value_at("hr", 3.0) == 70
        assert trace.value_at("hr", 6.0) == 80
        assert trace.value_at("hr", -1.0) is None

    def test_events_and_counts(self, trace):
        trace.event(1.0, "alarm", "low_spo2")
        trace.event(2.0, "alarm", "low_spo2")
        trace.event(3.0, "stop")
        assert trace.count_events("alarm") == 2
        assert trace.first_event_time("alarm") == 1.0
        assert trace.first_event_time("missing") is None
        assert len(trace.events()) == 3

    def test_duration_below_and_above(self, trace):
        for t, v in [(0.0, 95.0), (10.0, 85.0), (20.0, 85.0), (30.0, 95.0)]:
            trace.record(t, "spo2", v)
        assert trace.duration_below("spo2", 90.0) == pytest.approx(20.0)
        assert trace.duration_above("spo2", 90.0) == pytest.approx(10.0)

    def test_min_max_mean(self, trace):
        for t, v in enumerate([3.0, 1.0, 2.0]):
            trace.record(float(t), "x", v)
        assert trace.max("x") == 3.0
        assert trace.min("x") == 1.0
        assert trace.mean("x") == pytest.approx(2.0)

    def test_statistics_on_missing_signal_raise(self, trace):
        with pytest.raises(KeyError):
            trace.max("nothing")

    def test_merge_combines_and_sorts(self, trace):
        other = TraceRecorder()
        trace.record(2.0, "x", 2)
        other.record(1.0, "x", 1)
        other.event(0.5, "e")
        trace.merge(other)
        assert trace.samples("x") == [(1.0, 1), (2.0, 2)]
        assert trace.count_events("e") == 1

    def test_to_dict_roundtrip_structure(self, trace):
        trace.record(0.0, "x", 1)
        trace.event(1.0, "e", "v")
        data = trace.to_dict()
        assert "x" in data["signals"]
        assert data["events"][0]["signal"] == "e"

    def test_len(self, trace):
        trace.record(0.0, "x", 1)
        trace.event(1.0, "e")
        assert len(trace) == 2

    def test_resample_step_interpolation(self):
        samples = [(0.0, 1.0), (10.0, 2.0)]
        values = resample(samples, np.array([0.0, 5.0, 10.0, 15.0]))
        assert list(values) == [1.0, 1.0, 2.0, 2.0]

    def test_resample_before_first_sample_is_nan(self):
        values = resample([(5.0, 1.0)], np.array([0.0, 6.0]))
        assert np.isnan(values[0]) and values[1] == 1.0

    def test_resample_empty_samples(self):
        values = resample([], np.array([0.0, 1.0]))
        assert np.isnan(values).all()

    def test_record_many_bulk_append(self, trace):
        trace.record(0.0, "spo2", 99.0)
        trace.record_many("spo2", [1.0, 2.0, 3.0], [98.0, 97.0, 96.0])
        assert trace.samples("spo2") == [(0.0, 99.0), (1.0, 98.0),
                                         (2.0, 97.0), (3.0, 96.0)]
        assert list(trace.times("spo2")) == [0.0, 1.0, 2.0, 3.0]
        assert len(trace) == 4

    def test_record_many_accepts_numpy_arrays(self, trace):
        # Regression: the emptiness guard used `not times`, which raises on
        # multi-element ndarrays — the primary bulk-sampler input type.
        trace.record_many("x", np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        trace.record_many("x", np.array([]), np.array([]))
        assert trace.samples("x") == [(1.0, 10.0), (2.0, 20.0)]
        # ndarray values must land as Python floats, or to_dict() stops
        # being JSON-serialisable.
        import json as json_module
        json_module.dumps(trace.to_dict())

    def test_record_many_new_signal_and_empty(self, trace):
        trace.record_many("fresh", [], [])
        assert trace.samples("fresh") == []
        trace.record_many("fresh", (0.5,), (1.0,))
        assert trace.last("fresh") == (0.5, 1.0)

    def test_record_many_length_mismatch_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.record_many("x", [1.0, 2.0], [1.0])

    def test_times_values_arrays_are_cached_until_write(self, trace):
        trace.record(0.0, "x", 1.0)
        trace.record(1.0, "x", 2.0)
        first = trace.values("x")
        assert trace.values("x") is first  # cached between reads
        assert trace.times("x") is trace.times("x")
        trace.record(2.0, "x", 3.0)
        second = trace.values("x")
        assert second is not first  # invalidated by the write
        assert list(second) == [1.0, 2.0, 3.0]
        trace.record_many("x", [3.0], [4.0])
        assert list(trace.values("x")) == [1.0, 2.0, 3.0, 4.0]

    def test_cached_arrays_are_read_only(self, trace):
        trace.record(0.0, "x", 1.0)
        values = trace.values("x")
        with pytest.raises(ValueError):
            values[0] = 99.0  # mutating the shared cache would corrupt it

    def test_merge_invalidates_caches(self, trace):
        trace.record(2.0, "x", 2.0)
        stale = trace.values("x")
        other = TraceRecorder()
        other.record(1.0, "x", 1.0)
        trace.merge(other)
        assert list(trace.values("x")) == [1.0, 2.0]
        assert list(stale) == [2.0]  # the old array is simply detached

    def test_missing_signal_queries(self, trace):
        assert trace.samples("nope") == []
        assert trace.times("nope").size == 0
        assert trace.values("nope").size == 0
        assert trace.last("nope") is None
        assert trace.value_at("nope", 1.0) is None


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(42).stream("patients").random(5)
        b = RandomStreams(42).stream("patients").random(5)
        assert np.allclose(a, b)

    def test_order_independent(self):
        one = RandomStreams(42)
        two = RandomStreams(42)
        one.stream("x")
        a = one.stream("y").random(3)
        b = two.stream("y").random(3)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        streams = RandomStreams(0)
        assert not np.allclose(streams.stream("a").random(5), streams.stream("b").random(5))

    def test_different_seeds_differ(self):
        assert not np.allclose(
            RandomStreams(1).stream("a").random(5), RandomStreams(2).stream("a").random(5)
        )

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)

    def test_spawn_independent_child(self):
        parent = RandomStreams(5)
        child = parent.spawn("child")
        assert not np.allclose(parent.stream("a").random(4), child.stream("a").random(4))

    def test_contains_and_reset(self):
        streams = RandomStreams(0)
        streams.stream("a")
        assert "a" in streams
        streams.reset()
        assert "a" not in streams


class _FakeDevice:
    def __init__(self):
        self.crashed = False
        self.restarted = False
        self.frozen = False
        self.reprogram_args = None
        self.proxy_count = 0

    def crash(self):
        self.crashed = True

    def restart(self):
        self.restarted = True

    def freeze(self):
        self.frozen = True

    def unfreeze(self):
        self.frozen = False

    def reprogram(self, **kwargs):
        self.reprogram_args = kwargs

    def proxy_request(self, count=1):
        self.proxy_count += count


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="nonsense", start=0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="device_crash", start=-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="channel_outage", start=0.0, duration=-1.0)

    def test_end_property(self):
        spec = FaultSpec(kind="channel_outage", start=2.0, duration=3.0)
        assert spec.end == 5.0


class TestFaultInjector:
    def test_device_crash_fault(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        device = _FakeDevice()
        injector.register_device("pump", device)
        injector.add(FaultSpec(kind="device_crash", start=5.0, target="pump"))
        injector.arm()
        sim.run(until=10.0)
        assert device.crashed
        assert len(injector.injected) == 1

    def test_device_restart_fault(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        device = _FakeDevice()
        injector.register_device("pump", device)
        injector.extend([
            FaultSpec(kind="device_crash", start=1.0, target="pump"),
            FaultSpec(kind="device_restart", start=2.0, target="pump"),
        ])
        injector.arm()
        sim.run()
        assert device.restarted

    def test_misprogramming_passes_parameters(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        device = _FakeDevice()
        injector.register_device("pump", device)
        injector.add(FaultSpec(kind="misprogramming", start=1.0, target="pump",
                               parameters={"rate_multiplier": 4.0}))
        injector.arm()
        sim.run()
        assert device.reprogram_args == {"rate_multiplier": 4.0}

    def test_pca_by_proxy(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        device = _FakeDevice()
        injector.register_device("pump", device)
        injector.add(FaultSpec(kind="pca_by_proxy", start=1.0, target="pump", parameters={"count": 3}))
        injector.arm()
        sim.run()
        assert device.proxy_count == 3

    def test_stuck_sensor_freezes_then_unfreezes(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        device = _FakeDevice()
        injector.register_device("ox", device)
        injector.add(FaultSpec(kind="stuck_sensor", start=1.0, duration=2.0, target="ox"))
        injector.arm()
        sim.run(until=2.0)
        assert device.frozen
        sim.run(until=5.0)
        assert not device.frozen

    def test_channel_outage_fault(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        channel = Channel(sim, "link", ChannelConfig())
        injector.register_channel(channel)
        injector.add(FaultSpec(kind="channel_outage", start=1.0, duration=2.0, target="link"))
        injector.arm()
        sim.run(until=1.5)
        assert channel.in_outage(1.5)

    def test_unknown_target_raises_at_apply_time(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        injector.add(FaultSpec(kind="device_crash", start=1.0, target="missing"))
        injector.arm()
        with pytest.raises(KeyError):
            sim.run()

    def test_custom_fault_handler(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        called = []
        injector.register_custom("thing", lambda spec: called.append(spec.kind))
        injector.add(FaultSpec(kind="custom", start=1.0, target="thing"))
        injector.arm()
        sim.run()
        assert called == ["custom"]

    def test_arm_twice_is_an_error_not_a_double_schedule(self):
        # arm() twice used to schedule every fault twice (double outages,
        # double proxy boluses) — silent experiment corruption.
        sim = Simulator()
        injector = FaultInjector(sim)
        device = _FakeDevice()
        injector.register_device("pump", device)
        injector.add(FaultSpec(kind="pca_by_proxy", start=1.0, target="pump",
                               parameters={"count": 3}))
        injector.arm()
        with pytest.raises(RuntimeError, match="arm.*twice"):
            injector.arm()
        sim.run()
        assert device.proxy_count == 3  # injected exactly once
        assert injector.armed

    def test_add_after_arm_schedules_immediately(self):
        # add() after arm() used to silently never fire — the worst failure
        # mode for a fault campaign that believes it injected something.
        sim = Simulator()
        injector = FaultInjector(sim)
        device = _FakeDevice()
        injector.register_device("pump", device)
        injector.arm()
        injector.add(FaultSpec(kind="device_crash", start=2.0, target="pump"))
        sim.run()
        assert device.crashed
        assert len(injector.injected) == 1

    def test_add_before_arm_schedules_once(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        device = _FakeDevice()
        injector.register_device("pump", device)
        injector.add(FaultSpec(kind="device_crash", start=1.0, target="pump"))
        assert not injector.armed
        injector.arm()
        sim.run()
        assert len(injector.injected) == 1


class TestFaultSpecRoundtrip:
    def test_as_dict_from_dict_roundtrip(self):
        spec = FaultSpec(kind="channel_outage", start=10.0, duration=5.0,
                         target="link", parameters={"x": 1})
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"kind": "device_crash", "start": 0.0,
                                 "severity": "high"})

    def test_from_dict_requires_kind_and_start(self):
        with pytest.raises(ValueError, match="requires 'kind' and 'start'"):
            FaultSpec.from_dict({"kind": "device_crash"})

    def test_fault_plan_specs_compiles_plan(self):
        from repro.sim.faults import fault_plan_specs

        plan = [{"kind": "channel_outage", "start": 30.0, "duration": 10.0,
                 "target": "uplink:pulse-ox-1"}]
        specs = fault_plan_specs(plan)
        assert len(specs) == 1
        assert specs[0].end == 40.0


class TestFaultInjectorMetrics:
    def test_faults_injected_counter_increments_when_enabled(self):
        from repro.obs import metrics as obsm

        was_enabled = obsm.enabled()
        obsm.enable()
        obsm.registry().reset()
        try:
            sim = Simulator()
            injector = FaultInjector(sim)
            device = _FakeDevice()
            injector.register_device("pump", device)
            injector.add(FaultSpec(kind="device_crash", start=1.0, target="pump"))
            injector.arm()
            sim.run()
            assert obsm.registry().get("campaign.faults_injected").value == 1
        finally:
            obsm.registry().reset()
            if not was_enabled:
                obsm.disable()


class TestCommunicationFailureCampaign:
    def test_communication_failure_campaign_builder(self):
        specs = communication_failure_campaign("link", first_start=10.0, outage_duration=5.0,
                                                period=100.0, count=3)
        assert len(specs) == 3
        assert specs[1].start == 110.0
        assert all(spec.kind == "channel_outage" for spec in specs)

    def test_campaign_negative_count_rejected(self):
        with pytest.raises(ValueError):
            communication_failure_campaign("link", 0.0, 1.0, 10.0, -1)
