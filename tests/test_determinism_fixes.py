"""Regression tests for the deterministic, leak-free messaging layer.

Covers four fixes:

* ``DeviceBus._forward`` iterated a ``set`` of endpoint ids, making downlink
  delivery order (and hence sequence numbers and kernel tiebreaks) depend on
  ``PYTHONHASHSEED``.
* ``Channel`` retained every delivered message and latency forever — an
  O(events) memory leak at campaign scale.
* ``DeviceBus.send_command`` messages also hit the topic-less uplink
  subscription, scheduling one phantom forward event per command.
* ``Channel`` silently disabled configured jitter/loss when no rng was
  provided.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.middleware.bus import BusConfig, DeviceBus
from repro.sim.channel import Channel, ChannelConfig
from repro.sim.kernel import Simulator

SRC = Path(__file__).resolve().parents[1] / "src"


class _Sensor(MedicalDevice):
    """Minimal publishing device accepting a 'ping' command."""

    def __init__(self, device_id="dev-1"):
        super().__init__(DeviceDescriptor(
            device_id=device_id,
            device_type="sensor",
            published_topics=("t",),
            accepted_commands=("ping",),
        ))
        self.pings = []
        self.register_command("ping", self.pings.append)

    def start(self):
        self.transition(DeviceState.RUNNING)


def _make_bus():
    simulator = Simulator()
    bus = DeviceBus(simulator)
    device = _Sensor()
    bus.attach_device(device)
    simulator.register(device)
    return simulator, bus, device


#: Endpoint ids whose string hashes scatter differently per PYTHONHASHSEED.
ENDPOINTS = ["alpha", "omega", "Z", "aa", "ab", "ba", "qq-7", "watcher-42"]

_ORDER_SCRIPT = """
import json
from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.middleware.bus import DeviceBus
from repro.sim.kernel import Simulator

class Sensor(MedicalDevice):
    def __init__(self):
        super().__init__(DeviceDescriptor(
            device_id="dev-1", device_type="s", published_topics=("t",)))
    def start(self):
        self.transition(DeviceState.RUNNING)

sim = Simulator()
bus = DeviceBus(sim)
device = Sensor()
bus.attach_device(device)
sim.register(device)
order = []
for endpoint in {endpoints!r}:
    bus.subscribe(endpoint, "t", lambda t, p, m, e=endpoint: order.append(e))
device.publish("t", {{"v": 1}})
sim.run()
print(json.dumps(order))
"""


class TestForwardOrderDeterminism:
    def _delivery_order(self, hash_seed: str):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        script = _ORDER_SCRIPT.format(endpoints=ENDPOINTS)
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, env=env, check=True)
        return json.loads(out.stdout)

    def test_order_identical_across_hash_seeds(self):
        # Two interpreter runs under different PYTHONHASHSEED values must
        # deliver to subscribers in the identical (subscription) order.
        assert self._delivery_order("1") == self._delivery_order("4242") == ENDPOINTS

    def test_order_follows_subscription_order(self):
        simulator, bus, device = _make_bus()
        order = []
        for endpoint in ENDPOINTS:
            bus.subscribe(endpoint, "t",
                          lambda t, p, m, e=endpoint: order.append(e))
        device.publish("t", {"v": 1})
        simulator.run()
        assert order == ENDPOINTS

    def test_duplicate_subscription_forwards_once_per_endpoint(self):
        simulator, bus, device = _make_bus()
        received = []
        bus.subscribe("listener", "t", lambda t, p, m: received.append("first"))
        bus.subscribe("listener", "t", lambda t, p, m: received.append("second"))
        device.publish("t", {"v": 1})
        simulator.run()
        # One downlink send (dedup), fanned out to both handlers.
        assert bus.forwarded_count == 1
        assert received == ["first", "second"]


class TestChannelRetention:
    def test_long_run_keeps_no_per_message_state(self):
        simulator = Simulator()
        channel = Channel(simulator, "bulk", ChannelConfig(latency_s=0.001))
        channel.subscribe(lambda m: None)
        for i in range(10_000):
            channel.send("a", "t", i)
        simulator.run()
        assert channel.delivered == 10_000
        # The leak fix: no O(events) histories by default.
        assert channel.latencies == []
        assert channel.delivered_messages == []

    def test_streaming_stats_match_retained_reference(self):
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        config = ChannelConfig(latency_s=0.05, jitter_s=0.02)
        sim_a, sim_b = Simulator(), Simulator()
        lean = Channel(sim_a, "lean", config, rng=rng_a)
        fat = Channel(sim_b, "fat", config, rng=rng_b, retain_messages=True)
        for channel, simulator in ((lean, sim_a), (fat, sim_b)):
            channel.subscribe(lambda m: None)
            for i in range(200):
                channel.send("a", "t", i)
            simulator.run()
        # Identical rng draws, so the streaming stats must equal the values
        # the retained history would have produced (same floats, same order).
        assert fat.latencies and lean.latencies == []
        assert lean.mean_latency == sum(fat.latencies) / len(fat.latencies)
        assert lean.max_latency == max(fat.latencies)
        assert lean.stats() == fat.stats()

    def test_opt_in_retention_preserves_history(self):
        simulator = Simulator()
        channel = Channel(simulator, "retained", ChannelConfig(latency_s=0.25),
                          retain_messages=True)
        channel.subscribe(lambda m: None)
        channel.send("a", "t", "x")
        simulator.run()
        assert channel.latencies == [pytest.approx(0.25)]
        assert len(channel.delivered_messages) == 1
        assert channel.delivered_messages[0].payload == "x"


class TestCommandPathIsolation:
    def test_commands_do_not_enter_forwarding_path(self, monkeypatch):
        simulator, bus, device = _make_bus()
        forwarded_topics = []
        original_forward = bus._forward
        monkeypatch.setattr(
            bus, "_forward",
            lambda message: (forwarded_topics.append(message.topic),
                             original_forward(message)))
        bus.subscribe("listener", "t", lambda t, p, m: None)
        bus.send_command("supervisor", "dev-1", "ping", {"n": 1})
        bus.send_command("supervisor", "dev-1", "ping", {"n": 2})
        device.publish("t", {"v": 1})
        simulator.run()
        # Commands reached the device...
        assert device.pings == [{"n": 1}, {"n": 2}]
        # ...but never scheduled a bus:forward event; only the real publish did.
        assert forwarded_topics == ["t"]
        assert bus.forwarded_count == 1

    def test_command_only_traffic_forwards_nothing(self):
        simulator, bus, device = _make_bus()
        bus.send_command("supervisor", "dev-1", "ping")
        events_before = simulator.event_count
        simulator.run()
        assert device.pings == [{}]
        assert bus.forwarded_count == 0
        # Exactly one channel delivery event: no phantom forward rode along.
        assert simulator.event_count - events_before == 1


class TestChannelRngValidation:
    def test_jitter_without_rng_rejected(self):
        with pytest.raises(ValueError, match="rng"):
            Channel(Simulator(), "c", ChannelConfig(jitter_s=0.1))

    def test_loss_without_rng_rejected(self):
        with pytest.raises(ValueError, match="rng"):
            Channel(Simulator(), "c", ChannelConfig(loss_probability=0.5))

    def test_randomness_with_rng_accepted(self):
        channel = Channel(Simulator(), "c",
                          ChannelConfig(jitter_s=0.1, loss_probability=0.5),
                          rng=np.random.default_rng(0))
        assert channel.config.jitter_s == 0.1

    def test_deterministic_config_needs_no_rng(self):
        channel = Channel(Simulator(), "c", ChannelConfig(latency_s=0.1))
        assert channel._rng is None

    def test_config_mutated_after_construction_raises_not_silences(self):
        # The constructor guard can be sidestepped by mutating the config on
        # a live channel; sampling must then fail loudly, never quietly run
        # the experiment on a deterministic link.
        simulator = Simulator()
        channel = Channel(simulator, "c", ChannelConfig(latency_s=0.1))
        channel.config.loss_probability = 0.3
        with pytest.raises(ValueError, match="rng"):
            channel.send("a", "t", 1)
        channel.config.loss_probability = 0.0
        channel.config.jitter_s = 0.05
        with pytest.raises(ValueError, match="rng"):
            channel.send("a", "t", 1)
