"""Integration tests for observability across the simulation stack.

Pins the three contracts the observability PR must not break:

* **Determinism**: enabling metrics/spans changes *no* simulation output —
  every golden digest (kernel workload, PCA probe, all five campaign
  results files) is byte-identical with observability on.
* **Export determinism**: the NDJSON snapshot's line ordering and its
  sim-deterministic values are identical across ``PYTHONHASHSEED`` values
  (wall-clock-derived values are legitimately run-dependent and excluded).
* **CLI**: ``--json`` / ``--quiet`` output modes and ``--metrics-out``
  produce a merged snapshot carrying kernel, channel, and campaign
  metrics, serial and sharded alike.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign.cli import main as campaign_main
from repro.obs import metrics as obsm
from repro.obs.export import read_snapshot
from repro.obs.spans import tracer

from golden_workload import (
    GOLDEN_PATH,
    SCENARIO_SPECS,
    campaign_results_digest,
    kernel_workload,
    pca_system_probe,
)

SRC = Path(__file__).resolve().parents[1] / "src"


@pytest.fixture
def obs_on():
    """Enable observability, restoring the prior switch state afterwards."""
    was_enabled = obsm.enabled()
    obsm.enable()
    obsm.registry().reset()
    tracer().reset()
    yield obsm.registry()
    obsm.registry().reset()
    tracer().reset()
    if not was_enabled:
        obsm.disable()


@pytest.fixture
def obs_off():
    """Force-disable observability (even under REPRO_OBS=1 CI runs)."""
    was_enabled = obsm.enabled()
    obsm.disable()
    yield
    if was_enabled:
        obsm.enable()


def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestGoldenInvariance:
    """Metric values never feed back into simulation state."""

    def test_default_is_disabled(self):
        if os.environ.get("REPRO_OBS"):
            pytest.skip("suite is running with REPRO_OBS set")
        # Fresh interpreter: no enable() calls from earlier tests.
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.obs import metrics; print(metrics.enabled())"],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": str(SRC)},
        )
        assert out.stdout.strip() == "False"

    def test_kernel_workload_digest_unchanged_with_obs_enabled(self, obs_on):
        assert kernel_workload() == golden()["kernel_workload"]

    def test_kernel_workload_digest_unchanged_with_obs_disabled(self, obs_off):
        assert kernel_workload() == golden()["kernel_workload"]

    def test_pca_probe_unchanged_with_obs_enabled(self, obs_on):
        assert pca_system_probe() == golden()["pca_system"]

    @pytest.mark.parametrize("scenario_key", sorted(SCENARIO_SPECS))
    def test_campaign_digest_unchanged_with_obs_enabled(
            self, scenario_key, obs_on, tmp_path):
        digest = campaign_results_digest(scenario_key, tmp_path)
        assert digest == golden()["campaigns"][scenario_key]


#: Wall-clock-derived metric names whose *values* legitimately vary run to
#: run; their presence and position must still be deterministic.
_WALL_DEPENDENT = {
    "kernel.wall_seconds_total", "kernel.events_per_s",
    "kernel.sim_s_per_wall_s", "campaign.run_wall_s",
    "campaign.wall_seconds_total", "campaign.worker_utilisation",
}

_EXPORT_SCRIPT = """
import json
from repro.obs import metrics, export
from repro.obs.spans import tracer
metrics.enable()
from repro.core.loop import ClosedLoopPCASystem, PCASystemConfig
ClosedLoopPCASystem(PCASystemConfig(mode="closed_loop", duration_s=600.0,
                                    seed=99)).run()
print(export.dump_lines(export.snapshot_lines()), end="")
"""


class TestExportDeterminism:
    def _snapshot(self, hash_seed: str):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_OBS", None)
        out = subprocess.run([sys.executable, "-c", _EXPORT_SCRIPT],
                             capture_output=True, text=True, env=env,
                             check=True)
        return out.stdout.splitlines()

    def test_snapshot_ordering_identical_across_hash_seeds(self):
        lines_0 = self._snapshot("0")
        lines_4242 = self._snapshot("4242")
        parsed_0 = [json.loads(line) for line in lines_0]
        parsed_4242 = [json.loads(line) for line in lines_4242]
        assert len(parsed_0) > 10, "workload produced a trivial snapshot"

        def identity(line):
            return (line.get("type"), line.get("name"),
                    line.get("trace_id"), line.get("span_id"),
                    line.get("owner"))

        # Line ordering (and per-line key ordering, since we compare raw
        # text below) is identical under both hash seeds.
        assert [identity(l) for l in parsed_0] == \
               [identity(l) for l in parsed_4242]

        # Every sim-deterministic line is byte-identical; wall-derived
        # metrics and wall-clock spans differ only in their float values.
        for raw_0, raw_4242, line in zip(lines_0, lines_4242, parsed_0):
            if line.get("name") in _WALL_DEPENDENT:
                continue
            if line.get("type") == "span" and line.get("clock") != "sim":
                continue
            assert raw_0 == raw_4242, f"line drifted: {line}"

    def test_sim_spans_have_deterministic_endpoints(self):
        parsed = [json.loads(line) for line in self._snapshot("0")]
        sim_spans = [l for l in parsed
                     if l.get("type") == "span" and l.get("clock") == "sim"]
        assert sim_spans, "PCA run produced no sim-time spans"
        names = {span["name"] for span in sim_spans}
        assert {"pca:setup", "pca:simulate", "pca:collect",
                "pca:run"} <= names
        simulate = next(s for s in sim_spans if s["name"] == "pca:simulate")
        assert simulate["end"] == 600.0


def tiny_spec_file(tmp_path, name="obs-cli") -> Path:
    spec = {
        "name": name,
        "scenario": "pca",
        "parameters": {"mode": ["open_loop", "closed_loop"],
                       "duration_s": 600.0},
        "cohort_size": 2,
        "base_seed": 123,
    }
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec), encoding="utf-8")
    return path


class TestCliOutputModes:
    def test_list_json_mode_is_ndjson(self, capsys):
        assert campaign_main(["list", "--json"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        assert all(line["event"] == "scenario" for line in lines)
        assert {"pca", "xray_vent"} <= {line["name"] for line in lines}

    def test_list_human_mode_unchanged(self, capsys):
        assert campaign_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pca" in out
        assert "parameters:" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out.splitlines()[0])

    def test_quiet_and_json_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            campaign_main(["list", "--quiet", "--json"])

    def test_run_quiet_suppresses_stdout(self, tmp_path, capsys, obs_off):
        spec = tiny_spec_file(tmp_path)
        assert campaign_main(["run", str(spec), "--quiet",
                              "--metrics", ""]) == 0
        captured = capsys.readouterr()
        # --metrics "" means no summary table either: nothing at all.
        assert captured.out == ""

    def test_run_json_emits_progress_and_table_events(self, tmp_path, capsys,
                                                      obs_off):
        spec = tiny_spec_file(tmp_path)
        assert campaign_main(["run", str(spec), "--json"]) == 0
        events = [json.loads(line)
                  for line in capsys.readouterr().out.splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "campaign-start"
        assert kinds.count("progress") == 4
        assert "campaign-done" in kinds
        table = next(e for e in events if e["event"] == "table")
        assert table["columns"][0] == "mode"
        assert len(table["rows"]) == 2

    def test_report_error_is_json_on_stderr(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert campaign_main(["report", str(empty), "--json"]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        record = json.loads(captured.err)
        assert record["event"] == "report-empty"


class TestCliMetricsOut:
    def _restore_obs(self):
        # --metrics-out enables obs process-wide; tests must undo that.
        obsm.disable()
        obsm.registry().reset()
        tracer().reset()

    def _run(self, tmp_path, *extra):
        spec = tiny_spec_file(tmp_path)
        metrics_path = tmp_path / "metrics.ndjson"
        try:
            status = campaign_main(["run", str(spec), "--quiet",
                                    "--metrics-out", str(metrics_path),
                                    *extra])
            assert status == 0
            return read_snapshot(metrics_path)
        finally:
            self._restore_obs()

    @staticmethod
    def by_name(lines):
        return {line["name"]: line for line in lines if "name" in line}

    def test_serial_snapshot_has_all_layers(self, tmp_path):
        lines = self._run(tmp_path)
        names = self.by_name(lines)
        # Kernel, channel, and per-run engine metrics all present.
        assert names["kernel.events_fired"]["value"] > 0
        assert names["channel.delivered"]["value"] > 0
        assert names["campaign.runs"]["value"] == 4
        assert names["campaign.run_wall_s"]["count"] == 4
        assert names["campaign.workers"]["value"] == 1.0
        assert 0.0 < names["campaign.worker_utilisation"]["value"] <= 1.0
        assert any(line.get("type") == "span" for line in lines)

    def test_sharded_snapshot_matches_serial_counts(self, tmp_path):
        serial = self.by_name(self._run(tmp_path / "serial"))
        sharded_lines = self._run(tmp_path / "sharded", "--workers", "2")
        sharded = self.by_name(sharded_lines)
        meta = next(line for line in sharded_lines
                    if line["type"] == "meta")
        assert meta["merged_shards"] >= 2  # parent + worker shard(s)
        # Sim-deterministic totals are identical however the work shards.
        for name in ("kernel.events_fired", "kernel.sim_seconds_total",
                     "channel.delivered", "channel.sent", "bus.published",
                     "bus.forwarded", "campaign.runs",
                     "sampler.flushed_samples"):
            assert sharded[name]["value"] == serial[name]["value"], name
        assert sharded["campaign.workers"]["value"] == 2.0
        # Shard directory is cleaned up after the merge.
        assert not (tmp_path / "sharded" / "metrics.ndjson.shards").exists()


class TestResilienceMetrics:
    """Retry/quarantine/fault counters ride the campaign metrics merge."""

    def _restore_obs(self):
        obsm.disable()
        obsm.registry().reset()
        tracer().reset()

    def _chaos_spec_file(self, tmp_path):
        tmp_path.mkdir(parents=True, exist_ok=True)
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({
            "name": "chaos-metrics", "scenario": "chaos",
            "parameters": {"raise_at": "1", "flaky_at": "2"},
            "repeats": 5, "base_seed": 3,
        }), encoding="utf-8")
        return path

    def _run(self, tmp_path, label, *extra):
        metrics_path = tmp_path / f"{label}.ndjson"
        try:
            assert campaign_main(["run", str(self._chaos_spec_file(tmp_path)),
                                  "--quiet", "--isolate-failures",
                                  "--metrics-out", str(metrics_path),
                                  *extra]) == 0
            return TestCliMetricsOut.by_name(read_snapshot(metrics_path))
        finally:
            self._restore_obs()

    def test_serial_counters_in_snapshot(self, tmp_path):
        names = self._run(tmp_path, "serial")
        assert names["campaign.runs_retried"]["value"] == 1
        assert names["campaign.runs_quarantined"]["value"] == 1
        assert names["campaign.worker_restarts"]["value"] == 0
        # Quarantined runs never produce a result record.
        assert names["campaign.runs"]["value"] == 4

    def test_sharded_merge_matches_serial_and_is_deterministic(self, tmp_path):
        serial = self._run(tmp_path / "serial", "serial")
        first = self._run(tmp_path / "w1", "sharded", "--workers", "2")
        second = self._run(tmp_path / "w2", "sharded", "--workers", "2")
        for name in ("campaign.runs", "campaign.runs_retried",
                     "campaign.runs_quarantined", "campaign.worker_restarts"):
            assert first[name]["value"] == serial[name]["value"], name
            assert first[name]["value"] == second[name]["value"], name

    def test_fault_injection_counter_reaches_snapshot(self, tmp_path):
        spec_path = tmp_path / "outage.json"
        spec_path.write_text(json.dumps({
            "name": "outage", "scenario": "pca",
            "parameters": {"duration_s": 60.0},
            "faults": [{"kind": "channel_outage", "start": 20.0,
                        "duration": [5.0, 10.0],
                        "target": "uplink:pulse-ox-1"}],
            "base_seed": 3,
        }), encoding="utf-8")
        metrics_path = tmp_path / "metrics.ndjson"
        try:
            assert campaign_main(["run", str(spec_path), "--quiet",
                                  "--metrics-out", str(metrics_path)]) == 0
            names = TestCliMetricsOut.by_name(read_snapshot(metrics_path))
            # One channel_outage armed and applied per grid point.
            assert names["campaign.faults_injected"]["value"] == 2
        finally:
            self._restore_obs()
