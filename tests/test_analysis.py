"""Tests for the analysis helpers (metrics, stats, tables)."""

import pytest

from repro.analysis.metrics import (
    AlarmConfusion,
    aggregate_outcomes,
    classify_alarms,
    detection_latency,
    time_weighted_mean,
)
from repro.analysis.stats import bootstrap_ci, paired_difference, summarise
from repro.analysis.tables import Table, format_table


class _FakeResult:
    def __init__(self, harmed=False, failures=0, danger=0.0, drug=5.0, pain=2.0, stops=1):
        self.harmed = harmed
        self.respiratory_failure_events = failures
        self.time_below_spo2_90_s = danger
        self.total_drug_delivered_mg = drug
        self.mean_pain_level = pain
        self.supervisor_stops = stops


class TestSafetyOutcome:
    def test_aggregate_counts(self):
        outcome = aggregate_outcomes([_FakeResult(), _FakeResult(harmed=True, failures=2, danger=100.0)])
        assert outcome.patients == 2
        assert outcome.harmed == 1
        assert outcome.harm_rate == 0.5
        assert outcome.respiratory_failure_events == 2
        assert outcome.mean_time_in_danger_s == 50.0
        assert outcome.mean_drug_mg == 5.0
        assert outcome.mean_pain == 2.0

    def test_empty_aggregate(self):
        outcome = aggregate_outcomes([])
        assert outcome.harm_rate == 0.0
        assert outcome.mean_drug_mg == 0.0


class TestAlarmClassification:
    def test_true_and_false_positives(self):
        confusion = classify_alarms([5.0, 50.0], [(40.0, 60.0)])
        assert confusion.true_positives == 1
        assert confusion.false_positives == 1
        assert confusion.false_negatives == 0
        assert confusion.precision == 0.5
        assert confusion.false_alarm_rate == 0.5

    def test_missed_episode(self):
        confusion = classify_alarms([], [(10.0, 20.0)])
        assert confusion.false_negatives == 1
        assert confusion.sensitivity == 0.0

    def test_detection_lead_credits_early_warning(self):
        confusion = classify_alarms([35.0], [(40.0, 60.0)], detection_lead_s=10.0)
        assert confusion.true_positives == 1

    def test_negative_lead_rejected(self):
        with pytest.raises(ValueError):
            classify_alarms([], [], detection_lead_s=-1.0)

    def test_merged_confusions(self):
        a = AlarmConfusion(true_positives=1, false_positives=2)
        b = AlarmConfusion(true_positives=3, false_negatives=1)
        merged = a.merged_with(b)
        assert merged.true_positives == 4 and merged.false_positives == 2 and merged.false_negatives == 1

    def test_detection_latency(self):
        assert detection_latency(10.0, [5.0, 12.0, 20.0]) == 2.0
        assert detection_latency(30.0, [5.0, 12.0]) is None

    def test_time_weighted_mean(self):
        samples = [(0.0, 1.0), (10.0, 3.0)]
        assert time_weighted_mean(samples, end_time=20.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            time_weighted_mean([])


class TestStats:
    def test_summary(self):
        summary = summarise([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert "mean" in summary.as_dict()

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise([])

    def test_bootstrap_ci_contains_mean(self):
        low, high = bootstrap_ci([10.0] * 20, resamples=200)
        assert low == pytest.approx(10.0) and high == pytest.approx(10.0)

    def test_bootstrap_ci_orders_bounds(self):
        low, high = bootstrap_ci(list(range(50)), resamples=500, seed=1)
        assert low < high

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], resamples=10)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=2.0)

    def test_paired_difference(self):
        result = paired_difference([10.0, 10.0], [5.0, 6.0])
        assert result["mean_difference"] == pytest.approx(-4.5)
        assert result["ratio_of_means"] == pytest.approx(0.55)
        assert result["fraction_improved"] == 1.0

    def test_paired_difference_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_difference([1.0], [1.0, 2.0])


class TestTables:
    def test_add_row_and_render(self):
        table = Table("demo", ["name", "value"])
        table.add_row("a", 1.234567)
        table.add_row("b", True)
        rendered = table.render()
        assert "demo" in rendered
        assert "1.235" in rendered
        assert "yes" in rendered

    def test_wrong_row_width_rejected(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_add_record_and_column(self):
        table = Table("demo", ["x", "y"])
        table.add_record({"x": 1, "y": 2})
        table.add_record({"x": 3})
        assert table.column("x") == [1, 3]
        assert table.column("y") == [2, ""]

    def test_format_table_notes(self):
        rendered = format_table("t", ["a"], [[1]], notes="hello")
        assert "notes: hello" in rendered

    def test_nan_rendering(self):
        rendered = format_table("t", ["a"], [[float("nan")]])
        assert "nan" in rendered
