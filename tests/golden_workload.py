"""Shared deterministic workloads for golden-trace regression tests.

These workloads pin the kernel's determinism contract across rewrites: the
digests they produce were captured on the seed kernel (``tests/data/
golden_traces.json``) and every future kernel must reproduce them exactly —
same ``(time, priority, sequence)`` execution order, same ``pending()`` /
``peek()`` observations, same scenario result bytes.

Only public API is used, so the workloads themselves never need to change
when kernel internals do.
"""

from __future__ import annotations

import hashlib
import json
import random
from pathlib import Path
from typing import Any, Dict

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_traces.json"

#: Small-but-complete campaign specs for all five registered scenarios.
SCENARIO_SPECS: Dict[str, Dict[str, Any]] = {
    "pca": dict(
        name="golden-pca",
        scenario="pca",
        parameters={"mode": ["open_loop", "closed_loop"], "duration_s": 600.0},
        cohort_size=2,
        base_seed=123,
    ),
    "xray_vent": dict(
        name="golden-xray",
        scenario="xray_vent",
        parameters={"mode": ["manual", "state_broadcast"], "image_requests": 3},
        base_seed=5,
    ),
    "bed_map": dict(
        name="golden-bed-map",
        scenario="bed_map",
        parameters={"use_context_awareness": [True, False],
                    "duration_s": 3600.0, "bed_moves": 2},
        base_seed=5,
    ),
    "proton": dict(
        name="golden-proton",
        scenario="proton",
        parameters={"rooms": [2], "fractions_per_room": 2, "duration_s": 1200.0},
        base_seed=5,
    ),
    "home": dict(
        name="golden-home",
        scenario="home",
        parameters={"mode": ["store_and_forward", "real_time"],
                    "duration_s": 7200.0, "sample_period_s": 120.0},
        base_seed=5,
    ),
    # The paper's Section II(c) communication-failure experiment in
    # miniature: a declarative outage sweep on the oximeter uplink.  Pins
    # the fault-injection pipeline end to end (faults block -> fault_plan
    # param -> FaultInjector schedule -> scenario outcome bytes).
    "pca_faulted": dict(
        name="golden-pca-faulted",
        scenario="pca",
        parameters={"mode": "closed_loop", "duration_s": 600.0},
        faults=[{"kind": "channel_outage", "start": 120.0,
                 "duration": [60.0, 180.0], "target": "uplink:pulse-ox-1"}],
        base_seed=123,
    ),
    # The topology-driven hospital ward: pins the whole generated-scenario
    # stack (TopologySpec expansion, fault/attack plan generation, posture
    # policies, the wired ward runtime) as campaign result bytes across two
    # security postures on the default 6-bed topology.
    "ward": dict(
        name="golden-ward",
        scenario="ward",
        parameters={"security_posture": ["open", "allowlisted"],
                    "duration_s": 300.0},
        base_seed=7,
    ),
}


def _digest(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def kernel_workload() -> Dict[str, Any]:
    """A synthetic workload covering every ordering-sensitive kernel path.

    Mixes time collisions, priorities, cancellations (before execution, of
    periodic tasks, and of decoys observed through ``peek``), nested
    scheduling from callbacks, and segmented execution via ``run(until=)``,
    ``step()``, and ``run(max_events=)``.  Each executed event appends
    ``(now, name, pending, peek)`` to a log; the digest of that log *is*
    the determinism contract.
    """
    from repro.sim.kernel import Simulator

    rng = random.Random(20260729)
    sim = Simulator()
    log = []

    def note(name: str) -> None:
        peek = sim.peek()
        log.append((sim.now, name, sim.pending(), peek))

    # Colliding times with mixed priorities; every fourth event is cancelled.
    decoys = []
    for i in range(400):
        time = rng.randrange(0, 50) * 0.25
        priority = rng.choice([-2, -1, 0, 0, 1, 3])
        event = sim.schedule_at(time, (lambda i=i: note(f"grid-{i}")),
                                priority=priority, name=f"grid-{i}")
        if i % 4 == 0:
            decoys.append(event)
    for event in decoys:
        event.cancel()
        event.cancel()  # double-cancel must be a no-op

    # Nested scheduling: callbacks that schedule (and sometimes cancel) more.
    def spawner(depth: int):
        def callback() -> None:
            note(f"spawn-{depth}")
            if depth > 0:
                sim.schedule(0.5, spawner(depth - 1), name=f"spawn-{depth - 1}")
                victim = sim.schedule(0.25, lambda: note("never"), name="victim")
                victim.cancel()
        return callback

    sim.schedule(1.0, spawner(6), name="spawn-6")

    # Periodic tasks, one cancelled mid-run and one self-cancelling.
    tick_task = sim.call_every(0.75, lambda: note("tick"), name="tick")
    limited_ticks = []

    def limited() -> None:
        note("limited")
        limited_ticks.append(sim.now)
        if len(limited_ticks) == 5:
            limited_task.cancel()

    limited_task = sim.call_every(1.25, limited, name="limited")
    sim.schedule(6.0, tick_task.cancel, name="cancel-tick")

    # Segmented execution: until-bound, single steps, max_events, then drain.
    sim.run(until=3.0)
    note("after-until")
    sim.step()
    sim.step()
    note("after-steps")
    sim.run(max_events=sim.event_count + 100)
    note("after-max-events")
    sim.run(until=40.0)
    note("drained")

    return {
        "digest": _digest(log),
        "event_count": sim.event_count,
        "final_now": sim.now,
        "log_length": len(log),
    }


def bus_workload() -> Dict[str, Any]:
    """A multi-subscriber, multi-topic bus workload pinning delivery order.

    Several devices publish on overlapping topics to six endpoints whose id
    strings hash differently under different ``PYTHONHASHSEED`` values, one
    endpoint subscribes to the same topic twice (the dedup path), and
    commands are sent mid-run (which must not produce phantom forwards).
    The digest of the delivery log *is* the messaging determinism contract:
    it must be identical under every hash seed, which CI enforces by running
    the suite under two pinned seeds.
    """
    from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
    from repro.middleware.bus import BusConfig, DeviceBus
    from repro.sim.channel import ChannelConfig
    from repro.sim.kernel import Simulator

    class _GoldenSensor(MedicalDevice):
        def __init__(self, device_id, topics, period):
            super().__init__(DeviceDescriptor(
                device_id=device_id,
                device_type="golden_sensor",
                published_topics=tuple(topics),
                accepted_commands=("ping",),
            ))
            self._topics = topics
            self._period = period
            self.pings = 0
            self.register_command("ping", self._on_ping)

        def _on_ping(self, _parameters):
            self.pings += 1
            return True

        def start(self):
            self.transition(DeviceState.RUNNING)
            self.sample_every(self._period, self._tick)

        def _tick(self):
            for topic in self._topics:
                self.publish(topic, {"value": self.now, "time": self.now})

    sim = Simulator()
    bus = DeviceBus(sim, BusConfig(
        uplink=ChannelConfig(latency_s=0.013),
        downlink=ChannelConfig(latency_s=0.017),
        processing_delay_s=0.003,
    ))
    devices = [
        _GoldenSensor("dev-a", ("vitals", "status"), 0.5),
        _GoldenSensor("dev-b", ("vitals",), 0.7),
        _GoldenSensor("dev-c", ("status",), 1.1),
    ]
    for device in devices:
        bus.attach_device(device)
        sim.register(device)

    log = []
    endpoints = ["alpha", "omega-9", "Z", "aa", "ba", "ab"]
    for endpoint in endpoints:
        for topic in ("vitals", "status"):
            bus.subscribe(
                endpoint, topic,
                lambda t, p, m, e=endpoint: log.append(
                    (round(sim.now, 9), e, t, p["value"], m.sequence)),
            )
    # Same endpoint, same topic, second handler: exercises endpoint dedup.
    bus.subscribe("alpha", "vitals",
                  lambda t, p, m: log.append((round(sim.now, 9), "alpha#2", t,
                                              p["value"], m.sequence)))
    sim.schedule(1.0, lambda: bus.send_command("supervisor", "dev-a", "ping", {"n": 1}))
    sim.schedule(2.0, lambda: bus.send_command("supervisor", "dev-b", "ping"))
    sim.run(until=5.0)

    return {
        "digest": _digest(log),
        "deliveries": len(log),
        "published": bus.published_count,
        "forwarded": bus.forwarded_count,
        "event_count": sim.event_count,
        "pings": [device.pings for device in devices],
    }


def pca_system_probe() -> Dict[str, Any]:
    """One direct closed-loop PCA run: event count + full trace digest."""
    from repro.core.loop import ClosedLoopPCASystem, PCASystemConfig

    config = PCASystemConfig(mode="closed_loop", duration_s=1800.0, seed=424242)
    system = ClosedLoopPCASystem(config)
    result = system.run()
    return {
        "event_count": system.simulator.event_count,
        "trace_digest": _digest(system.trace.to_dict()),
        "record_digest": _digest(result.as_record()),
    }


def campaign_results_digest(scenario_key: str, directory) -> str:
    """Finalized ``results.jsonl`` byte digest for one golden campaign."""
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(**SCENARIO_SPECS[scenario_key])
    run_campaign(spec, workers=1, directory=directory)
    data = (Path(directory) / "results.jsonl").read_bytes()
    return hashlib.sha256(data).hexdigest()


def capture() -> Dict[str, Any]:
    """Compute the full golden payload (used by the capture script)."""
    import tempfile

    golden: Dict[str, Any] = {
        "kernel_workload": kernel_workload(),
        "bus_workload": bus_workload(),
        "pca_system": pca_system_probe(),
        "campaigns": {},
    }
    for key in SCENARIO_SPECS:
        with tempfile.TemporaryDirectory() as tmp:
            golden["campaigns"][key] = campaign_results_digest(key, tmp)
    return golden


def _flatten(payload: Any, prefix: str = "") -> Dict[str, Any]:
    if isinstance(payload, dict):
        flat: Dict[str, Any] = {}
        for key, value in payload.items():
            flat.update(_flatten(value, f"{prefix}.{key}" if prefix else str(key)))
        return flat
    return {prefix: payload}


def verify() -> int:
    """Recompute every golden digest and report drift readably.

    Unlike the suite's bare ``assert workload() == golden``, this names each
    scenario/field that moved (the review artefact for an intentional
    regeneration) and exits 1 on any drift.  Used by the CI golden-drift job
    under both pinned PYTHONHASHSEED values.
    """
    committed = _flatten(json.loads(GOLDEN_PATH.read_text(encoding="utf-8")))
    current = _flatten(capture())
    drifted = sorted(
        {key for key in committed if committed.get(key) != current.get(key)}
        | (set(current) - set(committed))
    )
    for key in sorted(set(committed) | set(current)):
        if key in drifted:
            print(f"DRIFT {key}:")
            print(f"    committed: {committed.get(key, '<missing>')}")
            print(f"    current:   {current.get(key, '<missing>')}")
        else:
            print(f"ok    {key}")
    if drifted:
        print(f"\n{len(drifted)} golden value(s) drifted from {GOLDEN_PATH}.")
        print("If the semantic change is intentional, regenerate with "
              "`PYTHONPATH=src python tests/golden_workload.py` and justify "
              "it in CHANGES.md per the README determinism contract.")
        return 1
    print(f"\nall golden values match {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    import sys

    if "--verify" in sys.argv[1:]:
        raise SystemExit(verify())
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(capture(), indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
