"""Tests for same-tick delivery coalescing in :class:`repro.sim.channel.Channel`.

Messages landing on the same ``(channel, delivery-time)`` share one kernel
event whose per-tick queue drains in FIFO send order.  These tests pin:

* the event-count saving itself (one event per coalesced tick),
* FIFO order within a tick and the new cross-channel grouping semantics,
* ``latencies``/``stats()`` equivalence with the PR 3 one-event-per-message
  behaviour (same floats, same order),
* the jitter (random delivery time) vs zero-jitter paths, and
* hash-seed independence of coalesced delivery order (subprocess check).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.sim.channel import Channel, ChannelConfig
from repro.sim.kernel import Simulator

SRC = Path(__file__).resolve().parents[1] / "src"


def make_channel(sim, name="c", **kwargs):
    rng = kwargs.pop("rng", None)
    retain = kwargs.pop("retain_messages", False)
    return Channel(sim, name, ChannelConfig(**kwargs), rng=rng, retain_messages=retain)


class TestEventCoalescing:
    def test_same_tick_sends_share_one_kernel_event(self):
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.05)
        received = []
        channel.subscribe(lambda m: received.append(m.payload))
        for i in range(5):
            channel.send("a", "t", i)
        # Five same-instant messages, ONE pending kernel event.
        assert sim.pending() == 1
        sim.run()
        assert received == [0, 1, 2, 3, 4]
        assert channel.delivered == 5
        assert sim.event_count == 1

    def test_distinct_ticks_get_their_own_events(self):
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.05)
        channel.subscribe(lambda m: None)
        sim.schedule(0.0, lambda: channel.send("a", "t", 1))
        sim.schedule(0.1, lambda: channel.send("a", "t", 2))
        sim.run()
        # Two trigger events + two distinct delivery events.
        assert sim.event_count == 4
        assert channel.delivered == 2

    def test_cross_channel_same_tick_groups_per_channel(self):
        # Interleaved sends on two channels with equal delivery times now
        # deliver grouped per channel (batch order = first-send order), not
        # interleaved per message.  This is the documented semantic change
        # behind the PR's golden regeneration.
        sim = Simulator()
        a = make_channel(sim, name="a", latency_s=0.05)
        b = make_channel(sim, name="b", latency_s=0.05)
        order = []
        a.subscribe(lambda m: order.append(("a", m.payload)))
        b.subscribe(lambda m: order.append(("b", m.payload)))
        a.send("s", "t", 1)
        b.send("s", "t", 2)
        a.send("s", "t", 3)
        sim.run()
        assert order == [("a", 1), ("a", 3), ("b", 2)]

    def test_handler_send_for_same_instant_gets_fresh_event(self):
        # A zero-latency echo during a batch drain must be delivered via a
        # new kernel event at the same instant, exactly like the old
        # one-event-per-message scheduling did.
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.0)
        log = []

        def echo_once(message):
            log.append(message.payload)
            if message.payload == "ping":
                channel.send("echo", "t", "pong")

        channel.subscribe(echo_once)
        channel.send("a", "t", "ping")
        sim.run()
        assert log == ["ping", "pong"]
        assert sim.event_count == 2
        assert channel._pending == {}

    def test_pending_queue_is_bounded_by_in_flight_messages(self):
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.01)
        channel.subscribe(lambda m: None)
        for tick in range(100):
            sim.schedule(tick * 0.5, lambda: [channel.send("a", "t", i) for i in range(3)])
        sim.run()
        assert channel.delivered == 300
        assert channel._pending == {}  # fully drained, no leak

    def test_delivery_events_share_one_hoisted_callback(self):
        # HOT03 regression: send() must schedule the pre-bound
        # _deliver_batch_cb, never a per-tick closure.  Every queued
        # delivery event carries the identical callable object.
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.05)
        channel.subscribe(lambda m: None)

        def queued_delivery_callbacks():
            return [
                entry[3].callback
                for entry in sim._queue
                if entry[3].name == channel._deliver_name
            ]

        channel.send("a", "t", 1)
        first = queued_delivery_callbacks()
        assert first == [channel._deliver_batch_cb]
        sim.run()
        channel.send("a", "t", 2)
        second = queued_delivery_callbacks()
        assert second == [channel._deliver_batch_cb]
        assert first[0] is second[0]
        sim.run()
        assert channel.delivered == 2

    def test_bandwidth_serialisation_unaffected(self):
        # Bandwidth-limited sends get distinct service slots, so nothing
        # coalesces and the serialisation timing contract is unchanged.
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.0, bandwidth_msgs_per_s=1.0)
        received = []
        channel.subscribe(lambda m: received.append(m.delivered_at))
        for _ in range(3):
            channel.send("a", "t", 0)
        assert sim.pending() == 3
        sim.run()
        assert received == pytest.approx([1.0, 2.0, 3.0])


class TestStatsEquivalence:
    """Coalescing must not move any latency statistic vs PR 3 behaviour."""

    def test_zero_jitter_stats_match_unbatched_reference(self):
        # Reference: the same five messages sent at five distinct ticks
        # (nothing coalesces — the per-message scheduling of PR 3).
        sim_ref = Simulator()
        ref = make_channel(sim_ref, latency_s=0.25, retain_messages=True)
        ref.subscribe(lambda m: None)
        for i in range(5):
            sim_ref.schedule(i * 1.0, lambda: ref.send("a", "t", 0))
        sim_ref.run()

        sim = Simulator()
        coalesced = make_channel(sim, latency_s=0.25, retain_messages=True)
        coalesced.subscribe(lambda m: None)
        for _ in range(5):
            coalesced.send("a", "t", 0)
        sim.run()

        assert coalesced.latencies == ref.latencies == [0.25] * 5
        # Latency statistics are identical; only the coalescing counters
        # (which exist precisely to tell these two schedules apart) differ.
        coalescing_keys = {"coalesced_ticks", "max_batch"}
        strip = lambda stats: {k: v for k, v in stats.items()
                               if k not in coalescing_keys}
        assert strip(coalesced.stats()) == strip(ref.stats())
        assert coalesced.stats()["coalesced_ticks"] == 1.0
        assert coalesced.stats()["max_batch"] == 5.0
        assert ref.stats()["coalesced_ticks"] == 0.0
        assert ref.stats()["max_batch"] == 1.0
        assert coalesced.mean_latency == ref.mean_latency
        assert coalesced.max_latency == ref.max_latency

    def test_jitter_latencies_match_rng_draw_order(self):
        # With jitter, per-message latencies are sampled in send order
        # regardless of how deliveries batch; the retained history must hold
        # exactly the rng's draws, ordered by delivery time (stable for
        # equal times).
        reference_rng = np.random.default_rng(7)
        expected = sorted(
            max(0.0, 0.5 + reference_rng.uniform(-0.2, 0.2)) for _ in range(20)
        )

        sim = Simulator()
        channel = make_channel(sim, latency_s=0.5, jitter_s=0.2,
                               rng=np.random.default_rng(7), retain_messages=True)
        channel.subscribe(lambda m: None)
        for _ in range(20):
            channel.send("a", "t", 0)
        sim.run()
        assert channel.delivered == 20
        # Deliveries happen in delivery-time order, so the retained history
        # is the sorted rng draws.
        assert channel.latencies == pytest.approx(expected)
        assert channel.mean_latency == pytest.approx(sum(expected) / 20)
        assert channel.max_latency == pytest.approx(max(expected))

    def test_jitter_coalesces_only_bit_identical_times(self):
        # Random latencies virtually never collide, so the jitter path keeps
        # one event per message: event count == messages delivered.
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.5, jitter_s=0.2,
                               rng=np.random.default_rng(3))
        channel.subscribe(lambda m: None)
        for _ in range(50):
            channel.send("a", "t", 0)
        assert sim.pending() == 50
        sim.run()
        assert channel.delivered == 50

    def test_loss_and_outage_paths_unchanged(self):
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.1, loss_probability=1.0,
                               rng=np.random.default_rng(0))
        channel.subscribe(lambda m: None)
        for _ in range(10):
            channel.send("a", "t", 0)
        assert sim.pending() == 0  # dropped messages schedule nothing
        sim.run()
        assert channel.dropped == 10
        assert channel.delivered == 0


class TestCoalescingCounters:
    """The streaming coalesced_ticks / max_batch counters and stats() keys."""

    def test_counters_start_at_zero(self):
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.05)
        assert channel.coalesced_ticks == 0
        assert channel.max_batch == 0
        stats = channel.stats()
        assert stats["coalesced_ticks"] == 0.0
        assert stats["max_batch"] == 0.0

    def test_single_message_ticks_never_count_as_coalesced(self):
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.05)
        channel.subscribe(lambda m: None)
        for tick in range(4):
            sim.schedule(tick * 1.0, lambda: channel.send("a", "t", 0))
        sim.run()
        assert channel.delivered == 4
        assert channel.coalesced_ticks == 0
        assert channel.max_batch == 1

    def test_counters_track_ticks_and_largest_batch(self):
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.05)
        channel.subscribe(lambda m: None)
        # Tick 1: batch of 3; tick 2: batch of 2; tick 3: single message.
        for _ in range(3):
            channel.send("a", "t", 0)
        sim.schedule(1.0, lambda: [channel.send("a", "t", 0) for _ in range(2)])
        sim.schedule(2.0, lambda: channel.send("a", "t", 0))
        sim.run()
        assert channel.delivered == 6
        assert channel.coalesced_ticks == 2
        assert channel.max_batch == 3
        stats = channel.stats()
        assert stats["coalesced_ticks"] == 2.0
        assert stats["max_batch"] == 3.0

    def test_max_batch_is_monotone_across_ticks(self):
        sim = Simulator()
        channel = make_channel(sim, latency_s=0.05)
        channel.subscribe(lambda m: None)
        sim.schedule(0.0, lambda: [channel.send("a", "t", 0) for _ in range(4)])
        sim.schedule(1.0, lambda: [channel.send("a", "t", 0) for _ in range(2)])
        sim.run()
        # The later, smaller batch must not shrink the recorded maximum.
        assert channel.max_batch == 4
        assert channel.coalesced_ticks == 2


#: Two devices publish two topics each at coinciding ticks to endpoints whose
#: ids hash differently across seeds — exercising the coalesced uplink AND
#: downlink batch paths end-to-end through the bus.
_COALESCE_SCRIPT = """
import json
from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.middleware.bus import DeviceBus
from repro.sim.kernel import Simulator

class Sensor(MedicalDevice):
    def __init__(self, device_id):
        super().__init__(DeviceDescriptor(
            device_id=device_id, device_type="s",
            published_topics=("vitals", "status")))
    def start(self):
        self.transition(DeviceState.RUNNING)
        self.sample_every(0.5, self._tick)
    def _tick(self):
        self.publish_reading("vitals", self.now)
        self.publish_reading("status", -self.now)

sim = Simulator()
bus = DeviceBus(sim)
for device_id in ("dev-a", "dev-b"):
    device = Sensor(device_id)
    bus.attach_device(device)
    sim.register(device)
order = []
for endpoint in {endpoints!r}:
    for topic in ("vitals", "status"):
        bus.subscribe(endpoint, topic,
                      lambda t, p, m, e=endpoint: order.append([e, t, p["value"]]))
sim.run(until=2.0)
print(json.dumps({{"order": order, "events": sim.event_count}}))
"""

ENDPOINTS = ["alpha", "omega", "Z", "aa", "ab", "ba", "qq-7", "watcher-42"]


class TestCoalescedOrderDeterminism:
    def _run(self, hash_seed: str):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        script = _COALESCE_SCRIPT.format(endpoints=ENDPOINTS)
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, env=env, check=True)
        return json.loads(out.stdout)

    def test_coalesced_delivery_order_identical_across_hash_seeds(self):
        run_1, run_4242 = self._run("1"), self._run("4242")
        assert run_1["order"], "workload delivered nothing"
        assert run_1 == run_4242
