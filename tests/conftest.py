"""Shared fixtures for the repro test suite."""

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.patient.population import DEFAULT_PATIENT, PatientPopulation  # noqa: E402
from repro.sim.kernel import Simulator  # noqa: E402
from repro.sim.trace import TraceRecorder  # noqa: E402


@pytest.fixture
def simulator():
    return Simulator()


@pytest.fixture
def trace():
    return TraceRecorder()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def default_patient_parameters():
    return DEFAULT_PATIENT


@pytest.fixture
def population():
    return PatientPopulation(seed=7)


@pytest.fixture
def sensitive_patient(population):
    return population.sample_one("sensitive-patient", sensitive=True)
