"""Declarative hospital topologies and the machinery they light up.

Four contracts under test:

* **Spec**: a :class:`TopologySpec` is JSON-roundtrippable and rejects
  malformed input at construction, not at expansion time.
* **Expansion determinism**: the manifest depends only on ``(spec, seed)``
  — byte-identical across interpreters under different ``PYTHONHASHSEED``
  values, independent of call position, stable across spec round-trips.
* **Scenario families**: generated fault plans are valid against
  ``FAULT_KINDS`` and target only realised devices; attack plans target
  only realised pumps; postures configure real authenticator exchanges.
* **Regressions**: the four dormant-machinery fixes the topology layer
  exposed (population fraction validation, stale-start fault clamping,
  overlapping hypotension episodes, attack-session gating) stay fixed.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import CampaignError, CampaignSpec, ResultStore, all_shards, run_campaign
from repro.patient.population import PatientPopulation
from repro.scenarios.bed_map import BedMapConfig, BedMapScenario
from repro.security.attacks import Attack, AttackCampaign
from repro.security.auth import DeviceAuthenticator
from repro.sim.faults import FAULT_KINDS, FaultInjector, FaultSpec
from repro.sim.kernel import Simulator
from repro.topology import (
    DEVICE_TYPES,
    TopologyError,
    TopologySpec,
    WardSpec,
    build_hospital,
    cohort_counts,
    expand_topology,
    generate_attack_plan,
    generate_fault_plan,
    manifest_device_ids,
    manifest_json,
    security_for_posture,
    standard_hospital,
)

SRC = Path(__file__).resolve().parents[1] / "src"


def small_spec(name="topo-test", wards=2, beds_per_ward=4, **kwargs):
    return standard_hospital(name, wards=wards, beds_per_ward=beds_per_ward,
                             **kwargs)


FAULTY = {"channel_outage_rate": 3.0, "stuck_sensor_rate": 2.0,
          "misprogramming_rate": 1.0}


# ------------------------------------------------------------------- spec
class TestTopologySpec:
    def test_json_round_trip_is_exact(self):
        spec = small_spec(
            device_mix={"pca_pump": 0.5},
            cohort={"sensitive_fraction": 0.2, "athlete_fraction": 0.1},
            staffing={"beds_per_caregiver": 3, "shift": "night"},
            faults=FAULTY,
        )
        assert TopologySpec.from_json(spec.to_json()) == spec
        assert TopologySpec.from_dict(spec.as_dict()) == spec
        # The dict form is itself JSON-stable (campaign params travel as JSON).
        assert json.loads(json.dumps(spec.as_dict())) == spec.as_dict()

    def test_from_file(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "topo.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        assert TopologySpec.from_file(path) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(TopologyError, match="unknown topology spec fields"):
            TopologySpec.from_dict({"name": "x", "wards": [], "extra": 1})
        with pytest.raises(TopologyError, match="unknown ward spec fields"):
            TopologySpec.from_dict(
                {"name": "x", "wards": [{"name": "w", "beds": 1, "bogus": 2}]})

    def test_validation_is_eager(self):
        with pytest.raises(TopologyError, match="at least one ward"):
            TopologySpec(name="empty", wards=())
        with pytest.raises(TopologyError, match="duplicate ward name"):
            TopologySpec(name="dup", wards=(WardSpec(name="icu", beds=1),
                                            WardSpec(name="icu", beds=1)))
        with pytest.raises(TopologyError, match="must not exceed 1"):
            small_spec(cohort={"sensitive_fraction": 0.7,
                               "athlete_fraction": 0.5})
        with pytest.raises(TopologyError):
            small_spec(device_mix={"pca_pump": 1.5})
        with pytest.raises(TopologyError):
            small_spec(staffing={"shift": "graveyard"})

    def test_staffing_derivation(self):
        spec = small_spec(wards=1, beds_per_ward=9,
                          staffing={"beds_per_caregiver": 4})
        assert spec.wards[0].staffing.caregiver_count(9) == 3  # ceil(9/4)
        explicit = small_spec(wards=1, beds_per_ward=9,
                              staffing={"caregivers": 2})
        assert explicit.wards[0].staffing.caregiver_count(9) == 2
        assert spec.total_beds == 9
        assert spec.total_caregivers() == 3


# ------------------------------------------------------- expansion determinism
class TestExpansionDeterminism:
    def test_same_spec_and_seed_same_manifest(self):
        spec = small_spec()
        assert manifest_json(spec, 42) == manifest_json(spec, 42)
        assert manifest_json(spec, 42) != manifest_json(spec, 43)

    def test_expansion_is_position_independent(self):
        # Consuming unrelated randomness between expansions must not change
        # the manifest: every stream is derived by name, never by call order.
        spec = small_spec()
        first = manifest_json(spec, 7)
        np.random.default_rng(0).uniform(size=1000)
        expand_topology(small_spec("decoy"), 7)
        assert manifest_json(spec, 7) == first

    def test_round_tripped_spec_expands_identically(self):
        spec = small_spec(faults=FAULTY)
        clone = TopologySpec.from_json(spec.to_json())
        assert manifest_json(clone, 11) == manifest_json(spec, 11)

    def test_manifest_byte_identical_across_hash_seeds(self, tmp_path):
        # The acceptance gate: expansion in separate interpreters under
        # PYTHONHASHSEED=0 and 4242 must produce byte-identical manifests.
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(small_spec(faults=FAULTY).to_json(),
                             encoding="utf-8")
        script = (
            "import sys\n"
            "from repro.topology import TopologySpec, manifest_json\n"
            f"spec = TopologySpec.from_file({str(spec_path)!r})\n"
            "sys.stdout.write(manifest_json(spec, 1234))\n"
        )
        manifests = []
        for hash_seed in ("0", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
            out = subprocess.run([sys.executable, "-c", script],
                                 capture_output=True, text=True, env=env,
                                 check=True)
            manifests.append(out.stdout)
        assert manifests[0] == manifests[1]

    def test_manifest_shape_is_consistent(self):
        spec = small_spec(wards=3, beds_per_ward=5)
        manifest = expand_topology(spec, 9)
        assert manifest["total_beds"] == 15
        assert [ward["name"] for ward in manifest["wards"]] == [
            "ward-00", "ward-01", "ward-02"]
        for ward in manifest["wards"]:
            assert sum(ward["cohort_counts"].values()) == len(ward["beds"])
            for bed in ward["beds"]:
                assert len(bed["devices"]) == len(bed["device_ids"])
                assert set(bed["devices"]) <= set(DEVICE_TYPES)
                assert bed["channels"] == [
                    f"uplink:{device_id}" for device_id in bed["device_ids"]]
                assert bed["patient"]["patient_id"] == bed["bed_id"]
        totals = cohort_counts(manifest)
        assert sum(totals.values()) == 15


# --------------------------------------------------------- scenario families
class TestGenerators:
    def test_fault_plan_entries_valid_against_fault_kinds(self):
        spec = small_spec(faults=FAULTY)
        plan = generate_fault_plan(spec, 3, 7200.0)
        assert plan, "rates x duration should realise at least one fault"
        manifest = expand_topology(spec, 3)
        devices = {device_id for ward in manifest["wards"]
                   for bed in ward["beds"] for device_id in bed["device_ids"]}
        for entry in plan:
            compiled = FaultSpec.from_dict(entry)  # must not raise
            assert compiled.kind in FAULT_KINDS
            assert 0.0 <= compiled.start <= 7200.0
            if compiled.kind == "channel_outage":
                assert compiled.target.startswith("uplink:")
                assert compiled.target[len("uplink:"):] in devices
            else:
                assert compiled.target in devices
            if compiled.kind == "misprogramming":
                assert compiled.parameters["rate_multiplier"] > 1.0

    def test_fault_plan_deterministic_and_sorted(self):
        spec = small_spec(faults=FAULTY)
        first = generate_fault_plan(spec, 5, 3600.0)
        assert first == generate_fault_plan(spec, 5, 3600.0)
        starts = [entry["start"] for entry in first]
        assert starts == sorted(starts)

    def test_fault_plan_rejects_non_positive_duration(self):
        with pytest.raises(TopologyError, match="duration_s"):
            generate_fault_plan(small_spec(), 0, 0.0)

    def test_attack_plan_targets_realised_pumps_only(self):
        spec = small_spec(device_mix={"pca_pump": 1.0})
        manifest = expand_topology(spec, 2)
        pumps = set(manifest_device_ids(manifest, "pca_pump"))
        attacks = generate_attack_plan(spec, 2, manifest=manifest)
        assert attacks and all(attack.target_device in pumps
                               for attack in attacks)
        assert attacks == generate_attack_plan(spec, 2, manifest=manifest)

    def test_attack_plan_empty_without_pumps(self):
        spec = small_spec(device_mix={"pca_pump": 0.0})
        assert generate_attack_plan(spec, 2) == []

    def test_postures(self):
        for posture in ("open", "allowlisted", "data_only"):
            authenticator, policy, stolen = security_for_posture(
                posture, 1, pump_ids=("pump-1",),
                insider_principals=("insider-0",))
            assert set(stolen) == {"insider-0"}
            if posture == "open":
                assert not policy.require_authentication
                assert policy.authorise("anyone", "pump-1", "stop")[0]
            else:
                assert policy.require_authentication
                # The legitimate supervisor went through a real exchange.
                assert authenticator.is_authenticated("safety")
            if posture == "allowlisted":
                assert policy.authorise("safety", "pump-1", "stop")[0]
                assert not policy.authorise("safety", "pump-1",
                                            "set_prescription")[0]
            if posture == "data_only":
                assert not policy.authorise("safety", "pump-1", "stop")[0]
        with pytest.raises(TopologyError, match="unknown security posture"):
            security_for_posture("fort_knox", 1)


# --------------------------------------------------------------- end to end
class TestHospitalEndToEnd:
    def test_hundred_bed_hospital_runs_as_registered_campaign(self, tmp_path):
        # The acceptance scenario: a >=100-bed multi-ward topology with a
        # faults block and cohort fractions, swept through the registered
        # 'ward' campaign scenario, sharded 2-way, merged byte-identically.
        topology = standard_hospital(
            "acceptance-hospital",
            wards=3,
            beds_per_ward=36,
            device_mix={"pulse_oximeter": 1.0, "capnograph": 0.4,
                        "bp_monitor": 0.4, "bed": 1.0, "pca_pump": 0.4},
            cohort={"sensitive_fraction": 0.25, "athlete_fraction": 0.15},
            staffing={"beds_per_caregiver": 6, "shift": "night"},
            faults={"channel_outage_rate": 1.0, "stuck_sensor_rate": 0.5,
                    "misprogramming_rate": 0.5},
        )
        assert topology.total_beds >= 100
        spec = CampaignSpec(
            name="acceptance-ward",
            scenario="ward",
            parameters={"topology": topology.as_dict(),
                        "security_posture": ["open", "allowlisted"],
                        "duration_s": 120.0},
            base_seed=11,
        )
        serial = tmp_path / "serial"
        report = run_campaign(spec, workers=1, directory=serial)
        assert report.total == 2
        for record in report.records:
            result = record["result"]
            assert result["beds"] == 108
            assert result["wards"] == 3
            assert (result["patients_typical"]
                    + result["patients_opioid_sensitive"]
                    + result["patients_athlete"]) == 108
            assert result["faults_injected"] > 0
            assert result["attacks_total"] > 0
            assert result["messages_forwarded"] > 0
        by_posture = {record["params"]["security_posture"]: record["result"]
                      for record in report.records}
        # The flexibility-vs-security tradeoff must be visible: open lets
        # every attack through, allowlisted authentication blocks outsiders.
        assert by_posture["open"]["attacks_succeeded"] == \
            by_posture["open"]["attacks_total"]
        assert by_posture["allowlisted"]["attacks_blocked_authentication"] > 0

        # Shard 2-way and merge: byte-identical to the serial store.
        segments = []
        for shard in all_shards(2):
            segment = tmp_path / f"seg-{shard.index}"
            run_campaign(spec, workers=1, directory=segment, shard=shard)
            segments.append(segment)
        ResultStore(tmp_path / "merged").merge(segments)
        assert (tmp_path / "merged" / "results.jsonl").read_bytes() == \
            (serial / "results.jsonl").read_bytes()

    def test_build_hospital_wires_faults_and_safety(self):
        topology = small_spec(
            wards=1, beds_per_ward=8,
            device_mix={"pulse_oximeter": 1.0, "pca_pump": 1.0},
            faults=FAULTY)
        runtime = build_hospital(topology, 21)
        plan = generate_fault_plan(topology, 21, 600.0,
                                   manifest=runtime.manifest)
        runtime.injector.extend([FaultSpec.from_dict(entry) for entry in plan])
        runtime.injector.arm()
        runtime.simulator.run(until=600.0)
        assert len(runtime.injector.injected) == len(plan)
        assert runtime.bus_stats()["published"] > 0
        assert len(runtime.beds()) == 8

    def test_campaign_spec_validator_rejects_bad_topology(self):
        spec = CampaignSpec(
            name="bad", scenario="ward",
            parameters={"topology": {"name": "x", "wards": []},
                        "duration_s": 60.0})
        with pytest.raises(CampaignError, match="invalid ward topology"):
            run_campaign(spec)

    def test_campaign_spec_validator_rejects_bad_posture(self):
        spec = CampaignSpec(
            name="bad", scenario="ward",
            parameters={"security_posture": "fort_knox", "duration_s": 60.0})
        with pytest.raises(CampaignError, match="security posture"):
            run_campaign(spec)

    def test_cohort_focus_patient_is_paired(self):
        # Cohort sweeps place the same focus patient regardless of the
        # swept axis: patient i is one person across configurations.
        records = {}
        for posture in ("open", "data_only"):
            spec = CampaignSpec(
                name=f"cohort-{posture}", scenario="ward",
                parameters={"duration_s": 60.0, "security_posture": posture,
                            "generate_faults": False},
                cohort_size=2, base_seed=99)
            report = run_campaign(spec)
            records[posture] = report.records
        for first, second in zip(records["open"], records["data_only"]):
            assert first["params"]["patient_index"] == \
                second["params"]["patient_index"]
            assert first["result"]["focus_cohort"] == \
                second["result"]["focus_cohort"]

    def test_topology_cli_round_trip(self, tmp_path):
        from repro.campaign.cli import main as campaign_main

        spec = small_spec()
        spec_path = tmp_path / "topo.json"
        spec_path.write_text(spec.to_json(), encoding="utf-8")
        out_path = tmp_path / "manifest.json"
        assert campaign_main(["topology", str(spec_path), "--seed", "5",
                              "--out", str(out_path), "--quiet"]) == 0
        assert out_path.read_text(encoding="utf-8") == \
            manifest_json(spec, 5) + "\n"
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "wards": [], "bogus": 1}',
                       encoding="utf-8")
        assert campaign_main(["topology", str(bad), "--quiet"]) == 2


# ------------------------------------------------------------- regressions
class TestDormantMachineryRegressions:
    """The four bugs the topology layer lit up, pinned failing-before."""

    def test_population_rejects_fraction_sum_over_one(self):
        # Before: fractions summing past 1 silently truncated the athlete
        # band (a uniform roll can never exceed 1), skewing stratification.
        population = PatientPopulation(rng=np.random.default_rng(1))
        with pytest.raises(ValueError, match="must not exceed 1"):
            population.sample(10, sensitive_fraction=0.7, athlete_fraction=0.5)
        # The boundary is inclusive: exactly 1.0 partitions cleanly.
        cohort = population.sample(10, sensitive_fraction=0.6,
                                   athlete_fraction=0.4)
        assert len(cohort) == 10

    def test_fault_added_after_arm_clamps_stale_start(self):
        # Before: add()-after-arm() with a start already in the past handed
        # the kernel a stale timestamp, which it rejects — generated plans
        # are laid out against t=0, not against when the injector learns of
        # them.  The clamp fires the fault at `now` with end unchanged.
        simulator = Simulator()
        injector = FaultInjector(simulator)
        fired = []
        injector.register_custom("late", lambda spec: fired.append(
            (simulator.now, spec.start)))
        injector.arm()
        simulator.schedule_at(10.0, lambda: None, name="advance")
        simulator.run(until=10.0)
        injector.add(FaultSpec(kind="custom", start=5.0, target="late"))
        simulator.run(until=20.0)
        assert fired == [(10.0, 5.0)]

    def test_overlapping_hypotension_episodes_keep_ground_truth(self):
        # Before: the first episode's end callback reset the MAP target to
        # baseline while the second (overlapping) episode was still running,
        # silently weakening the injected ground truth.  Episodes at 3600s/2
        # overlap: [1860, 2760) and [2460, 3360).
        config = BedMapConfig(duration_s=3600.0, bed_moves=0,
                              true_hypotension_episodes=2,
                              hypotension_duration_s=900.0, seed=3)
        scenario = BedMapScenario(config)
        intervals = scenario._episode_intervals
        assert intervals[0][1] > intervals[1][0], "episodes must overlap"
        # Just past the first episode's end the second is still active: the
        # target must still be the hypotensive value, not baseline.
        scenario.simulator.run(until=intervals[0][1] + 1.0)
        assert scenario.patient.map_model._target_map == \
            config.hypotension_map_mmhg
        # Once the last episode ends, the target is restored.
        scenario.simulator.run(until=intervals[1][1] + 1.0)
        assert scenario.patient.map_model._target_map == \
            scenario.patient.map_model.parameters.baseline_map_mmhg

    def test_attacks_only_mark_sessions_under_authenticating_postures(self):
        # Before: _execute marked every would-be attacker authenticated on
        # the policy even when the posture never authenticates — polluting
        # the session set for the rest of the campaign (and any posture
        # flipped to require_authentication mid-experiment).
        _, policy, _ = security_for_posture("open", 1)
        campaign = AttackCampaign(DeviceAuthenticator(), policy)
        results = campaign.run([Attack(kind="reprogram", attacker="mallory",
                                       target_device="pump-1",
                                       command="set_prescription")])
        assert results[0].succeeded  # open posture: attack goes through...
        assert "mallory" not in policy.authenticated_principals  # ...unmarked
        # Flipping the same policy to authenticate now blocks mallory cold.
        policy.require_authentication = True
        assert not policy.authorise("mallory", "pump-1",
                                    "set_prescription")[0]
