"""Rule registry: every shipped rule, in a stable reporting order."""

from __future__ import annotations

from typing import Dict, List

from repro.lint.rules.base import (
    ClassInfo,
    ProjectContext,
    Rule,
    SuppressionReasonRule,
    build_class_index,
)
from repro.lint.rules.det import (
    IdentityOrderingRule,
    SetIterationRule,
    UnseededRandomnessRule,
    WallClockRule,
)
from repro.lint.rules.hot import (
    HotClosureRule,
    HotDictLiteralRule,
    UnslottedHotClassRule,
)
from repro.lint.rules.layer import (
    ConsumerLayeringRule,
    ObsLeafRule,
    SimPurityRule,
)

__all__ = [
    "ClassInfo",
    "ProjectContext",
    "Rule",
    "build_class_index",
    "all_rules",
    "rule_catalog",
]


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in catalog order."""
    return [
        SetIterationRule(),
        UnseededRandomnessRule(),
        WallClockRule(),
        IdentityOrderingRule(),
        UnslottedHotClassRule(),
        HotDictLiteralRule(),
        HotClosureRule(),
        SimPurityRule(),
        ObsLeafRule(),
        ConsumerLayeringRule(),
        SuppressionReasonRule(),
    ]


def rule_catalog() -> Dict[str, str]:
    """``rule id -> one-line summary`` for ``--list-rules`` and docs.

    GOLD01 is listed for discoverability but is not an AST rule: it is a
    *diff* property checked by ``python -m repro.lint.gold`` against a git
    revision range (see :mod:`repro.lint.gold`).
    """
    from repro.lint import gold

    catalog = {rule.id: rule.summary for rule in all_rules()}
    catalog[gold.RULE_ID] = gold.RULE_SUMMARY
    return catalog
