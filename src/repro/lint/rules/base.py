"""Rule protocol, project context, and the class index shared by rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.graph import ImportGraph
from repro.lint.source import SourceFile
from repro.lint.violations import Violation

#: Base-class names that mark a class as outside the hot-path slots contract:
#: exceptions are raised, not shipped per-event, and these stdlib shapes
#: manage their own storage.
_EXEMPT_BASES = {
    "Exception",
    "BaseException",
    "ABC",
    "Enum",
    "IntEnum",
    "Flag",
    "IntFlag",
    "NamedTuple",
    "Protocol",
    "TypedDict",
}


@dataclass(frozen=True)
class ClassInfo:
    """What HOT01 needs to know about one class definition."""

    module: str
    name: str
    lineno: int
    slotted: bool
    exempt: bool


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] style bases
        return _base_name(node.value)
    return ""


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    for decorator in cls.decorator_list:
        if isinstance(decorator, ast.Call):
            name = _base_name(decorator.func)
            if name == "dataclass":
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
    return False


def _is_exempt(cls: ast.ClassDef) -> bool:
    names = [cls.name] + [_base_name(base) for base in cls.bases]
    for name in names:
        if not name:
            continue
        if name in _EXEMPT_BASES:
            return True
        if name.endswith(("Error", "Exception", "Warning")):
            return True
    return False


def build_class_index(sources: List[SourceFile]) -> Dict[Tuple[str, str], ClassInfo]:
    """``(module, class name) -> ClassInfo`` over the analyzed file set."""
    index: Dict[Tuple[str, str], ClassInfo] = {}
    for src in sources:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                index[(src.module, node.name)] = ClassInfo(
                    module=src.module,
                    name=node.name,
                    lineno=node.lineno,
                    slotted=_declares_slots(node),
                    exempt=_is_exempt(node),
                )
    return index


@dataclass
class ProjectContext:
    """Everything rules may consult beyond the single file under check."""

    config: LintConfig
    sources: List[SourceFile]
    graph: ImportGraph
    classes: Dict[Tuple[str, str], ClassInfo] = field(default_factory=dict)

    def resolve_class(self, src: SourceFile, func: ast.expr) -> Optional[ClassInfo]:
        """Resolve a call target to a class in the analyzed set, if possible."""
        if isinstance(func, ast.Name):
            info = self.classes.get((src.module, func.id))
            if info is not None:
                return info
            imported = src.from_imports.get(func.id)
            if imported is not None:
                module, original = imported
                return self.classes.get((module, original))
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = src.module_aliases.get(func.value.id)
            if module is not None:
                return self.classes.get((module, func.attr))
        return None


class Rule:
    """A named check.  Subclasses override one of the two hooks."""

    id: str = ""
    summary: str = ""

    def check_file(
        self, src: SourceFile, ctx: ProjectContext
    ) -> Iterator[Violation]:
        return iter(())

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        return iter(())

    def violation(
        self,
        src: SourceFile,
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> Violation:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            rule=self.id,
            path=src.rel,
            line=lineno,
            col=col,
            message=message,
            symbol=symbol,
            source_line=src.line_text(lineno),
        )


class SuppressionReasonRule(Rule):
    """LINT01: every inline suppression must say why."""

    id = "LINT01"
    summary = "# repro-lint: disable=... comments must carry a '-- reason'"

    def check_file(
        self, src: SourceFile, ctx: ProjectContext
    ) -> Iterator[Violation]:
        for suppression in src.suppressions:
            if not suppression.has_reason:
                yield Violation(
                    rule=self.id,
                    path=src.rel,
                    line=suppression.line,
                    col=0,
                    message=(
                        "suppression of "
                        + ",".join(suppression.rules)
                        + " has no reason; write "
                        "'# repro-lint: disable=RULE -- why this is safe'"
                    ),
                    source_line=src.line_text(suppression.line),
                )
