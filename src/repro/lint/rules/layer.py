"""LAYER: import-graph purity rules.

Three architectural facts keep the reproducibility argument compositional:
the simulation core cannot know about the campaigns that drive it, the
observability layer can never feed back into simulation behavior, and the
certification/analysis layers consume results without touching the live
engine.  All three are checked on the import graph — transitively where the
contract is transitive — so a violation is caught at the import site, not
three PRs later in a golden-digest diff.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.graph import prefix_match
from repro.lint.rules.base import ProjectContext, Rule
from repro.lint.source import SourceFile
from repro.lint.violations import Violation


def _import_violation(
    rule: Rule,
    src: SourceFile,
    lineno: int,
    message: str,
) -> Violation:
    return Violation(
        rule=rule.id,
        path=src.rel,
        line=lineno,
        col=0,
        message=message,
        symbol=src.module,
        source_line=src.line_text(lineno),
    )


def _edge_line(src: SourceFile, target: str) -> int:
    """Best line number for the import of ``target`` (or its parent)."""
    node = target
    while node:
        lineno = src.import_edges.get(node)
        if lineno is not None:
            return lineno
        node = node.rsplit(".", 1)[0] if "." in node else ""
    return 1


class SimPurityRule(Rule):
    """LAYER01: the simulation core must not import its drivers."""

    id = "LAYER01"
    summary = (
        "repro.sim may not import (even transitively) the campaign or "
        "scenario layers that drive it"
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        forbidden = ctx.config.layer_sim_forbidden
        for module in ctx.graph.modules:
            if prefix_match(module, ctx.config.layer_sim) is None:
                continue
            path = ctx.graph.find_path_to(module, forbidden)
            if path is None:
                continue
            src = ctx.graph.source(module)
            chain = " -> ".join(path)
            yield _import_violation(
                self,
                src,
                _edge_line(src, path[1]),
                f"simulation core reaches a driver layer: {chain}; invert "
                "the dependency or move the shared code below repro.sim",
            )


class ObsLeafRule(Rule):
    """LAYER02: observability is an import leaf of the project."""

    id = "LAYER02"
    summary = (
        "repro.obs may not import any project module outside repro.obs — "
        "observation must never feed back into simulation"
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        analyzed = set(ctx.graph.modules)
        for module in ctx.graph.modules:
            leaf = prefix_match(module, ctx.config.layer_leaf)
            if leaf is None:
                continue
            top = leaf.split(".")[0]
            src = ctx.graph.source(module)
            reported_lines = set()
            for target, lineno in sorted(src.import_edges.items()):
                if prefix_match(target, ctx.config.layer_leaf) is not None:
                    continue
                in_project = target in analyzed or target.split(".")[0] == top
                if in_project and lineno not in reported_lines:
                    reported_lines.add(lineno)
                    yield _import_violation(
                        self,
                        src,
                        lineno,
                        f"observability module imports {target}; repro.obs "
                        "must stay an import leaf so metrics can never "
                        "alter simulation behavior",
                    )


class ConsumerLayeringRule(Rule):
    """LAYER03: certification/analysis are read-only result consumers."""

    id = "LAYER03"
    summary = (
        "the behavior-producing core may not import certification/analysis, "
        "and those layers may not import the live engine back"
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        consumers = ctx.config.layer_consumers
        core = ctx.config.layer_core
        for module in ctx.graph.modules:
            src = ctx.graph.source(module)
            if prefix_match(module, core) is not None:
                path = ctx.graph.find_path_to(module, consumers)
                if path is not None:
                    chain = " -> ".join(path)
                    yield _import_violation(
                        self,
                        src,
                        _edge_line(src, path[1]),
                        f"behavior-producing core depends on a read-only "
                        f"consumer layer: {chain}; simulation output must "
                        "not be shaped by its own analysis",
                    )
            elif prefix_match(module, consumers) is not None:
                path = ctx.graph.find_path_to(module, core)
                if path is not None:
                    chain = " -> ".join(path)
                    yield _import_violation(
                        self,
                        src,
                        _edge_line(src, path[1]),
                        f"read-only consumer imports the live engine: "
                        f"{chain}; consume result files and traces, not "
                        "the running simulation",
                    )
