"""DET: determinism rules.

The golden-digest contract makes simulation output a pure function of seeds
and inputs.  Every rule here targets a construct that has already produced —
or can produce — output that varies run-to-run: hash-seed-dependent set
iteration feeding ordered sinks, randomness outside the named-stream
discipline of :mod:`repro.sim.random`, wall-clock reads inside simulation
logic, and CPython object identity leaking into orderings.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.graph import prefix_match
from repro.lint.rules.base import ProjectContext, Rule
from repro.lint.source import SourceFile
from repro.lint.violations import Violation

# --------------------------------------------------------------------- helpers


def _dotted_chain(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]`` when the chain roots at a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _resolve_dotted(src: SourceFile, node: ast.expr) -> Optional[str]:
    """Resolve an attribute chain to its fully-qualified dotted name.

    ``np.random.normal`` resolves through ``import numpy as np`` to
    ``numpy.random.normal``; ``datetime.now`` through ``from datetime import
    datetime`` to ``datetime.datetime.now``.
    """
    chain = _dotted_chain(node)
    if not chain:
        return None
    root = chain[0]
    module = src.module_aliases.get(root)
    if module is not None:
        return ".".join([module] + chain[1:])
    imported = src.from_imports.get(root)
    if imported is not None:
        base, original = imported
        return ".".join([base, original] + chain[1:])
    return ".".join(chain)


def _enclosing_symbols(tree: ast.Module) -> Dict[int, str]:
    """Map each statement line to its enclosing def/class qualname."""
    symbols: Dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = f"{prefix}.{child.name}" if prefix else child.name
                end = child.end_lineno or child.lineno
                for line in range(child.lineno, end + 1):
                    symbols[line] = name
                visit(child, name)
            else:
                visit(child, prefix)

    visit(tree, "")
    return symbols


def _in_scope(src: SourceFile, prefixes: Tuple[str, ...]) -> bool:
    return prefix_match(src.module, prefixes) is not None


# ------------------------------------------------------------- DET01: set iter


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_set_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        stripped = node.value.split("[")[0].strip()
        return stripped in ("set", "frozenset", "Set", "FrozenSet")
    return False


class SetIterationRule(Rule):
    """DET01: iterating a set hands hash order to an ordered sink."""

    id = "DET01"
    summary = (
        "no iteration over set/frozenset values inside ordering-sensitive "
        "packages; sort first or use an insertion-ordered dict"
    )

    def check_file(
        self, src: SourceFile, ctx: ProjectContext
    ) -> Iterator[Violation]:
        if not _in_scope(src, ctx.config.det_scope):
            return
        symbols = _enclosing_symbols(src.tree)
        set_locals = self._set_typed_names(src.tree)
        set_attrs = self._set_typed_attributes(src.tree)
        for node in ast.walk(src.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                described = self._describe_set(candidate, set_locals, set_attrs)
                if described is not None:
                    yield self.violation(
                        src,
                        candidate,
                        f"iteration over {described} — ordering follows "
                        "PYTHONHASHSEED; wrap in sorted() or keep an "
                        "insertion-ordered dict",
                        symbol=symbols.get(candidate.lineno, ""),
                    )

    @staticmethod
    def _set_typed_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation):
                    names.add(node.target.id)
        return names

    @staticmethod
    def _set_typed_attributes(tree: ast.Module) -> Set[str]:
        """Attributes assigned set values anywhere (``self.x = set()``)."""
        attrs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Attribute
            ):
                if _is_set_annotation(node.annotation):
                    attrs.add(node.target.attr)
        return attrs

    @staticmethod
    def _describe_set(
        node: ast.expr, set_locals: Set[str], set_attrs: Set[str]
    ) -> Optional[str]:
        if _is_set_expr(node):
            return "a set expression"
        if isinstance(node, ast.Name) and node.id in set_locals:
            return f"set-typed name {node.id!r}"
        if isinstance(node, ast.Attribute) and node.attr in set_attrs:
            return f"set-typed attribute {node.attr!r}"
        return None


# -------------------------------------------------------- DET02: unseeded rand

#: ``random`` module attributes that are fine to touch: explicit generator
#: construction (callers must pass a seed — zero-arg construction is flagged)
#: and state plumbing.
_RANDOM_OK = {"Random", "SystemRandom", "seed", "getstate", "setstate"}

#: ``numpy.random`` attributes that construct seedable generators.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: numpy.random constructors that are unseeded when called with no arguments.
_NEEDS_SEED_ARG = {"default_rng", "RandomState", "Random", "SeedSequence"}


class UnseededRandomnessRule(Rule):
    """DET02: all randomness must flow through seeded, named streams."""

    id = "DET02"
    summary = (
        "no module-level random.*, bare numpy.random.*, uuid.uuid4 or "
        "os.urandom; derive seeded streams via repro.sim.random"
    )

    def check_file(
        self, src: SourceFile, ctx: ProjectContext
    ) -> Iterator[Violation]:
        symbols = _enclosing_symbols(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve_dotted(src, node.func)
            if dotted is None:
                continue
            message = self._classify(dotted, node)
            if message is not None:
                yield self.violation(
                    src, node, message, symbol=symbols.get(node.lineno, "")
                )

    @staticmethod
    def _classify(dotted: str, call: ast.Call) -> Optional[str]:
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            attr = parts[1]
            if attr not in _RANDOM_OK:
                return (
                    f"call to module-level random.{attr} draws from the "
                    "shared unseeded generator; use a seeded stream"
                )
            if attr in _NEEDS_SEED_ARG and not call.args and not call.keywords:
                return f"random.{attr}() constructed without a seed"
            return None
        if parts[:2] == ["numpy", "random"] and len(parts) == 3:
            attr = parts[2]
            if attr not in _NP_RANDOM_OK:
                return (
                    f"call to bare numpy.random.{attr} uses numpy's global "
                    "state; use a seeded Generator"
                )
            if attr in _NEEDS_SEED_ARG and not call.args and not call.keywords:
                return f"numpy.random.{attr}() constructed without a seed"
            return None
        if dotted in ("uuid.uuid4", "uuid.uuid1"):
            return f"{dotted} is nondeterministic; derive ids from run seeds"
        if dotted == "os.urandom":
            return "os.urandom is nondeterministic; derive bytes from run seeds"
        return None


# ---------------------------------------------------------- DET03: wall clock

_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


class WallClockRule(Rule):
    """DET03: simulation logic must use simulated time, not the wall clock."""

    id = "DET03"
    summary = (
        "no time.time()/datetime.now() outside the configured allowlist "
        "(observability and watchdog modules)"
    )

    def check_file(
        self, src: SourceFile, ctx: ProjectContext
    ) -> Iterator[Violation]:
        if prefix_match(src.module, ctx.config.wallclock_allowlist) is not None:
            return
        symbols = _enclosing_symbols(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve_dotted(src, node.func)
            if dotted is None:
                continue
            pretty = _WALL_CLOCK.get(dotted)
            if pretty is not None:
                yield self.violation(
                    src,
                    node,
                    f"wall-clock read {pretty} in simulation code; use "
                    "simulator.now (or add the module to the allowlist if "
                    "it genuinely measures real time)",
                    symbol=symbols.get(node.lineno, ""),
                )


# ------------------------------------------------------- DET04: identity order

_SORT_FUNCS = {"sorted", "min", "max"}
_HEAP_FUNCS = {"heappush", "heappushpop", "heapreplace"}


def _contains_identity_call(node: ast.AST) -> Optional[str]:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id in ("id", "hash")
        ):
            return child.func.id
    return None


class IdentityOrderingRule(Rule):
    """DET04: id()/hash() vary per process; they must not order anything."""

    id = "DET04"
    summary = (
        "no id() or object hash() inside sort keys or heap entries in "
        "ordering-sensitive packages"
    )

    def check_file(
        self, src: SourceFile, ctx: ProjectContext
    ) -> Iterator[Violation]:
        if not _in_scope(src, ctx.config.det_scope):
            return
        symbols = _enclosing_symbols(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = ""
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _SORT_FUNCS or name == "sort":
                for keyword in node.keywords:
                    if keyword.arg != "key":
                        continue
                    offender = self._key_uses_identity(keyword.value)
                    if offender:
                        yield self.violation(
                            src,
                            keyword.value,
                            f"sort key uses {offender}(), which varies per "
                            "process; key on stable fields instead",
                            symbol=symbols.get(node.lineno, ""),
                        )
            elif name in _HEAP_FUNCS and len(node.args) >= 2:
                offender = _contains_identity_call(node.args[1])
                if offender:
                    yield self.violation(
                        src,
                        node.args[1],
                        f"heap entry uses {offender}(), which varies per "
                        "process; use a sequence counter for tie-breaks",
                        symbol=symbols.get(node.lineno, ""),
                    )

    @staticmethod
    def _key_uses_identity(key: ast.expr) -> Optional[str]:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return key.id
        if isinstance(key, ast.Lambda):
            return _contains_identity_call(key.body)
        return None
