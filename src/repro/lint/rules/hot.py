"""HOT: hot-path discipline rules.

Functions marked ``# repro-lint: hot`` run per kernel event, per message, or
per sample — millions of times per campaign.  Three allocation classes have
each been removed from this codebase's hot path once already (PR 2 and PR 4)
and must not creep back: instance-dict objects (un-slotted classes), fresh
payload dicts, and per-call function objects (lambdas, nested defs,
comprehension/generator machinery).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.rules.base import ProjectContext, Rule
from repro.lint.source import SourceFile
from repro.lint.violations import Violation


def _hot_walk(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a hot function's body without descending into nested defs.

    A nested def is reported once (HOT03) as a whole; its body is the nested
    function's problem, not the hot caller's.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class UnslottedHotClassRule(Rule):
    """HOT01: objects built on the hot path must be ``__slots__`` classes."""

    id = "HOT01"
    summary = (
        "classes instantiated inside hot functions must declare __slots__ "
        "(or be dataclass(slots=True))"
    )

    def check_file(
        self, src: SourceFile, ctx: ProjectContext
    ) -> Iterator[Violation]:
        for fn in src.hot_functions:
            for node in _hot_walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                info = ctx.resolve_class(src, node.func)
                if info is None or info.slotted or info.exempt:
                    continue
                yield self.violation(
                    src,
                    node,
                    f"instantiates {info.name} (defined at "
                    f"{info.module}:{info.lineno}) which has no __slots__; "
                    "every instance allocates a dict on the hot path",
                    symbol=fn.name,
                )


class HotDictLiteralRule(Rule):
    """HOT02: no per-call payload dicts on the hot path."""

    id = "HOT02"
    summary = (
        "no non-empty dict literals or dict(...) payload construction "
        "inside hot functions; use slotted value types"
    )

    def check_file(
        self, src: SourceFile, ctx: ProjectContext
    ) -> Iterator[Violation]:
        for fn in src.hot_functions:
            for node in _hot_walk(fn):
                if isinstance(node, ast.Dict) and node.keys:
                    yield self.violation(
                        src,
                        node,
                        "dict literal allocated per call on the hot path; "
                        "carry a slotted value type instead",
                        symbol=fn.name,
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "dict"
                    and (node.args or node.keywords)
                ):
                    yield self.violation(
                        src,
                        node,
                        "dict(...) allocated per call on the hot path; "
                        "carry a slotted value type instead",
                        symbol=fn.name,
                    )


_CLOSURE_KINDS: Tuple[type, ...] = (
    ast.Lambda,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.GeneratorExp,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
)

_KIND_NAMES = {
    ast.Lambda: "lambda",
    ast.FunctionDef: "nested function",
    ast.AsyncFunctionDef: "nested async function",
    ast.GeneratorExp: "generator expression",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
}


class HotClosureRule(Rule):
    """HOT03: no per-call function or generator objects on the hot path."""

    id = "HOT03"
    summary = (
        "no lambdas, nested defs, comprehensions or generator expressions "
        "inside hot functions; hoist the callable or write a plain loop"
    )

    def check_file(
        self, src: SourceFile, ctx: ProjectContext
    ) -> Iterator[Violation]:
        for fn in src.hot_functions:
            for node in _hot_walk(fn):
                if isinstance(node, _CLOSURE_KINDS):
                    kind = _KIND_NAMES[type(node)]
                    yield self.violation(
                        src,
                        node,
                        f"{kind} allocates a function/generator object per "
                        "call on the hot path; hoist it to construction "
                        "time or unroll into a loop",
                        symbol=fn.name,
                    )


def hot_marker_count(sources: List[SourceFile]) -> int:
    """Total hot-marked functions (used by the CLI summary)."""
    seen: Set[Tuple[str, int]] = set()
    for src in sources:
        for fn in src.hot_functions:
            seen.add((src.module, fn.lineno))
    return len(seen)
