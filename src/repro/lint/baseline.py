"""Baseline files: accepted pre-existing violations, and nothing else.

A baseline is a JSON map of violation fingerprints to occurrence counts.
Matching is strict in both directions:

* a violation whose fingerprint is in the baseline (within its count) is
  reported as *baselined*, not failing;
* a baseline entry that no longer matches any current violation is *stale*
  and fails the run — a baseline may only ever shrink toward empty, never
  silently rot.

Fingerprints hash the violating line's content, not its number, so
unrelated edits above a baselined violation do not churn the file.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.violations import Violation

BASELINE_VERSION = 1


@dataclass
class BaselineMatch:
    """Outcome of folding a baseline into a violation list."""

    failing: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)


def load_baseline(path: Path) -> Dict[str, int]:
    """Read ``{fingerprint: count}`` from a baseline file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}; "
            f"this analyzer writes version {BASELINE_VERSION}"
        )
    fingerprints = data.get("fingerprints", {})
    if not isinstance(fingerprints, dict):
        raise ValueError(f"baseline {path} 'fingerprints' must be an object")
    return {str(key): int(value) for key, value in fingerprints.items()}


def write_baseline(path: Path, violations: List[Violation]) -> int:
    """Write the current violations as the accepted baseline."""
    counts = Counter(violation.fingerprint for violation in violations)
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": {key: counts[key] for key in sorted(counts)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return sum(counts.values())


def apply_baseline(
    violations: List[Violation], baseline: Dict[str, int]
) -> BaselineMatch:
    """Split violations into failing vs baselined; surface stale entries."""
    remaining = Counter(baseline)
    match = BaselineMatch()
    for violation in violations:
        fingerprint = violation.fingerprint
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            match.baselined.append(violation)
        else:
            match.failing.append(violation)
    match.stale = sorted(
        fingerprint for fingerprint, count in remaining.items() if count > 0
    )
    return match


def baseline_counts(baseline: Dict[str, int]) -> Tuple[int, int]:
    """(distinct fingerprints, total accepted occurrences)."""
    return len(baseline), sum(baseline.values())
