"""Contract-aware static analysis for the repro codebase.

``repro.lint`` enforces, at parse time, the three standing contracts the
test suite otherwise only catches at runtime:

* **DET** — determinism: no hash-order iteration in ordering-sensitive
  packages, no unseeded randomness, no wall-clock reads in simulation
  logic, no object identity in orderings (DET01–DET04).
* **HOT** — hot-path discipline: functions marked ``# repro-lint: hot``
  may not allocate un-slotted instances, payload dicts, or per-call
  function objects (HOT01–HOT03).
* **LAYER** — import purity: the simulation core never imports its
  drivers, observability stays an import leaf, certification/analysis
  remain read-only consumers (LAYER01–LAYER03).

The package is deliberately standalone: it imports nothing from the rest
of ``repro``, and nothing in ``repro`` imports it, so it adds zero runtime
cost to simulation and can analyze a broken tree.

Use ``python -m repro.lint [paths] [--format human|json] [--baseline F]``;
suppress a finding inline with ``# repro-lint: disable=RULE -- reason``
(the reason is mandatory) and mark hot functions with ``# repro-lint:
hot`` on or directly above the ``def`` line.
"""

from __future__ import annotations

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig, config_from_mapping, load_config
from repro.lint.engine import LintResult, collect_files, run_lint
from repro.lint.rules import all_rules, rule_catalog
from repro.lint.violations import Violation

__all__ = [
    "LintConfig",
    "LintResult",
    "Violation",
    "all_rules",
    "apply_baseline",
    "collect_files",
    "config_from_mapping",
    "load_baseline",
    "load_config",
    "rule_catalog",
    "run_lint",
    "write_baseline",
]
