"""Import graph over the analyzed file set, with reachability queries.

Nodes are the analyzed modules; edges come straight from each file's import
statements.  Imports of modules outside the analyzed set (stdlib, numpy)
are kept as *external* edge labels so prefix checks still see them, but they
are never expanded — the graph cannot leave the project.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.source import SourceFile


def _module_prefix_match(module: str, prefixes: Iterable[str]) -> Optional[str]:
    """The first prefix that ``module`` equals or sits inside, if any."""
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


class ImportGraph:
    """Directed import graph with shortest-path reachability."""

    def __init__(self, sources: Iterable[SourceFile]) -> None:
        self._sources: Dict[str, SourceFile] = {src.module: src for src in sources}
        self._edges: Dict[str, Dict[str, int]] = {}
        modules = self._sources.keys()
        for module, src in self._sources.items():
            resolved: Dict[str, int] = {}
            for target, lineno in src.import_edges.items():
                # ``from pkg import name`` records ``pkg.name`` even when
                # ``name`` is a class; collapse such phantom nodes onto the
                # longest analyzed module they sit inside.
                node = target
                while node not in modules and "." in node:
                    node = node.rsplit(".", 1)[0]
                key = node if node in modules else target
                if key != module and key not in resolved:
                    resolved[key] = lineno
            self._edges[module] = resolved

    @property
    def modules(self) -> Tuple[str, ...]:
        return tuple(sorted(self._sources))

    def source(self, module: str) -> SourceFile:
        return self._sources[module]

    def direct_imports(self, module: str) -> Dict[str, int]:
        """``imported module -> first import line`` for one module."""
        return dict(self._edges.get(module, {}))

    def find_path_to(
        self, start: str, forbidden: Tuple[str, ...]
    ) -> Optional[List[str]]:
        """Shortest import chain from ``start`` to any forbidden prefix.

        Returns ``[start, ..., offender]`` or ``None``.  Traversal only
        expands analyzed modules, so external edges terminate the search at
        their label.
        """
        queue: deque[str] = deque([start])
        parents: Dict[str, Optional[str]] = {start: None}
        while queue:
            module = queue.popleft()
            for target in sorted(self._edges.get(module, {})):
                if _module_prefix_match(target, forbidden) is not None:
                    chain = [target, module]
                    parent = parents[module]
                    while parent is not None:
                        chain.append(parent)
                        parent = parents[parent]
                    chain.reverse()
                    return chain
                if target in parents or target not in self._sources:
                    continue
                parents[target] = module
                queue.append(target)
        return None


def prefix_match(module: str, prefixes: Iterable[str]) -> Optional[str]:
    """Public alias for the prefix containment test used by the layer rules."""
    return _module_prefix_match(module, prefixes)
