"""Violation records and stable fingerprints.

A violation's *fingerprint* identifies it across unrelated edits: it hashes
the rule id, the file's repo-relative path, and the normalised source line —
never the line *number* — so a baseline entry keeps matching when code above
the violation moves, and goes stale the moment the offending line itself is
changed or removed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict


def _content_hash(line: str) -> str:
    """Hash of the violating line with whitespace collapsed."""
    normalised = " ".join(line.split())
    return hashlib.sha256(normalised.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class Violation:
    """One rule breach at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    col: int
    message: str
    symbol: str = ""  # enclosing function/class, when known
    source_line: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by baseline files."""
        return f"{self.rule}:{self.path}:{_content_hash(self.source_line)}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        symbol = f" [{self.symbol}]" if self.symbol else ""
        return f"{location}: {self.rule}{symbol} {self.message}"
