"""The lint runner: collect files, run rules, fold suppressions + baseline.

Pipeline per invocation:

1. collect ``.py`` files under the requested paths (skipping caches and any
   configured exclude globs),
2. parse each into a :class:`~repro.lint.source.SourceFile` (syntax errors
   become LINT02 violations rather than crashes),
3. build the import graph and class index once,
4. run every enabled rule,
5. drop violations covered by a reasoned inline suppression,
6. fold in the baseline: matched violations inform, stale entries fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.config import LintConfig
from repro.lint.graph import ImportGraph
from repro.lint.rules import ProjectContext, all_rules, build_class_index
from repro.lint.source import SourceFile, parse_source
from repro.lint.violations import Violation

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache"}

PARSE_ERROR_RULE = "LINT02"


@dataclass
class LintResult:
    """Everything one run produced, pre-sorted for stable output."""

    failing: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0
    hot_functions: int = 0

    @property
    def exit_code(self) -> int:
        """0 clean; 1 failing violations; 3 stale baseline entries."""
        if self.failing:
            return 1
        if self.stale_baseline:
            return 3
        return 0

    def all_violations(self) -> List[Violation]:
        """Failing + baselined (what ``--write-baseline`` should record)."""
        return sorted(
            self.failing + self.baselined,
            key=lambda v: (v.path, v.line, v.rule),
        )


def collect_files(
    paths: Sequence[Path], exclude: Sequence[str] = ()
) -> List[Path]:
    """All ``.py`` files under ``paths``, deterministic order, no caches."""
    found: List[Path] = []
    seen: Dict[Path, None] = {}
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen[resolved] = None
            found.append(candidate)
    if exclude:
        found = [
            path
            for path in found
            if not any(fnmatch(path.as_posix(), pattern) for pattern in exclude)
        ]
    return found


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_all(
    files: Sequence[Path], root: Path
) -> Tuple[List[SourceFile], List[Violation]]:
    sources: List[SourceFile] = []
    errors: List[Violation] = []
    for path in files:
        rel = _relative(path, root)
        try:
            sources.append(parse_source(path, rel))
        except SyntaxError as exc:
            errors.append(
                Violation(
                    rule=PARSE_ERROR_RULE,
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    source_line=(exc.text or "").rstrip("\n"),
                )
            )
    return sources, errors


def _apply_suppressions(
    violations: List[Violation], by_rel: Dict[str, SourceFile]
) -> Tuple[List[Violation], List[Violation]]:
    kept: List[Violation] = []
    suppressed: List[Violation] = []
    for violation in violations:
        src = by_rel.get(violation.path)
        if src is None or violation.rule == "LINT01":
            kept.append(violation)
            continue
        reasoned = False
        for suppression in src.suppressions_for_line(violation.line):
            if violation.rule in suppression.rules and suppression.has_reason:
                reasoned = True
                break
        (suppressed if reasoned else kept).append(violation)
    return kept, suppressed


def run_lint(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    *,
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
) -> LintResult:
    """Lint ``paths`` and return the folded result."""
    config = config or LintConfig()
    root = root or Path.cwd()
    files = collect_files(paths, exclude=config.exclude)
    sources, violations = _parse_all(files, root)

    graph = ImportGraph(sources)
    ctx = ProjectContext(
        config=config,
        sources=sources,
        graph=graph,
        classes=build_class_index(sources),
    )
    for rule in all_rules():
        if not config.rule_enabled(rule.id):
            continue
        for src in sources:
            violations.extend(rule.check_file(src, ctx))
        violations.extend(rule.check_project(ctx))

    by_rel = {src.rel: src for src in sources}
    violations, suppressed = _apply_suppressions(violations, by_rel)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

    result = LintResult(
        suppressed=suppressed,
        files_checked=len(files),
        hot_functions=sum(len(src.hot_functions) for src in sources),
    )
    if baseline_path is not None and baseline_path.is_file():
        match = apply_baseline(violations, load_baseline(baseline_path))
        result.failing = match.failing
        result.baselined = match.baselined
        result.stale_baseline = match.stale
    else:
        result.failing = violations
    return result
