"""``python -m repro.lint`` — the contract analyzer's command line.

Exit codes are stable and scriptable:

* ``0`` — clean (baselined violations and reasoned suppressions are fine),
* ``1`` — failing violations,
* ``2`` — usage error (argparse),
* ``3`` — stale baseline entries (the baselined code was fixed or deleted;
  regenerate with ``--write-baseline`` to shrink the file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.lint.baseline import write_baseline
from repro.lint.config import LintConfig, load_config, load_config_file
from repro.lint.engine import LintResult, run_lint
from repro.lint.rules import rule_catalog


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Contract-aware static analyzer: determinism (DET*), hot-path "
            "discipline (HOT*), and import layering (LAYER*) rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: [tool.repro-lint] "
        "paths, falling back to 'src')",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted violations; stale entries fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current violations to --baseline and exit 0",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _render_human(result: LintResult, stream: TextIO) -> None:
    write = stream.write
    for violation in result.failing:
        write(violation.render() + "\n")
    for fingerprint in result.stale_baseline:
        write(
            f"stale baseline entry {fingerprint}: the accepted violation "
            "no longer exists; regenerate the baseline\n"
        )
    summary = (
        f"{len(result.failing)} violation(s) in {result.files_checked} "
        f"file(s); {len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed, "
        f"{result.hot_functions} hot-marked function(s)"
    )
    write(summary + "\n")


def _render_json(result: LintResult, stream: TextIO) -> None:
    payload = {
        "version": 1,
        "violations": [violation.as_dict() for violation in result.failing],
        "baselined": [violation.as_dict() for violation in result.baselined],
        "suppressed": [violation.as_dict() for violation in result.suppressed],
        "stale_baseline": list(result.stale_baseline),
        "summary": {
            "files": result.files_checked,
            "failing": len(result.failing),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "hot_functions": result.hot_functions,
            "exit_code": result.exit_code,
        },
    }
    stream.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in rule_catalog().items():
            sys.stdout.write(f"{rule_id}  {summary}\n")
        return 0

    config: LintConfig
    if args.config is not None:
        config = load_config_file(args.config)
    else:
        config = load_config(Path.cwd())

    paths: List[Path] = [Path(p) for p in (args.paths or config.paths)]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    result = run_lint(
        paths,
        config,
        root=Path.cwd(),
        baseline_path=args.baseline,
    )

    if args.write_baseline:
        assert args.baseline is not None
        count = write_baseline(args.baseline, result.all_violations())
        sys.stdout.write(
            f"wrote {count} accepted violation(s) to {args.baseline}\n"
        )
        return 0

    stream = sys.stdout
    if args.format == "json":
        _render_json(result, stream)
    else:
        _render_human(result, stream)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
