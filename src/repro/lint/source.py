"""Parsed source files: AST, comments, markers, suppressions, bindings.

Everything the rule families need from a file is computed exactly once here:

* the AST (``ast.parse``),
* the comment map (via ``tokenize`` — the AST drops comments),
* ``# repro-lint: hot`` markers resolved to the function definitions they
  annotate,
* ``# repro-lint: disable=RULE -- reason`` suppressions resolved to the
  lines they cover, and
* the import-name bindings (``alias -> module``, ``name -> (module, attr)``)
  that let rules resolve ``np.random.x`` or an imported class to its origin.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

HOT_MARKER = re.compile(r"#\s*repro-lint:\s*hot\b")
DISABLE_MARKER = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s*--\s*(.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline ``disable=`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str

    @property
    def has_reason(self) -> bool:
        return bool(self.reason.strip())


@dataclass
class SourceFile:
    """One analyzed module with every per-file derived fact."""

    path: Path
    rel: str
    module: str
    text: str
    lines: List[str]
    tree: ast.Module
    comments: Dict[int, str]
    suppressions: List[Suppression]
    hot_functions: List[ast.FunctionDef] = field(default_factory=list)
    # alias -> module for ``import x.y as alias``
    module_aliases: Dict[str, str] = field(default_factory=dict)
    # local name -> (module, original name) for ``from x import y [as z]``
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    # every absolute module named by an import, with the first line it appears
    import_edges: Dict[str, int] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressions_for_line(self, lineno: int) -> Iterator[Suppression]:
        """Suppressions covering ``lineno``: same line or the line above."""
        for suppression in self.suppressions:
            if suppression.line == lineno:
                yield suppression
            elif suppression.line == lineno - 1 and self._is_own_line(suppression.line):
                yield suppression

    def _is_own_line(self, lineno: int) -> bool:
        """True when the suppression comment sits alone on its line."""
        return self.line_text(lineno).lstrip().startswith("#")

    def hot_spans(self) -> List[Tuple[int, int, str]]:
        """(first_line, last_line, qualname) of every hot-marked function."""
        return [
            (fn.lineno, fn.end_lineno or fn.lineno, fn.name)
            for fn in self.hot_functions
        ]


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from the ``__init__.py`` package chain."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    package = path.parent
    while (package / "__init__.py").is_file():
        parts.insert(0, package.name)
        package = package.parent
    return ".".join(parts) if parts else path.stem


def _collect_comments(text: str) -> Dict[int, str]:
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
        pass
    return comments


def _collect_suppressions(comments: Dict[int, str]) -> List[Suppression]:
    suppressions: List[Suppression] = []
    for lineno in sorted(comments):
        match = DISABLE_MARKER.search(comments[lineno])
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        reason = (match.group(2) or "").strip()
        suppressions.append(Suppression(line=lineno, rules=rules, reason=reason))
    return suppressions


def _collect_hot_functions(
    tree: ast.Module, comments: Dict[int, str]
) -> List[ast.FunctionDef]:
    """Functions annotated ``# repro-lint: hot``.

    The marker may trail the ``def`` line or sit on the line directly above
    it (above any decorators is NOT recognised — keep the marker adjacent to
    the ``def`` so it survives decorator edits).
    """
    hot_lines: Set[int] = {
        lineno for lineno, text in comments.items() if HOT_MARKER.search(text)
    }
    marked: List[ast.FunctionDef] = []
    if not hot_lines:
        return marked
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            if node.lineno in hot_lines or node.lineno - 1 in hot_lines:
                marked.append(node)
    marked.sort(key=lambda fn: fn.lineno)
    return marked


def _collect_imports(
    tree: ast.Module, module: str
) -> Tuple[Dict[str, str], Dict[str, Tuple[str, str]], Dict[str, int]]:
    aliases: Dict[str, str] = {}
    from_imports: Dict[str, Tuple[str, str]] = {}
    edges: Dict[str, int] = {}

    def note_edge(target: str, lineno: int) -> None:
        if target and target not in edges:
            edges[target] = lineno

    package_parts = module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
                note_edge(alias.name, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - node.level + 1]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            if not base:
                continue
            note_edge(base, node.lineno)
            for alias in node.names:
                if alias.name == "*":
                    continue
                from_imports[alias.asname or alias.name] = (base, alias.name)
                # ``from pkg import mod`` may name a submodule: record the
                # deeper edge too so layer checks see the true dependency.
                note_edge(f"{base}.{alias.name}", node.lineno)
    return aliases, from_imports, edges


def parse_source(path: Path, rel: str, module: Optional[str] = None) -> SourceFile:
    """Parse one file into a fully-derived :class:`SourceFile`."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    comments = _collect_comments(text)
    module_name = module if module is not None else module_name_for(path)
    aliases, from_imports, edges = _collect_imports(tree, module_name)
    return SourceFile(
        path=path,
        rel=rel,
        module=module_name,
        text=text,
        lines=text.splitlines(),
        tree=tree,
        comments=comments,
        suppressions=_collect_suppressions(comments),
        hot_functions=_collect_hot_functions(tree, comments),
        module_aliases=aliases,
        from_imports=from_imports,
        import_edges=edges,
    )
