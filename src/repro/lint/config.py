"""Analyzer configuration, optionally loaded from ``[tool.repro-lint]``.

The defaults encode this repository's three standing contracts, so a bare
``python -m repro.lint src`` is the CI invocation.  Projects adjust scope in
``pyproject.toml``::

    [tool.repro-lint]
    paths = ["src"]
    exclude = ["**/_vendored/**"]
    det-scope = ["repro.sim", "repro.middleware", "repro.campaign"]
    wallclock-allowlist = ["repro.obs", "repro.campaign.resilience"]

``tomllib`` only exists on Python 3.11+; on 3.10 the built-in defaults are
used unless a config mapping is passed programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10 fallback
    tomllib = None  # type: ignore[assignment]


@dataclass(frozen=True)
class LintConfig:
    """Scope and allowlists for every rule family."""

    # File collection.
    paths: Tuple[str, ...] = ("src",)
    exclude: Tuple[str, ...] = ()
    # Rule selection: empty means "all registered rules".
    select: Tuple[str, ...] = ()
    # DET01/DET04: packages whose ordering is part of the golden contract.
    det_scope: Tuple[str, ...] = ("repro.sim", "repro.middleware", "repro.campaign")
    # DET03: modules allowed to read the wall clock (observability and the
    # watchdog/heartbeat machinery genuinely measure real time).
    wallclock_allowlist: Tuple[str, ...] = ("repro.obs", "repro.campaign.resilience")
    # LAYER01: the simulation core must never depend on its drivers.
    layer_sim: Tuple[str, ...] = ("repro.sim",)
    layer_sim_forbidden: Tuple[str, ...] = ("repro.campaign", "repro.scenarios")
    # LAYER02: observability must stay an import leaf.
    layer_leaf: Tuple[str, ...] = ("repro.obs",)
    # LAYER03: read-only consumers vs the behavior-producing core.
    layer_consumers: Tuple[str, ...] = ("repro.certification", "repro.analysis")
    layer_core: Tuple[str, ...] = (
        "repro.sim",
        "repro.middleware",
        "repro.devices",
        "repro.patient",
        "repro.core",
    )

    def rule_enabled(self, rule_id: str) -> bool:
        return not self.select or rule_id in self.select


_KEY_MAP = {
    "paths": "paths",
    "exclude": "exclude",
    "select": "select",
    "det-scope": "det_scope",
    "wallclock-allowlist": "wallclock_allowlist",
    "layer-sim": "layer_sim",
    "layer-sim-forbidden": "layer_sim_forbidden",
    "layer-leaf": "layer_leaf",
    "layer-consumers": "layer_consumers",
    "layer-core": "layer_core",
}


def config_from_mapping(data: Mapping[str, Any]) -> LintConfig:
    """Build a config from a ``[tool.repro-lint]``-shaped mapping."""
    overrides: dict[str, Tuple[str, ...]] = {}
    known = {f.name for f in fields(LintConfig)}
    for key, value in data.items():
        name = _KEY_MAP.get(key, key.replace("-", "_"))
        if name not in known:
            raise ValueError(f"unknown [tool.repro-lint] key {key!r}")
        if not isinstance(value, (list, tuple)) or not all(
            isinstance(item, str) for item in value
        ):
            raise ValueError(f"[tool.repro-lint] key {key!r} must be a list of strings")
        overrides[name] = tuple(value)
    return replace(LintConfig(), **overrides)


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Load config from the nearest ``pyproject.toml`` at or above ``start``."""
    directory = (start or Path.cwd()).resolve()
    if directory.is_file():
        directory = directory.parent
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return load_config_file(pyproject)
    return LintConfig()


def load_config_file(pyproject: Path) -> LintConfig:
    """Parse ``[tool.repro-lint]`` out of one specific pyproject file."""
    if tomllib is None:  # pragma: no cover - Python 3.10 fallback
        return LintConfig()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, Mapping):
        raise ValueError("[tool.repro-lint] must be a table")
    return config_from_mapping(section)
