"""GOLD01: golden-regeneration hygiene (``python -m repro.lint.gold``).

The determinism gate pins kernel/bus/scenario behaviour in
``tests/data/golden_traces.json``.  Regenerating that file is a *semantic*
change and the project contract (ROADMAP "Determinism gate") requires the
change log to say so.  This check enforces the contract on a revision
range: if the range touches the golden file, the same range must add a
``CHANGES.md`` line mentioning regeneration.

Unlike the ``repro.lint`` AST rules this is a *diff* property, not a
source property, so it runs as its own entry point against two git refs
(CI passes the PR base)::

    python -m repro.lint.gold --base origin/main

Exit status: 0 clean, 1 violation, 2 usage/git error.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from typing import List, Optional, Sequence

RULE_ID = "GOLD01"
RULE_SUMMARY = ("golden_traces.json changed without a CHANGES.md entry "
                "mentioning regeneration")

#: The pinned determinism artifact this rule guards.
GOLDEN_PATH = "tests/data/golden_traces.json"

#: The change log that must acknowledge a regeneration.
CHANGELOG_PATH = "CHANGES.md"

#: An added change-log line acknowledges the regeneration if it matches.
REGEN_PATTERN = re.compile(r"regenerat", re.IGNORECASE)


class GitError(RuntimeError):
    """A git invocation failed (bad ref, not a repository, ...)."""


def _git(repo: str, *argv: str) -> str:
    result = subprocess.run(
        ["git", "-C", repo, *argv],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        command = " ".join(("git",) + argv)
        raise GitError(f"{command!r} failed: {result.stderr.strip()}")
    return result.stdout


def changed_paths(repo: str, base: str, head: str) -> List[str]:
    """Repo-relative paths touched between ``base`` and ``head``."""
    output = _git(repo, "diff", "--name-only", f"{base}..{head}")
    return [line.strip() for line in output.splitlines() if line.strip()]


def added_changelog_lines(repo: str, base: str, head: str) -> List[str]:
    """Lines *added* to CHANGES.md between ``base`` and ``head``."""
    output = _git(repo, "diff", "--unified=0", f"{base}..{head}",
                  "--", CHANGELOG_PATH)
    added: List[str] = []
    for line in output.splitlines():
        if line.startswith("+") and not line.startswith("+++"):
            added.append(line[1:])
    return added


def check_range(repo: str, base: str, head: str) -> Optional[str]:
    """The GOLD01 violation message for this range, or None if clean."""
    touched = changed_paths(repo, base, head)
    if GOLDEN_PATH not in touched:
        return None
    acknowledgement = [line for line in added_changelog_lines(repo, base, head)
                       if REGEN_PATTERN.search(line)]
    if acknowledgement:
        return None
    return (
        f"{GOLDEN_PATH}: {RULE_ID} {RULE_SUMMARY} — this range rewrites the "
        f"pinned determinism goldens; regenerate intentionally via "
        f"'PYTHONPATH=src python tests/golden_workload.py' and add a "
        f"{CHANGELOG_PATH} line saying the goldens were regenerated (and why)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.gold",
        description="Fail if golden_traces.json changed without a CHANGES.md "
                    "entry mentioning regeneration.",
    )
    parser.add_argument("--base", required=True,
                        help="base git ref of the range under review "
                             "(e.g. origin/main or the PR base SHA)")
    parser.add_argument("--head", default="HEAD",
                        help="head git ref of the range (default: HEAD)")
    parser.add_argument("--repo", default=".",
                        help="repository to inspect (default: cwd)")
    args = parser.parse_args(argv)
    try:
        violation = check_range(args.repo, args.base, args.head)
    except GitError as error:
        print(f"gold: {error}", file=sys.stderr)
        return 2
    if violation is not None:
        print(violation)
        return 1
    print(f"gold: {GOLDEN_PATH} unchanged or regeneration acknowledged "
          f"({args.base}..{args.head})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
