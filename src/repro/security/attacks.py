"""Attack models against the medical device network.

Experiment E7 runs attack campaigns against each security posture and counts
which attacks reach a patient-harming command, reproducing the paper's
flexibility-versus-security tradeoff (Section III(m), citing Halperin et
al.'s implantable-device attacks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.security.auth import DeviceAuthenticator, DeviceCredential
from repro.security.policy import CommandAuthorizationPolicy


class AttackOutcome(enum.Enum):
    BLOCKED_AUTHENTICATION = "blocked_authentication"
    BLOCKED_AUTHORIZATION = "blocked_authorization"
    SUCCEEDED = "succeeded"


@dataclass(frozen=True)
class Attack:
    """One attack attempt.

    kind:
        ``reprogram`` (send a set_prescription/resume command), ``replay``
        (re-send a captured authentication response), ``flood`` (command
        flooding for denial of service), or ``insider`` (a compromised but
        legitimately provisioned principal).
    """

    kind: str
    attacker: str
    target_device: str
    command: str
    uses_stolen_credential: bool = False
    replayed_response: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.kind not in ("reprogram", "replay", "flood", "insider"):
            raise ValueError(f"unknown attack kind {self.kind!r}")


@dataclass
class AttackResult:
    attack: Attack
    outcome: AttackOutcome
    detail: str = ""

    @property
    def succeeded(self) -> bool:
        return self.outcome == AttackOutcome.SUCCEEDED


class AttackCampaign:
    """Runs a list of attacks against an authenticator + authorisation policy."""

    def __init__(
        self,
        authenticator: DeviceAuthenticator,
        policy: CommandAuthorizationPolicy,
        *,
        stolen_credentials: Optional[Dict[str, DeviceCredential]] = None,
    ) -> None:
        self.authenticator = authenticator
        self.policy = policy
        self.stolen_credentials = dict(stolen_credentials or {})
        self.results: List[AttackResult] = []

    def run(self, attacks: List[Attack]) -> List[AttackResult]:
        results = [self._execute(attack) for attack in attacks]
        self.results.extend(results)
        return results

    # --------------------------------------------------------------- helpers
    def _execute(self, attack: Attack) -> AttackResult:
        authenticated = self._attempt_authentication(attack)
        if not authenticated:
            return AttackResult(attack, AttackOutcome.BLOCKED_AUTHENTICATION, "authentication failed")
        if self.policy.require_authentication:
            # Only a real authenticator exchange earns a policy session.
            # When the posture skips authentication the policy never checks
            # the session set, and marking here would pollute it across the
            # rest of the campaign (and any posture change mid-experiment).
            self.policy.mark_authenticated(attack.attacker)
        allowed, reason = self.policy.authorise(attack.attacker, attack.target_device, attack.command)
        if allowed:
            return AttackResult(attack, AttackOutcome.SUCCEEDED, reason)
        return AttackResult(attack, AttackOutcome.BLOCKED_AUTHORIZATION, reason)

    def _attempt_authentication(self, attack: Attack) -> bool:
        if not self.policy.require_authentication:
            return True
        if attack.kind == "insider":
            # An insider already holds valid credentials and a session.
            credential = self.stolen_credentials.get(attack.attacker)
            if credential is not None:
                return self.authenticator.authenticate(credential)
            return self.authenticator.is_authenticated(attack.attacker)
        if attack.uses_stolen_credential:
            credential = self.stolen_credentials.get(attack.attacker)
            if credential is None:
                return False
            return self.authenticator.authenticate(credential)
        if attack.kind == "replay" and attack.replayed_response is not None:
            # Replaying an old response against a fresh nonce always fails,
            # but the attempt is modelled faithfully.
            if not self.authenticator.is_provisioned(attack.attacker):
                return False
            self.authenticator.challenge(attack.attacker)
            return self.authenticator.verify(attack.attacker, attack.replayed_response)
        return False

    # --------------------------------------------------------------- metrics
    def success_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for result in self.results if result.succeeded) / len(self.results)

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {outcome.value: 0 for outcome in AttackOutcome}
        for result in self.results:
            counts[result.outcome.value] += 1
        return counts


def standard_reprogramming_campaign(target_device: str = "pca-pump-1") -> List[Attack]:
    """The default attack workload used by experiment E7."""
    attacks: List[Attack] = []
    for index in range(10):
        attacks.append(
            Attack(kind="reprogram", attacker=f"external-{index}", target_device=target_device,
                   command="set_prescription")
        )
    for index in range(5):
        attacks.append(
            Attack(kind="replay", attacker=f"eavesdropper-{index}", target_device=target_device,
                   command="resume", replayed_response=b"\x00" * 32)
        )
    for index in range(5):
        attacks.append(
            Attack(kind="flood", attacker=f"flooder-{index}", target_device=target_device, command="stop")
        )
    attacks.append(
        Attack(kind="insider", attacker="pca-safety-app", target_device=target_device,
               command="set_prescription", uses_stolen_credential=True)
    )
    return attacks
