"""Security for networked medical devices.

Section III(m) of the paper: an attacker who penetrates an MCPS network "has
the potential to harm and even kill patients by reprogramming devices"; most
manufacturers respond by restricting the network interface to data-out only,
which "severely limits the ability to deploy closed-loop scenarios".  Finding
the balance between flexibility and security is the tradeoff experiment E7
quantifies.  This package provides:

* :class:`~repro.security.policy.CommandAuthorizationPolicy` -- per-device
  command allowlists (open / allowlisted / data-only postures) evaluated by
  the supervisor host on every outgoing command.
* :class:`~repro.security.auth.DeviceAuthenticator` -- shared-key device
  identity with nonce-based challenge response (anti-replay).
* :mod:`~repro.security.attacks` -- attack campaign models (reprogramming,
  replay, command flooding) run against a policy to measure which attacks
  get through.
* :class:`~repro.security.audit.AuditLog` -- append-only, hash-chained log
  of security-relevant events.
"""

from repro.security.policy import CommandAuthorizationPolicy, SecurityPosture
from repro.security.auth import AuthenticationError, DeviceAuthenticator, DeviceCredential
from repro.security.attacks import Attack, AttackCampaign, AttackOutcome, AttackResult
from repro.security.audit import AuditLog, AuditRecord

__all__ = [
    "CommandAuthorizationPolicy",
    "SecurityPosture",
    "AuthenticationError",
    "DeviceAuthenticator",
    "DeviceCredential",
    "Attack",
    "AttackCampaign",
    "AttackOutcome",
    "AttackResult",
    "AuditLog",
    "AuditRecord",
]
