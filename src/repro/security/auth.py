"""Device authentication: shared-key identity with challenge-response.

Keys never cross the simulated network; principals prove possession of the
key by answering a nonce challenge with an HMAC.  Replayed responses are
rejected because each nonce is single-use.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


class AuthenticationError(RuntimeError):
    """Raised when authentication fails irrecoverably (unknown principal, ...)."""


@dataclass(frozen=True)
class DeviceCredential:
    """A principal's provisioned identity."""

    principal: str
    key: bytes

    def respond(self, nonce: bytes) -> bytes:
        """Compute the challenge response for ``nonce``."""
        return hmac.new(self.key, nonce, hashlib.sha256).digest()


class DeviceAuthenticator:
    """Verifies principals by nonce challenge-response."""

    def __init__(self) -> None:
        self._keys: Dict[str, bytes] = {}
        self._outstanding: Dict[str, bytes] = {}
        self._used_nonces: Set[bytes] = set()
        self._nonce_counter = 0
        self.authenticated: Set[str] = set()
        self.failed_attempts: Dict[str, int] = {}

    # ----------------------------------------------------------- provisioning
    def provision(self, principal: str, key: bytes) -> DeviceCredential:
        """Provision a key for ``principal`` (done out of band, e.g. at install)."""
        if not key:
            raise ValueError("key must be non-empty")
        self._keys[principal] = key
        return DeviceCredential(principal=principal, key=key)

    def is_provisioned(self, principal: str) -> bool:
        return principal in self._keys

    # -------------------------------------------------------------- handshake
    def challenge(self, principal: str) -> bytes:
        """Issue a fresh nonce for ``principal``."""
        if principal not in self._keys:
            raise AuthenticationError(f"principal {principal!r} is not provisioned")
        self._nonce_counter += 1
        nonce = hashlib.sha256(f"{principal}:{self._nonce_counter}".encode()).digest()
        self._outstanding[principal] = nonce
        return nonce

    def verify(self, principal: str, response: bytes) -> bool:
        """Verify a challenge response; marks the principal authenticated on success."""
        nonce = self._outstanding.pop(principal, None)
        if nonce is None or principal not in self._keys:
            self._record_failure(principal)
            return False
        if nonce in self._used_nonces:
            self._record_failure(principal)
            return False
        expected = hmac.new(self._keys[principal], nonce, hashlib.sha256).digest()
        if hmac.compare_digest(expected, response):
            self._used_nonces.add(nonce)
            self.authenticated.add(principal)
            return True
        self._record_failure(principal)
        return False

    def authenticate(self, credential: DeviceCredential) -> bool:
        """Full handshake convenience: challenge + respond + verify."""
        nonce = self.challenge(credential.principal)
        return self.verify(credential.principal, credential.respond(nonce))

    def _record_failure(self, principal: str) -> None:
        self.failed_attempts[principal] = self.failed_attempts.get(principal, 0) + 1

    # ----------------------------------------------------------------- status
    def is_authenticated(self, principal: str) -> bool:
        return principal in self.authenticated

    def deauthenticate(self, principal: str) -> None:
        self.authenticated.discard(principal)
