"""Append-only, hash-chained audit log for security-relevant events."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class AuditRecord:
    """One audit entry, chained to its predecessor by hash."""

    index: int
    time: float
    actor: str
    action: str
    details: Dict[str, Any]
    previous_hash: str
    entry_hash: str


def _hash_entry(index: int, time: float, actor: str, action: str, details: Dict[str, Any], previous_hash: str) -> str:
    payload = json.dumps(
        {"index": index, "time": time, "actor": actor, "action": action,
         "details": details, "previous": previous_hash},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class AuditLog:
    """Hash-chained audit log; any mutation of past entries is detectable."""

    GENESIS = "0" * 64

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []

    def append(self, time: float, actor: str, action: str, details: Optional[Dict[str, Any]] = None) -> AuditRecord:
        details = dict(details or {})
        index = len(self._records)
        previous_hash = self._records[-1].entry_hash if self._records else self.GENESIS
        entry_hash = _hash_entry(index, time, actor, action, details, previous_hash)
        record = AuditRecord(
            index=index,
            time=time,
            actor=actor,
            action=action,
            details=details,
            previous_hash=previous_hash,
            entry_hash=entry_hash,
        )
        self._records.append(record)
        return record

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records_for(self, actor: str) -> List[AuditRecord]:
        return [record for record in self._records if record.actor == actor]

    def records_with_action(self, action: str) -> List[AuditRecord]:
        return [record for record in self._records if record.action == action]

    # ------------------------------------------------------------- integrity
    def verify_chain(self) -> bool:
        """Recompute every hash; returns False if any entry was tampered with."""
        previous_hash = self.GENESIS
        for index, record in enumerate(self._records):
            if record.index != index or record.previous_hash != previous_hash:
                return False
            expected = _hash_entry(
                record.index, record.time, record.actor, record.action, record.details, record.previous_hash
            )
            if expected != record.entry_hash:
                return False
            previous_hash = record.entry_hash
        return True

    def tamper(self, index: int, **changes: Any) -> None:
        """Test helper: overwrite fields of an existing record (breaks the chain)."""
        record = self._records[index]
        data = {
            "index": record.index,
            "time": record.time,
            "actor": record.actor,
            "action": record.action,
            "details": record.details,
            "previous_hash": record.previous_hash,
            "entry_hash": record.entry_hash,
        }
        data.update(changes)
        self._records[index] = AuditRecord(**data)
