"""Command authorisation policies for the device network.

Three postures span the design space the paper describes:

* ``open`` -- any principal may send any command to any device (maximum
  closed-loop flexibility, maximum attack surface);
* ``allowlisted`` -- only registered (principal, device, command) triples
  are allowed; supervisors get exactly the commands their scenario needs;
* ``data_only`` -- devices accept no network commands at all (the current
  manufacturers' posture; closed-loop control is impossible).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class SecurityPosture(enum.Enum):
    OPEN = "open"
    ALLOWLISTED = "allowlisted"
    DATA_ONLY = "data_only"


@dataclass
class CommandAuthorizationPolicy:
    """Evaluates whether a principal may send a command to a device."""

    posture: SecurityPosture = SecurityPosture.ALLOWLISTED
    allowlist: Set[Tuple[str, str, str]] = field(default_factory=set)
    authenticated_principals: Set[str] = field(default_factory=set)
    require_authentication: bool = True
    decisions: List[Tuple[str, str, str, bool, str]] = field(default_factory=list)

    # ------------------------------------------------------------ management
    def allow(self, principal: str, device_id: str, command: str) -> None:
        """Add one (principal, device, command) triple to the allowlist."""
        self.allowlist.add((principal, device_id, command))

    def allow_app_commands(self, principal: str, device_id: str, commands: List[str]) -> None:
        for command in commands:
            self.allow(principal, device_id, command)

    def mark_authenticated(self, principal: str) -> None:
        self.authenticated_principals.add(principal)

    def revoke_authentication(self, principal: str) -> None:
        self.authenticated_principals.discard(principal)

    # ------------------------------------------------------------ evaluation
    def authorise(self, principal: str, device_id: str, command: str) -> Tuple[bool, str]:
        """Return (allowed, reason); also records the decision."""
        allowed, reason = self._evaluate(principal, device_id, command)
        self.decisions.append((principal, device_id, command, allowed, reason))
        return allowed, reason

    def _evaluate(self, principal: str, device_id: str, command: str) -> Tuple[bool, str]:
        if self.posture == SecurityPosture.DATA_ONLY:
            return False, "data-only posture: no network commands accepted"
        if self.require_authentication and principal not in self.authenticated_principals:
            return False, f"principal {principal!r} is not authenticated"
        if self.posture == SecurityPosture.OPEN:
            return True, "open posture"
        if (principal, device_id, command) in self.allowlist:
            return True, "allowlisted"
        return False, f"({principal}, {device_id}, {command}) not in allowlist"

    # ------------------------------------------------------------ accounting
    @property
    def denied_count(self) -> int:
        return sum(1 for *_rest, allowed, _reason in self.decisions if not allowed)

    @property
    def allowed_count(self) -> int:
        return sum(1 for *_rest, allowed, _reason in self.decisions if allowed)

    def as_authoriser(self):
        """Adapter usable as the SupervisorHost ``command_authoriser`` callback."""

        def authorise(app_id: str, device_id: str, command: str) -> Tuple[bool, str]:
            return self.authorise(app_id, device_id, command)

        return authorise


def closed_loop_attack_surface(policy: CommandAuthorizationPolicy, critical_commands: Set[Tuple[str, str]]) -> Dict[str, float]:
    """Quantify the attack surface a policy exposes.

    ``critical_commands`` is the set of (device_id, command) pairs whose abuse
    can harm the patient (e.g. ``("pca-pump-1", "resume")``,
    ``("pca-pump-1", "set_prescription")``).  Returns the fraction of those
    reachable by (a) an authenticated-but-unauthorised insider and (b) an
    unauthenticated attacker, under the policy.
    """
    insider_reachable = 0
    outsider_reachable = 0
    for device_id, command in critical_commands:
        if policy.posture == SecurityPosture.OPEN:
            insider_reachable += 1
            if not policy.require_authentication:
                outsider_reachable += 1
        elif policy.posture == SecurityPosture.ALLOWLISTED:
            if any(entry[1] == device_id and entry[2] == command for entry in policy.allowlist):
                # Reachable only by compromising an allowlisted principal.
                insider_reachable += 1
        # DATA_ONLY exposes nothing.
    total = max(1, len(critical_commands))
    return {
        "insider_reachable_fraction": insider_reachable / total,
        "outsider_reachable_fraction": outsider_reachable / total,
    }
