"""Network channels between medical devices.

The paper's closed-loop scenarios hinge on communication timing: the
supervisor must account for transmission delays and tolerate communication
failures (Section II(c)), and the X-ray/ventilator scenario requires the
X-ray machine to reason about "enough time -- taking transmission delays into
account" (Section II(b)).  :class:`Channel` models a point-to-point or
broadcast link with configurable latency, jitter, loss probability, and
scripted outages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import channel_instruments
from repro.sim.kernel import Simulator


@dataclass(slots=True, unsafe_hash=True)
class Message:
    """A datagram exchanged between devices or middleware components.

    Slotted but not frozen: two Message objects are created per delivered
    datagram on the simulation's hottest path, and a frozen dataclass pays
    ``object.__setattr__`` per field on every construction.  Treat
    instances as immutable regardless.
    """

    sender: str
    topic: str
    payload: Any
    sent_at: float
    sequence: int
    delivered_at: Optional[float] = None

    def with_delivery(self, time: float) -> "Message":
        return Message(self.sender, self.topic, self.payload,
                       self.sent_at, self.sequence, time)

    @property
    def latency(self) -> Optional[float]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at


@dataclass
class ChannelConfig:
    """Timing and reliability parameters of a network link.

    latency_s:
        Fixed propagation plus processing delay in seconds.
    jitter_s:
        Half-width of a uniform jitter added to the latency.
    loss_probability:
        Probability that an individual message is silently dropped.
    bandwidth_msgs_per_s:
        If set, messages are additionally serialised at this rate
        (models a shared low-bandwidth medical device bus).
    """

    latency_s: float = 0.05
    jitter_s: float = 0.0
    loss_probability: float = 0.0
    bandwidth_msgs_per_s: Optional[float] = None

    def validate(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.jitter_s < 0:
            raise ValueError("jitter_s must be non-negative")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss_probability must be within [0, 1]")
        if self.bandwidth_msgs_per_s is not None and self.bandwidth_msgs_per_s <= 0:
            raise ValueError("bandwidth_msgs_per_s must be positive when set")


class Channel:
    """A lossy, delaying message channel.

    Receivers subscribe with :meth:`subscribe`; senders call :meth:`send`.
    Delivery is simulated by scheduling a kernel event after the sampled
    latency.  Messages that land on the same ``(channel, delivery-time)``
    share ONE kernel event: the first message schedules it, later ones join
    its per-tick queue, and the event drains the queue in FIFO send order.
    On the zero-jitter fast path (fixed latency, multi-topic device ticks)
    this halves-or-better the kernel events per sample without reordering
    any deliveries within a channel; :attr:`coalesced_ticks` and
    :attr:`max_batch` stream how often and how large those shared ticks
    are.  Streaming statistics (sent/delivered/
    dropped counts, mean/max
    latency) are kept for the delay-budget analyses in
    :mod:`repro.core.delays`; the full per-message history
    (:attr:`latencies`, :attr:`delivered_messages`) is only retained when
    ``retain_messages=True`` — unconditional retention is an O(events)
    memory leak at campaign scale.

    A config that demands randomness (jitter or loss) without an ``rng`` is
    rejected at construction time: silently degrading to a deterministic
    channel would invalidate any loss/jitter experiment built on it.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        config: Optional[ChannelConfig] = None,
        rng=None,
        *,
        retain_messages: bool = False,
    ) -> None:
        config = config or ChannelConfig()
        config.validate()
        if rng is None and (config.jitter_s > 0 or config.loss_probability > 0):
            raise ValueError(
                f"channel {name!r} is configured with randomness "
                f"(jitter_s={config.jitter_s}, loss_probability="
                f"{config.loss_probability}) but no rng was provided; "
                "pass rng= or zero the stochastic parameters"
            )
        self.simulator = simulator
        self.name = name
        self.config = config
        self._rng = rng
        self._subscribers: List[Tuple[Optional[str], Callable[[Message], None]]] = []
        self._snapshot: Tuple[Tuple[Optional[str], Callable[[Message], None]], ...] = ()
        self._sequence = itertools.count()
        self._outages: List[Tuple[float, float]] = []
        self._busy_until = 0.0
        self._deliver_name = f"channel:{name}:deliver"
        # Same-tick coalescing: delivery-time -> FIFO queue of in-flight
        # messages sharing one kernel event.  Keyed by exact float time, so
        # only bit-identical delivery times ever share an event; entries are
        # popped when their event fires (bounded by in-flight messages).
        self._pending: Dict[float, List[Message]] = {}
        # Hoisted once: scheduling the bound method directly (the kernel
        # fires it at exactly the pending key's time) avoids allocating a
        # closure per scheduled delivery tick on the hot send path.
        self._deliver_batch_cb = self._deliver_batch
        self.sent: int = 0
        self.delivered: int = 0
        self.dropped: int = 0
        # Streaming coalescing counters (always on — they cost one compare
        # per *kernel event*, not per message): how many delivery ticks
        # carried more than one message, and the largest such batch.
        self.coalesced_ticks: int = 0
        self.max_batch: int = 0
        # Registry-backed metrics; None unless repro.obs was enabled when
        # this channel was constructed.
        self._obs = channel_instruments()
        # Latency statistics stream (count is `delivered`); the full
        # per-message history is opt-in — retaining every delivery is an
        # O(events) memory leak at campaign scale.
        self._latency_sum = 0.0
        self._latency_max = 0.0
        self.retain_messages = retain_messages
        self.latencies: List[float] = []
        self.delivered_messages: List[Message] = []

    # ----------------------------------------------------------- subscription
    def subscribe(self, handler: Callable[[Message], None], topic: Optional[str] = None) -> None:
        """Register ``handler`` for every message (or only ``topic`` if given)."""
        self._subscribers.append((topic, handler))
        self._snapshot = tuple(self._subscribers)

    def unsubscribe(self, handler: Callable[[Message], None]) -> None:
        self._subscribers = [(t, h) for t, h in self._subscribers if h is not handler]
        self._snapshot = tuple(self._subscribers)

    # ---------------------------------------------------------------- outages
    def add_outage(self, start: float, end: float) -> None:
        """Drop every message sent while ``start <= now < end`` (scripted fault)."""
        if end <= start:
            raise ValueError("outage end must be after start")
        self._outages.append((start, end))

    def in_outage(self, time: float) -> bool:
        if not self._outages:
            return False
        return any(start <= time < end for start, end in self._outages)

    # ---------------------------------------------------------------- sending
    def send(self, sender: str, topic: str, payload: Any) -> Message:  # repro-lint: hot
        """Send a message; returns the (pre-delivery) message record."""
        now = self.simulator.now
        message = Message(sender, topic, payload, now, next(self._sequence))
        self.sent += 1

        # Inlined guards: the common case (no outages, no loss, no jitter)
        # must not pay method calls per message on the hottest messaging
        # path.  This is the only place latency is sampled; the loud
        # _require_rng failure on mutated configs is preserved.  The two
        # drop causes are tested in the same short-circuit order as the old
        # combined condition (loss is only sampled outside an outage), so
        # rng draw sequences are unchanged.
        config = self.config
        obs = self._obs
        if obs is not None:
            obs.sent.value += 1
        if self._outages and self.in_outage(now):
            self.dropped += 1
            if obs is not None:
                obs.outage_hits.value += 1
                obs.dropped.value += 1
            return message
        if config.loss_probability > 0.0 and self._sample_loss():
            self.dropped += 1
            if obs is not None:
                obs.dropped.value += 1
            return message

        latency = config.latency_s
        if config.jitter_s > 0.0:
            latency += self._require_rng().uniform(-config.jitter_s, config.jitter_s)
            if latency < 0.0:
                latency = 0.0
        delivery_time = now + latency
        if config.bandwidth_msgs_per_s is not None:
            service_time = 1.0 / config.bandwidth_msgs_per_s
            start_service = max(delivery_time, self._busy_until)
            delivery_time = start_service + service_time
            self._busy_until = delivery_time

        batch = self._pending.get(delivery_time)
        if batch is not None:
            # Another message is already in flight for this exact instant:
            # ride its kernel event instead of scheduling a second one.
            batch.append(message)
        else:
            self._pending[delivery_time] = [message]
            self.simulator.schedule_at(
                delivery_time,
                self._deliver_batch_cb,
                name=self._deliver_name,
            )
        return message

    def _sample_loss(self) -> bool:
        if self.config.loss_probability <= 0:
            return False
        return bool(self._require_rng().random() < self.config.loss_probability)

    def _require_rng(self):
        # The constructor rejects random configs without an rng; this can
        # only trip if the config was mutated after construction.  Raising
        # beats the old silent fallback, which quietly ran loss/jitter
        # experiments on a deterministic link.
        rng = self._rng
        if rng is None:
            raise ValueError(
                f"channel {self.name!r} config now demands randomness "
                "(mutated after construction?) but the channel has no rng"
            )
        return rng

    def _deliver_batch(self) -> None:  # repro-lint: hot
        # The kernel fires this event at exactly the pending key's time (the
        # queue entry and the key are the same float object), so `now` IS the
        # batch key — no per-schedule closure needed to carry it.  Pop before
        # draining: a handler that sends another zero-remaining-latency
        # message for this same instant must get a fresh kernel event
        # (scheduled at now, running after this one), exactly as it did when
        # every message had its own event.
        batch = self._pending.pop(self.simulator.now)
        size = len(batch)
        if size > self.max_batch:
            self.max_batch = size
        if size > 1:
            self.coalesced_ticks += 1
            obs = self._obs
            if obs is not None:
                obs.coalesced_ticks.value += 1
                obs.max_batch.set_max(size)
        deliver = self._deliver
        for message in batch:
            deliver(message)

    def _deliver(self, message: Message) -> None:  # repro-lint: hot
        delivered = message.with_delivery(self.simulator.now)
        self.delivered += 1
        latency = delivered.latency or 0.0
        self._latency_sum += latency
        if latency > self._latency_max:
            self._latency_max = latency
        obs = self._obs
        if obs is not None:
            obs.delivered.value += 1
            obs.latency.observe(latency)
        if self.retain_messages:
            self.latencies.append(latency)
            self.delivered_messages.append(delivered)
        # Iterate a pre-built snapshot (updated on (un)subscribe) so handlers
        # mutating subscriptions cannot disturb the in-flight delivery.
        for topic, handler in self._snapshot:
            if topic is None or topic == message.topic:
                handler(delivered)

    # ------------------------------------------------------------- statistics
    @property
    def loss_rate(self) -> float:
        if self.sent == 0:
            return 0.0
        return self.dropped / self.sent

    @property
    def mean_latency(self) -> float:
        if self.delivered == 0:
            return 0.0
        return self._latency_sum / self.delivered

    @property
    def max_latency(self) -> float:
        return self._latency_max

    def stats(self) -> Dict[str, float]:
        return {
            "sent": float(self.sent),
            "delivered": float(self.delivered),
            "dropped": float(self.dropped),
            "loss_rate": self.loss_rate,
            "mean_latency": self.mean_latency,
            "max_latency": self.max_latency,
            "coalesced_ticks": float(self.coalesced_ticks),
            "max_batch": float(self.max_batch),
        }
