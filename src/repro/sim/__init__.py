"""Discrete-event simulation kernel.

The :mod:`repro.sim` package is the substrate on which every virtual medical
device, patient model, and middleware component in this repository runs.  It
provides:

* :class:`~repro.sim.kernel.Simulator` -- the event loop with a simulated
  clock, event scheduling, and process management.
* :class:`~repro.sim.kernel.Process` -- cooperative processes that interact
  with the simulator through scheduled callbacks and periodic activities.
* :class:`~repro.sim.channel.Channel` -- point-to-point and broadcast message
  channels with configurable latency, jitter, and loss, used to model the
  hospital network that interconnects medical devices.
* :class:`~repro.sim.faults.FaultInjector` -- scripted and stochastic fault
  injection (message loss bursts, device crashes, value corruption).
* :class:`~repro.sim.trace.TraceRecorder` -- time-stamped signal and event
  traces for analysis and plotting.
* :class:`~repro.sim.sampler.PeriodicSampler` -- the fixed-rate sampling
  backbone shared by devices and the patient model: precomputed signal
  names, batched ``record_many`` flushes, and the reschedule loop in one
  place.
* :class:`~repro.sim.random.RandomStreams` -- named, independently seeded
  random streams so experiments are reproducible stream-by-stream.
"""

from repro.sim.kernel import Event, Process, Simulator, SimulationError
from repro.sim.channel import Channel, ChannelConfig, Message
from repro.sim.faults import FaultInjector, FaultSpec
from repro.sim.sampler import BatchedTraceWriter, PeriodicSampler, SignalBatch
from repro.sim.trace import TraceRecorder, TracePoint
from repro.sim.random import RandomStreams, derive_seed

__all__ = [
    "BatchedTraceWriter",
    "PeriodicSampler",
    "SignalBatch",
    "Event",
    "Process",
    "Simulator",
    "SimulationError",
    "Channel",
    "ChannelConfig",
    "Message",
    "FaultInjector",
    "FaultSpec",
    "TraceRecorder",
    "TracePoint",
    "RandomStreams",
    "derive_seed",
]
