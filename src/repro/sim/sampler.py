"""Fixed-rate sampling backbone shared by devices and the patient model.

Every sensing device in this repository does the same three things on a
fixed period: run a sampling callback, publish readings, and append samples
to the :class:`~repro.sim.trace.TraceRecorder`.  Before this module each
device hand-rolled that loop through :meth:`Process.every` and paid, per
sample, an f-string to build the full signal name plus a recorder dict
lookup and cache invalidation.  The backbone hoists all of that out of the
per-sample path:

* :class:`SignalBatch` -- a slotted pending buffer for one signal whose full
  name (``"<producer>:<signal>"``) is computed exactly once, at declare time.
  Recording a sample is two list appends.
* :class:`BatchedTraceWriter` -- one producer's set of signal batches.  It
  registers a flush hook with the recorder so any *read* of the trace drains
  pending batches first (a read barrier); the data a query returns is always
  complete, no matter when batches were last flushed.
* :class:`PeriodicSampler` -- owns the reschedule loop (same event pattern
  and ``run_count`` semantics as :class:`~repro.sim.kernel.PeriodicTask`)
  and flushes its writer's batches through
  :meth:`~repro.sim.trace.TraceRecorder.record_many` every ``flush_every``
  ticks, amortising the recorder work over whole batches.

Determinism: batches preserve per-signal chronological order exactly, and
``record_many`` appends the very same float objects ``record`` would have,
so traces produced through the backbone are byte-identical to unbatched
recording.  The one rule is that each signal must have a single producer
(already true everywhere: signal names are prefixed with the producer id).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import sampler_instruments
from repro.sim.kernel import PeriodicTask, SimulationError, Simulator
from repro.sim.trace import TraceRecorder


class SignalBatch:
    """Pending samples of one signal, with the full name precomputed."""

    __slots__ = ("signal", "source", "times", "values")

    def __init__(self, signal: str, source: str = "") -> None:
        self.signal = signal
        self.source = source
        self.times: List[float] = []
        self.values: List[Any] = []

    def append(self, time: float, value: Any) -> None:
        """Record one sample: two list appends, nothing else."""
        self.times.append(time)
        self.values.append(value)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SignalBatch {self.signal!r} pending={len(self.times)}>"


class BatchedTraceWriter:
    """Batched trace front-end for one producer (a device or patient model).

    Signal names are declared once (:meth:`declare`) and every later sample
    lands in the per-signal batch.  The writer registers itself with the
    recorder so trace queries drain pending samples before returning.
    """

    __slots__ = ("trace", "source", "_prefix", "_batches", "_batch_list", "_obs")

    def __init__(self, trace: TraceRecorder, prefix: str, source: str = "") -> None:
        self.trace = trace
        self.source = source
        self._prefix = prefix
        self._batches: Dict[str, SignalBatch] = {}
        self._batch_list: List[SignalBatch] = []
        # Registry-backed flush metrics; None unless repro.obs was enabled
        # when this writer was constructed.
        self._obs = sampler_instruments()
        trace.register_pending(self.flush)

    def declare(self, signal: str) -> SignalBatch:
        """Precompute ``"<prefix>:<signal>"`` and return the signal's batch.

        Idempotent; devices call this at attach/init time for their known
        signals so the hot path never builds a name string.
        """
        batch = self._batches.get(signal)
        if batch is None:
            batch = SignalBatch(f"{self._prefix}:{signal}", source=self.source)
            self._batches[signal] = batch
            self._batch_list.append(batch)
        return batch

    def record(self, time: float, signal: str, value: Any) -> None:  # repro-lint: hot
        """Append a sample of ``signal`` (short name) at ``time``."""
        batch = self._batches.get(signal)
        if batch is None:
            batch = self.declare(signal)
        batch.times.append(time)
        batch.values.append(value)

    def flush(self) -> None:  # repro-lint: hot
        """Drain every non-empty batch into the recorder via ``record_many``."""
        trace = self.trace
        flushed = 0
        for batch in self._batch_list:
            if batch.times:
                flushed += len(batch.times)
                trace.record_many(batch.signal, batch.times, batch.values,
                                  source=batch.source)
                batch.times = []
                batch.values = []
        obs = self._obs
        if obs is not None and flushed:
            obs.flushes.value += 1
            obs.flushed_samples.value += flushed
            obs.flush_size.observe(flushed)

    def detach(self) -> None:
        """Flush and unregister from the recorder.

        Called when a producer replaces its writer (e.g. its ``trace``
        property is reassigned); without it the recorder would keep invoking
        — and keeping alive — every abandoned writer forever.
        """
        self.flush()
        self.trace.unregister_pending(self.flush)

    @property
    def pending(self) -> int:
        """Number of samples not yet flushed into the recorder."""
        return sum(len(batch.times) for batch in self._batch_list)


class PeriodicSampler(PeriodicTask):
    """A fixed-rate sampling loop with amortised trace flushing.

    Extends :class:`~repro.sim.kernel.PeriodicTask` — the reschedule loop is
    inherited, so kernel event counts and tie-break ordering are identical
    to ``call_every`` by construction — and adds: every ``flush_every``
    ticks the attached :class:`BatchedTraceWriter` is drained through
    ``record_many``.  A flush never schedules kernel events, so running it
    after the inherited tick leaves the event stream untouched.

    ``writer`` is a mutable attribute: producers whose ``trace`` is
    reassigned mid-lifecycle re-point their live samplers at the new writer.
    """

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        writer: Optional[BatchedTraceWriter] = None,
        name: str = "sampler",
        flush_every: int = 64,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        if flush_every < 1:
            raise SimulationError(f"flush_every must be >= 1, got {flush_every!r}")
        super().__init__(simulator, period, callback, name=name)
        self.writer = writer
        self.flush_every = flush_every
        self._ticks_since_flush = 0

    def start(self, first_time: Optional[float] = None) -> "PeriodicSampler":
        """Schedule the first tick (default: one period from now)."""
        if first_time is None:
            first_time = self._simulator.now + self.period
        super().start(first_time)
        return self

    def _tick(self) -> None:  # repro-lint: hot
        if self._cancelled:
            return
        super()._tick()
        writer = self.writer
        if writer is not None:
            self._ticks_since_flush += 1
            if self._ticks_since_flush >= self.flush_every:
                self._ticks_since_flush = 0
                writer.flush()

    def cancel(self) -> None:
        """Stop future ticks and flush whatever the loop still holds."""
        super().cancel()
        if self.writer is not None:
            self.writer.flush()
