"""Time-stamped signal and event traces.

Traces are the raw material for every experiment metric in this repository:
drug concentration curves, SpO2 series, alarm events, pump commands, and so
on are all recorded here and post-processed by :mod:`repro.analysis`.

Hot-path layout: each signal is a pair of growable parallel lists (times,
values) held in a ``__slots__`` buffer, so :meth:`TraceRecorder.record` is
two list appends.  The numpy conversions behind :meth:`times` /
:meth:`values` are cached per signal and invalidated on write — analysis
code calls them repeatedly per run, and rebuilding the arrays each call
dominated metric collection on large traces.

Batched producers (the :mod:`repro.sim.sampler` backbone) register a flush
hook via :meth:`TraceRecorder.register_pending`; every signal query drains
those hooks first, so readers always observe a complete trace regardless of
when a producer last flushed its batches.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TracePoint:
    """A single ``(time, value)`` sample of a named signal."""

    time: float
    signal: str
    value: Any
    source: str = ""


class _SignalBuffer:
    """Growable per-signal sample storage with cached array conversions."""

    __slots__ = ("times", "values", "_times_arr", "_values_arr")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[Any] = []
        self._times_arr: Optional[np.ndarray] = None
        self._values_arr: Optional[np.ndarray] = None

    def invalidate(self) -> None:
        self._times_arr = None
        self._values_arr = None

    def times_array(self) -> np.ndarray:
        arr = self._times_arr
        if arr is None:
            arr = np.asarray(self.times, dtype=float)
            arr.flags.writeable = False  # shared cache: mutation would corrupt it
            self._times_arr = arr
        return arr

    def values_array(self) -> np.ndarray:
        arr = self._values_arr
        if arr is None:
            arr = np.asarray(self.values, dtype=float)
            arr.flags.writeable = False
            self._values_arr = arr
        return arr


_EMPTY = np.array([], dtype=float)
_EMPTY.flags.writeable = False


class TraceRecorder:
    """Collects samples and discrete events emitted during a simulation run."""

    def __init__(self) -> None:
        self._signals: Dict[str, _SignalBuffer] = {}
        self._events: List[TracePoint] = []
        self._pending_flushes: List[Callable[[], None]] = []

    # --------------------------------------------------------- batched writers
    def register_pending(self, flush: Callable[[], None]) -> None:
        """Register a batched producer's flush hook (the read barrier).

        Queries call every registered hook before touching signal data, so a
        producer may hold samples in local batches arbitrarily long without
        readers ever seeing a stale trace.
        """
        self._pending_flushes.append(flush)

    def unregister_pending(self, flush: Callable[[], None]) -> None:
        """Remove a previously registered flush hook (writer replacement)."""
        try:
            self._pending_flushes.remove(flush)
        except ValueError:
            pass

    def _drain(self) -> None:
        for flush in self._pending_flushes:
            flush()

    # -------------------------------------------------------------- recording
    def record(self, time: float, signal: str, value: Any, source: str = "") -> None:  # repro-lint: hot
        """Append a sample of ``signal`` at ``time``."""
        buffer = self._signals.get(signal)
        if buffer is None:
            buffer = self._signals[signal] = _SignalBuffer()
        buffer.times.append(float(time))
        buffer.values.append(value)
        buffer._times_arr = None
        buffer._values_arr = None

    # repro-lint: hot
    def record_many(
        self,
        signal: str,
        times: Sequence[float],
        values: Sequence[Any],
        source: str = "",
    ) -> None:
        """Bulk-append samples of ``signal`` (periodic samplers, resamplers)."""
        if len(times) != len(values):
            raise ValueError(
                f"record_many needs equal-length sequences, got "
                f"{len(times)} times and {len(values)} values"
            )
        if len(times) == 0:  # not `not times`: numpy arrays reject bool()
            return
        if isinstance(values, np.ndarray):
            values = values.tolist()  # np scalars would break to_dict() JSON
        buffer = self._signals.get(signal)
        if buffer is None:
            buffer = self._signals[signal] = _SignalBuffer()
        # map(float, ...) returns the identical objects for exact floats, so
        # batched and unbatched recording produce the same trace bytes.
        buffer.times.extend(map(float, times))
        buffer.values.extend(values)
        buffer.invalidate()

    def event(self, time: float, signal: str, value: Any = None, source: str = "") -> None:
        """Record a discrete event (alarm raised, pump stopped, ...)."""
        self._events.append(TracePoint(time=float(time), signal=signal, value=value, source=source))

    # ---------------------------------------------------------------- queries
    def signals(self) -> List[str]:
        self._drain()
        return sorted(self._signals)

    def samples(self, signal: str) -> List[Tuple[float, Any]]:
        """All samples of ``signal`` in recording order."""
        self._drain()
        buffer = self._signals.get(signal)
        if buffer is None:
            return []
        return list(zip(buffer.times, buffer.values))

    def times(self, signal: str) -> np.ndarray:
        """Sample times as a float array (cached; treat as read-only)."""
        self._drain()
        buffer = self._signals.get(signal)
        if buffer is None:
            return _EMPTY
        return buffer.times_array()

    def values(self, signal: str) -> np.ndarray:
        """Sample values as a float array (cached; treat as read-only)."""
        self._drain()
        buffer = self._signals.get(signal)
        if buffer is None:
            return _EMPTY
        return buffer.values_array()

    def last(self, signal: str) -> Optional[Tuple[float, Any]]:
        self._drain()
        buffer = self._signals.get(signal)
        if buffer is None or not buffer.times:
            return None
        return (buffer.times[-1], buffer.values[-1])

    def value_at(self, signal: str, time: float) -> Optional[Any]:
        """Most recent sample of ``signal`` at or before ``time``.

        Samples are recorded in nondecreasing time order (the simulator clock
        never goes backwards and :meth:`merge` re-sorts), so this is a binary
        search rather than a scan.
        """
        self._drain()
        buffer = self._signals.get(signal)
        if buffer is None:
            return None
        index = bisect.bisect_right(buffer.times, time) - 1
        if index < 0:
            return None
        return buffer.values[index]

    def events(self, signal: Optional[str] = None) -> List[TracePoint]:
        if signal is None:
            return list(self._events)
        return [e for e in self._events if e.signal == signal]

    def count_events(self, signal: str) -> int:
        return sum(1 for e in self._events if e.signal == signal)

    def first_event_time(self, signal: str) -> Optional[float]:
        for e in self._events:
            if e.signal == signal:
                return e.time
        return None

    # -------------------------------------------------------------- summaries
    def duration_above(self, signal: str, threshold: float) -> float:
        """Total simulated time the (step-interpolated) signal exceeds ``threshold``."""
        return self._duration_where(signal, lambda v: v > threshold)

    def duration_below(self, signal: str, threshold: float) -> float:
        """Total simulated time the (step-interpolated) signal is below ``threshold``."""
        return self._duration_where(signal, lambda v: v < threshold)

    def _duration_where(self, signal: str, predicate) -> float:
        self._drain()
        buffer = self._signals.get(signal)
        if buffer is None or len(buffer.times) < 2:
            return 0.0
        times = buffer.times
        values = buffer.values
        total = 0.0
        # Sequential accumulation on purpose: a vectorised sum would change
        # rounding and break byte-identical run records across versions.
        for i in range(len(times) - 1):
            if predicate(values[i]):
                total += times[i + 1] - times[i]
        return total

    def max(self, signal: str) -> float:
        values = self.values(signal)
        if values.size == 0:
            raise KeyError(f"no samples recorded for signal {signal!r}")
        return float(values.max())

    def min(self, signal: str) -> float:
        values = self.values(signal)
        if values.size == 0:
            raise KeyError(f"no samples recorded for signal {signal!r}")
        return float(values.min())

    def mean(self, signal: str) -> float:
        values = self.values(signal)
        if values.size == 0:
            raise KeyError(f"no samples recorded for signal {signal!r}")
        return float(values.mean())

    def to_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot (used by EXPERIMENTS.md generation and tests)."""
        from repro.readings import Reading  # local: trace is below readings' consumers

        self._drain()
        return {
            "signals": {
                name: list(zip(buffer.times, buffer.values))
                for name, buffer in self._signals.items()
            },
            "events": [
                {
                    "time": e.time,
                    "signal": e.signal,
                    # Readings serialise as their legacy dict payload form, so
                    # trace snapshots stay plain-JSON (and byte-identical to
                    # the dict-payload era for unchanged runs).
                    "value": e.value.as_dict() if type(e.value) is Reading else e.value,
                    "source": e.source,
                }
                for e in self._events
            ],
        }

    def merge(self, other: "TraceRecorder") -> None:
        """Fold another recorder's data into this one (used by scenario composition)."""
        self._drain()
        other._drain()
        for name, other_buffer in other._signals.items():
            buffer = self._signals.get(name)
            if buffer is None:
                buffer = self._signals[name] = _SignalBuffer()
            combined = list(zip(buffer.times, buffer.values))
            combined.extend(zip(other_buffer.times, other_buffer.values))
            combined.sort(key=lambda sample: sample[0])
            buffer.times = [t for t, _ in combined]
            buffer.values = [v for _, v in combined]
            buffer.invalidate()
        self._events.extend(other._events)
        self._events.sort(key=lambda e: e.time)

    def __len__(self) -> int:
        self._drain()
        return sum(len(buffer.times) for buffer in self._signals.values()) + len(self._events)


def resample(samples: Iterable[Tuple[float, float]], times: np.ndarray) -> np.ndarray:
    """Step-interpolate ``samples`` onto ``times`` (last value carried forward)."""
    samples = list(samples)
    out = np.empty(len(times), dtype=float)
    if not samples:
        out.fill(np.nan)
        return out
    sample_times = np.array([t for t, _ in samples])
    sample_values = np.array([v for _, v in samples], dtype=float)
    idx = np.searchsorted(sample_times, times, side="right") - 1
    out = np.where(idx >= 0, sample_values[np.clip(idx, 0, None)], np.nan)
    return out
