"""Time-stamped signal and event traces.

Traces are the raw material for every experiment metric in this repository:
drug concentration curves, SpO2 series, alarm events, pump commands, and so
on are all recorded here and post-processed by :mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class TracePoint:
    """A single ``(time, value)`` sample of a named signal."""

    time: float
    signal: str
    value: Any
    source: str = ""


class TraceRecorder:
    """Collects samples and discrete events emitted during a simulation run."""

    def __init__(self) -> None:
        self._signals: Dict[str, List[Tuple[float, Any]]] = {}
        self._events: List[TracePoint] = []

    # -------------------------------------------------------------- recording
    def record(self, time: float, signal: str, value: Any, source: str = "") -> None:
        """Append a sample of ``signal`` at ``time``."""
        self._signals.setdefault(signal, []).append((float(time), value))

    def event(self, time: float, signal: str, value: Any = None, source: str = "") -> None:
        """Record a discrete event (alarm raised, pump stopped, ...)."""
        self._events.append(TracePoint(time=float(time), signal=signal, value=value, source=source))

    # ---------------------------------------------------------------- queries
    def signals(self) -> List[str]:
        return sorted(self._signals)

    def samples(self, signal: str) -> List[Tuple[float, Any]]:
        """All samples of ``signal`` in recording order."""
        return list(self._signals.get(signal, []))

    def times(self, signal: str) -> np.ndarray:
        return np.array([t for t, _ in self._signals.get(signal, [])], dtype=float)

    def values(self, signal: str) -> np.ndarray:
        return np.array([v for _, v in self._signals.get(signal, [])], dtype=float)

    def last(self, signal: str) -> Optional[Tuple[float, Any]]:
        samples = self._signals.get(signal)
        return samples[-1] if samples else None

    def value_at(self, signal: str, time: float) -> Optional[Any]:
        """Most recent sample of ``signal`` at or before ``time``."""
        best = None
        for t, v in self._signals.get(signal, []):
            if t <= time:
                best = v
            else:
                break
        return best

    def events(self, signal: Optional[str] = None) -> List[TracePoint]:
        if signal is None:
            return list(self._events)
        return [e for e in self._events if e.signal == signal]

    def count_events(self, signal: str) -> int:
        return sum(1 for e in self._events if e.signal == signal)

    def first_event_time(self, signal: str) -> Optional[float]:
        for e in self._events:
            if e.signal == signal:
                return e.time
        return None

    # -------------------------------------------------------------- summaries
    def duration_above(self, signal: str, threshold: float) -> float:
        """Total simulated time the (step-interpolated) signal exceeds ``threshold``."""
        return self._duration_where(signal, lambda v: v > threshold)

    def duration_below(self, signal: str, threshold: float) -> float:
        """Total simulated time the (step-interpolated) signal is below ``threshold``."""
        return self._duration_where(signal, lambda v: v < threshold)

    def _duration_where(self, signal: str, predicate) -> float:
        samples = self._signals.get(signal, [])
        if len(samples) < 2:
            return 0.0
        total = 0.0
        for (t0, v0), (t1, _v1) in zip(samples, samples[1:]):
            if predicate(v0):
                total += t1 - t0
        return total

    def max(self, signal: str) -> float:
        values = self.values(signal)
        if values.size == 0:
            raise KeyError(f"no samples recorded for signal {signal!r}")
        return float(values.max())

    def min(self, signal: str) -> float:
        values = self.values(signal)
        if values.size == 0:
            raise KeyError(f"no samples recorded for signal {signal!r}")
        return float(values.min())

    def mean(self, signal: str) -> float:
        values = self.values(signal)
        if values.size == 0:
            raise KeyError(f"no samples recorded for signal {signal!r}")
        return float(values.mean())

    def to_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot (used by EXPERIMENTS.md generation and tests)."""
        return {
            "signals": {name: list(samples) for name, samples in self._signals.items()},
            "events": [
                {"time": e.time, "signal": e.signal, "value": e.value, "source": e.source}
                for e in self._events
            ],
        }

    def merge(self, other: "TraceRecorder") -> None:
        """Fold another recorder's data into this one (used by scenario composition)."""
        for name, samples in other._signals.items():
            self._signals.setdefault(name, []).extend(samples)
            self._signals[name].sort(key=lambda sample: sample[0])
        self._events.extend(other._events)
        self._events.sort(key=lambda e: e.time)

    def __len__(self) -> int:
        return sum(len(s) for s in self._signals.values()) + len(self._events)


def resample(samples: Iterable[Tuple[float, float]], times: np.ndarray) -> np.ndarray:
    """Step-interpolate ``samples`` onto ``times`` (last value carried forward)."""
    samples = list(samples)
    out = np.empty(len(times), dtype=float)
    if not samples:
        out.fill(np.nan)
        return out
    sample_times = np.array([t for t, _ in samples])
    sample_values = np.array([v for _, v in samples], dtype=float)
    idx = np.searchsorted(sample_times, times, side="right") - 1
    out = np.where(idx >= 0, sample_values[np.clip(idx, 0, None)], np.nan)
    return out
