"""Core discrete-event simulation kernel.

The kernel is intentionally small and deterministic: events scheduled at the
same simulated time are executed in FIFO order of their scheduling sequence
number, so a simulation run is a pure function of its inputs and seeds.

Hot-path layout: the heap holds plain ``(time, priority, sequence, event)``
tuples so every heap comparison is a C-level tuple comparison, and
:class:`Event` is a ``__slots__`` class carrying only per-event state.  The
simulator tracks the live (queued, not cancelled) event count incrementally,
which keeps :meth:`Simulator.pending` O(1) and lets :meth:`Simulator.peek`
lazily discard cancelled heads instead of scanning the queue.
"""

from __future__ import annotations

import itertools
import math
from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import kernel_instruments


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, running twice, ...)."""


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, sequence)``.  ``priority`` lets
    callers force ordering between events scheduled for the same instant
    (lower runs first); ``sequence`` guarantees FIFO order otherwise.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "name",
                 "cancelled", "_sim", "_in_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], None],
        name: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.name = name
        self.cancelled = cancelled
        self._sim: Optional["Simulator"] = None
        self._in_queue = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            if self._in_queue and self._sim is not None:
                sim = self._sim
                sim._live -= 1
                if sim._metrics is not None:
                    sim._metrics.events_cancelled.value += 1

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = " cancelled" if self.cancelled else ""
        return (f"<Event t={self.time} prio={self.priority} "
                f"seq={self.sequence} {self.name!r}{state}>")


#: Heap entry layout: comparisons never reach the (incomparable) Event.
_QueueEntry = Tuple[float, int, int, Event]


class Simulator:
    """Discrete-event simulator with a floating-point clock (seconds).

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.run(until=10.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._running = False
        self._stopped = False
        self._processes: List["Process"] = []
        self._event_count = 0
        self._live = 0  # queued and not cancelled; kept exact incrementally
        # Observability: None unless repro.obs is enabled at construction
        # time, so the disabled hot path pays one attribute check at most.
        self._metrics = kernel_instruments()
        self._profiler = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of events executed so far (useful for cost accounting)."""
        return self._event_count

    # ------------------------------------------------------------ scheduling
    # repro-lint: hot
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule event with delay {delay!r}")
        # Inlined push (rather than delegating to schedule_at): this is the
        # single hottest call in every simulation.  delay >= 0 makes the
        # past-check redundant; only finiteness can still fail.
        time = self._now + delay
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule event at non-finite time {time!r}")
        sequence = next(self._sequence)
        event = Event(time, priority, sequence, callback, name)
        event._sim = self
        event._in_queue = True
        heappush(self._queue, (time, priority, sequence, event))
        self._live += 1
        metrics = self._metrics
        if metrics is not None:
            depth = len(self._queue)
            if depth > metrics.heap_peak:
                metrics.heap_peak = depth
        return event

    # repro-lint: hot
    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule event at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self._now}, requested={time})"
            )
        time = float(time)
        sequence = next(self._sequence)
        event = Event(time, priority, sequence, callback, name)
        event._sim = self
        event._in_queue = True
        heappush(self._queue, (time, priority, sequence, event))
        self._live += 1
        metrics = self._metrics
        if metrics is not None:
            depth = len(self._queue)
            if depth > metrics.heap_peak:
                metrics.heap_peak = depth
        return event

    def call_every(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        start: Optional[float] = None,
        name: str = "",
    ) -> "PeriodicTask":
        """Run ``callback`` every ``period`` seconds until cancelled."""
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        task = PeriodicTask(self, period, callback, name=name)
        first = self._now + period if start is None else start
        task.start(first)
        return task

    # --------------------------------------------------------------- running
    # repro-lint: hot
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue empties, ``until`` is reached, or stop().

        Returns the simulated time at which the run finished.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        queue = self._queue
        pop = heappop
        # Sentinel bounds keep the per-event checks to two comparisons.
        time_bound = math.inf if until is None else until
        count_bound = math.inf if max_events is None else max_events
        # Hoisted observability state: with obs disabled both are None and
        # the loop pays one local is-None check per event (profiler) plus
        # nothing at all for metrics (accounted as deltas after the loop).
        profiler = self._profiler
        metrics = self._metrics
        if metrics is not None:
            fired_before = self._event_count
            sim_before = self._now
            wall_before = perf_counter()
        try:
            while queue:
                if self._stopped:
                    break
                if self._event_count >= count_bound:
                    break
                entry = queue[0]
                time = entry[0]
                if time > time_bound:
                    self._now = until
                    break
                pop(queue)
                event = entry[3]
                event._in_queue = False
                if event.cancelled:
                    continue
                self._live -= 1
                self._now = time
                self._event_count += 1
                if profiler is None:
                    event.callback()
                else:
                    profiler.dispatch(event)
            else:
                if until is not None and self._now < until:
                    self._now = until
        finally:
            self._running = False
            if metrics is not None:
                metrics.flush_run(self._event_count - fired_before,
                                  self._now - sim_before,
                                  perf_counter() - wall_before)
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        queue = self._queue
        while queue:
            entry = heappop(queue)
            event = entry[3]
            event._in_queue = False
            if event.cancelled:
                continue
            self._live -= 1
            self._now = entry[0]
            self._event_count += 1
            event.callback()
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue.  O(1)."""
        return self._live

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty.

        Cancelled events sitting at the head are discarded lazily, so a
        scenario polling ``peek`` in a loop stays O(log n) amortised instead
        of sorting the queue on every call.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[3].cancelled:
                heappop(queue)
                entry[3]._in_queue = False
                continue
            return entry[0]
        return None

    # ---------------------------------------------------------- observability
    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.obs.SamplingProfiler` to the dispatch loop.

        Takes effect on the next :meth:`run` call (the loop hoists the
        profiler reference once, so attaching mid-run has no effect on the
        segment already executing).
        """
        self._profiler = profiler

    def detach_profiler(self) -> None:
        """Remove the attached profiler (next :meth:`run` is uninstrumented)."""
        self._profiler = None

    # ------------------------------------------------------------- processes
    def register(self, process: "Process") -> None:
        """Attach a process to this simulator and call its ``start`` hook."""
        self._processes.append(process)
        process.bind(self)
        process.start()

    @property
    def processes(self) -> List["Process"]:
        return list(self._processes)


class PeriodicTask:
    """A recurring callback managed by :meth:`Simulator.call_every`."""

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        callback: Callable[[], None],
        name: str = "",
    ) -> None:
        self._simulator = simulator
        self.period = period
        self._callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self._cancelled = False
        self.run_count = 0

    def start(self, first_time: float) -> None:
        self._event = self._simulator.schedule_at(first_time, self._tick, name=self.name)

    def _tick(self) -> None:
        if self._cancelled:
            return
        self.run_count += 1
        self._callback()
        if not self._cancelled:
            self._event = self._simulator.schedule(self.period, self._tick, name=self.name)

    def cancel(self) -> None:
        """Stop future executions; an in-flight callback is not interrupted."""
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Process:
    """Base class for simulation actors (devices, patients, supervisors).

    Subclasses override :meth:`start` to schedule their initial activity and
    may use :meth:`after` / :meth:`every` as convenience wrappers around the
    simulator's scheduling API.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._simulator: Optional[Simulator] = None
        self._tasks: List[PeriodicTask] = []

    # ------------------------------------------------------------- lifecycle
    def bind(self, simulator: Simulator) -> None:
        self._simulator = simulator

    def start(self) -> None:  # pragma: no cover - default hook does nothing
        """Hook called when the process is registered with a simulator."""

    # ------------------------------------------------------------ scheduling
    @property
    def simulator(self) -> Simulator:
        if self._simulator is None:
            raise SimulationError(f"process {self.name!r} is not bound to a simulator")
        return self._simulator

    @property
    def now(self) -> float:
        return self.simulator.now

    def after(self, delay: float, callback: Callable[[], None], **kwargs: Any) -> Event:
        return self.simulator.schedule(delay, callback, name=f"{self.name}:{callback.__name__}", **kwargs)

    def every(self, period: float, callback: Callable[[], None], **kwargs: Any) -> PeriodicTask:
        task = self.simulator.call_every(period, callback, name=f"{self.name}:{callback.__name__}", **kwargs)
        self._tasks.append(task)
        return task

    def cancel_all(self) -> None:
        """Cancel every periodic task this process started."""
        for task in self._tasks:
            task.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.name!r}>"


def build_simulator(config: Optional[Dict[str, Any]] = None) -> Simulator:
    """Convenience factory used by scenario builders.

    ``config`` may carry a ``start_time`` key; everything else is ignored so
    callers can pass their full scenario configuration dict straight through.
    """
    config = config or {}
    return Simulator(start_time=float(config.get("start_time", 0.0)))
