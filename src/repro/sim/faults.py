"""Fault injection for MCPS experiments.

The paper requires the supervisor to be "tolerant to faults that interfere
with the control loop, in particular communication failures between the
devices" (Section II(c)).  :class:`FaultInjector` schedules scripted or
stochastic faults against channels and devices so the experiments in
``benchmarks/`` can quantify how the closed-loop system degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.obs import metrics as obs_metrics
from repro.sim.channel import Channel
from repro.sim.kernel import Simulator


FAULT_KINDS = (
    "channel_outage",       # drop all messages on a channel for a duration
    "device_crash",         # call the device's crash() hook
    "device_restart",       # call the device's restart() hook
    "value_corruption",     # call a corruption hook with a multiplier
    "stuck_sensor",         # freeze sensor output for a duration
    "misprogramming",       # reprogram a pump with wrong parameters
    "pca_by_proxy",         # extra bolus requests not from the patient
    "custom",               # arbitrary callable
)


@dataclass
class FaultSpec:
    """Declarative description of one fault to inject.

    kind:
        One of :data:`FAULT_KINDS`.
    start:
        Simulated time at which the fault begins.
    duration:
        For faults with an extent (outages, stuck sensors); 0 for point faults.
    target:
        Name of the channel/device the fault applies to.
    parameters:
        Kind-specific parameters (e.g. ``{"rate_multiplier": 4.0}`` for
        misprogramming).
    """

    kind: str
    start: float
    duration: float = 0.0
    target: str = ""
    parameters: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.start < 0:
            raise ValueError("fault start must be non-negative")
        if self.duration < 0:
            raise ValueError("fault duration must be non-negative")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "target": self.target,
            "parameters": dict(self.parameters),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        unknown = sorted(set(data) - {"kind", "start", "duration", "target",
                                      "parameters"})
        if unknown:
            raise ValueError(f"unknown fault spec fields: {unknown}")
        if "kind" not in data or "start" not in data:
            raise ValueError("fault spec requires 'kind' and 'start'")
        return cls(
            kind=data["kind"],
            start=float(data["start"]),
            duration=float(data.get("duration", 0.0)),
            target=str(data.get("target", "")),
            parameters=dict(data.get("parameters", {})),
        )


def fault_plan_specs(plan: Sequence[Mapping[str, Any]]) -> List[FaultSpec]:
    """Compile a declarative campaign ``fault_plan`` into fault specs.

    This is the bridge a scenario runner uses to honour the ``faults``
    block of a :class:`~repro.campaign.spec.CampaignSpec`: each entry of the
    resolved plan (a plain JSON dict, so it survives manifests and worker
    boundaries) becomes one :class:`FaultSpec` to arm on the injector.
    """
    return [FaultSpec.from_dict(entry) for entry in plan]


class FaultInjector:
    """Applies :class:`FaultSpec` records to a running simulation.

    Channels are registered by name with :meth:`register_channel`; devices
    (or any object exposing the hooks named in the fault kinds) with
    :meth:`register_device`.  Calling :meth:`arm` schedules all faults
    exactly once; faults :meth:`add`-ed afterwards are scheduled
    immediately, so nothing added to a live injector can silently never
    fire.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._channels: Dict[str, Channel] = {}
        self._devices: Dict[str, Any] = {}
        self._specs: List[FaultSpec] = []
        self._custom_handlers: Dict[str, Callable[[FaultSpec], None]] = {}
        self.injected: List[FaultSpec] = []
        self._armed = False
        self._instruments = obs_metrics.campaign_instruments()

    # ---------------------------------------------------------- registration
    def register_channel(self, channel: Channel) -> None:
        self._channels[channel.name] = channel

    def register_device(self, name: str, device: Any) -> None:
        self._devices[name] = device

    def register_custom(self, name: str, handler: Callable[[FaultSpec], None]) -> None:
        """Register a handler for ``kind='custom'`` faults targeting ``name``."""
        self._custom_handlers[name] = handler

    def add(self, spec: FaultSpec) -> None:
        """Register one fault; scheduled now if the injector is already armed.

        Before :meth:`arm` this only records the spec.  After :meth:`arm`
        the spec is scheduled immediately — previously it was silently
        dropped, the worst possible failure mode for a fault campaign that
        believes it injected something.
        """
        self._specs.append(spec)
        if self._armed:
            self._schedule(spec)

    def extend(self, specs: List[FaultSpec]) -> None:
        for spec in specs:
            self.add(spec)

    @property
    def specs(self) -> List[FaultSpec]:
        return list(self._specs)

    @property
    def armed(self) -> bool:
        return self._armed

    # --------------------------------------------------------------- arming
    def arm(self) -> None:
        """Schedule every added fault on the simulator (once only).

        Calling :meth:`arm` twice used to double-schedule every fault —
        outages applied twice, twice the proxy boluses — so a second call
        is a hard error rather than a silent corruption of the experiment.
        """
        if self._armed:
            raise RuntimeError(
                "FaultInjector.arm() called twice; faults are scheduled once "
                "(add() after arm() schedules the new fault immediately)"
            )
        self._armed = True
        for spec in self._specs:
            self._schedule(spec)

    def _schedule(self, spec: FaultSpec) -> None:
        # add()-after-arm() may carry a start already in the past (generated
        # fault plans are laid out against t=0, not against when the injector
        # learns about them).  The kernel rejects stale times, so clamp to
        # ``now``: the fault still fires, with its extent measured from the
        # original spec (``spec.end`` is unchanged).
        start = spec.start
        if start < self.simulator.now:
            start = self.simulator.now
        self.simulator.schedule_at(
            start,
            lambda s=spec: self._apply(s),
            name=f"fault:{spec.kind}:{spec.target}",
        )

    # ------------------------------------------------------------- appliers
    def _apply(self, spec: FaultSpec) -> None:
        self.injected.append(spec)
        if self._instruments is not None:
            self._instruments.faults_injected.value += 1
        if spec.kind == "channel_outage":
            self._apply_channel_outage(spec)
        elif spec.kind == "device_crash":
            self._call_device(spec, "crash")
        elif spec.kind == "device_restart":
            self._call_device(spec, "restart")
        elif spec.kind == "value_corruption":
            self._call_device(spec, "corrupt", spec.parameters)
        elif spec.kind == "stuck_sensor":
            self._apply_stuck_sensor(spec)
        elif spec.kind == "misprogramming":
            self._call_device(spec, "reprogram", spec.parameters)
        elif spec.kind == "pca_by_proxy":
            self._call_device(spec, "proxy_request", spec.parameters)
        elif spec.kind == "custom":
            handler = self._custom_handlers.get(spec.target)
            if handler is None:
                raise KeyError(f"no custom fault handler registered for {spec.target!r}")
            handler(spec)

    def _apply_channel_outage(self, spec: FaultSpec) -> None:
        channel = self._channels.get(spec.target)
        if channel is None:
            raise KeyError(f"fault targets unknown channel {spec.target!r}")
        channel.add_outage(spec.start, spec.end)

    def _apply_stuck_sensor(self, spec: FaultSpec) -> None:
        device = self._require_device(spec)
        freeze = getattr(device, "freeze", None)
        unfreeze = getattr(device, "unfreeze", None)
        if freeze is None or unfreeze is None:
            raise AttributeError(
                f"device {spec.target!r} does not support stuck_sensor faults "
                "(missing freeze/unfreeze hooks)"
            )
        freeze()
        if spec.duration > 0:
            self.simulator.schedule_at(spec.end, unfreeze, name=f"fault:unfreeze:{spec.target}")

    def _call_device(self, spec: FaultSpec, hook: str, parameters: Optional[Dict[str, Any]] = None) -> None:
        device = self._require_device(spec)
        method = getattr(device, hook, None)
        if method is None:
            raise AttributeError(f"device {spec.target!r} has no {hook}() hook for fault {spec.kind!r}")
        if parameters:
            method(**parameters)
        else:
            method()

    def _require_device(self, spec: FaultSpec) -> Any:
        device = self._devices.get(spec.target)
        if device is None:
            raise KeyError(f"fault targets unknown device {spec.target!r}")
        return device


def communication_failure_campaign(
    channel_name: str,
    first_start: float,
    outage_duration: float,
    period: float,
    count: int,
) -> List[FaultSpec]:
    """Build a periodic channel-outage campaign (used by the E2 delay bench)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [
        FaultSpec(
            kind="channel_outage",
            start=first_start + i * period,
            duration=outage_duration,
            target=channel_name,
        )
        for i in range(count)
    ]
