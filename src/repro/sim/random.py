"""Named, independently seeded random streams.

Medical CPS experiments compare configurations (e.g. open-loop vs closed-loop
PCA) on *the same* patient population and fault schedule.  To make such
comparisons paired rather than confounded by random-number consumption order,
every stochastic component draws from its own named stream derived
deterministically from a master seed.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive an unsigned 64-bit seed for ``name`` from ``master_seed``.

    The derivation is position-independent: it depends only on the pair
    ``(master_seed, name)``, never on how many seeds were derived before.
    Campaign workers use this to seed each run from its stable run
    identifier, so a run's randomness is identical whether it executes
    serially, in a worker pool, or alone during a resume.
    """
    if master_seed < 0:
        raise ValueError("master_seed must be non-negative")
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of named :class:`numpy.random.Generator` streams.

    Two :class:`RandomStreams` built from the same master seed hand out
    identical generators for identical names, regardless of the order the
    names are requested in.
    """

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError("master_seed must be non-negative")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def _seed_for(self, name: str) -> int:
        return derive_seed(self.master_seed, name)

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._seed_for(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are independent of the parent's."""
        return RandomStreams(self._seed_for(name) % (2**31 - 1))

    def reset(self) -> None:
        """Forget all handed-out streams so the next request re-seeds them."""
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RandomStreams(master_seed={self.master_seed}, streams={sorted(self._streams)})"
