"""Operational semantics of clinical scenario procedures.

The interpreter executes the caregiver procedure graph step by step: each
step is performed (taking its expected duration), an outcome is chosen (by a
scripted environment or a stochastic model), and control moves to the step
that handles the outcome.  Unhandled outcomes and steps that never terminate
are surfaced as execution errors -- the dynamic counterpart of the static
checks in :mod:`repro.workflow.analysis`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.workflow.spec import ClinicalScenario, ProcedureStep


class StepStatus(enum.Enum):
    COMPLETED = "completed"
    UNHANDLED_OUTCOME = "unhandled_outcome"
    TIMEOUT = "timeout"


@dataclass
class ExecutedStep:
    """Record of one executed procedure step."""

    step_id: str
    role: str
    started_at: float
    finished_at: float
    outcome: str
    status: StepStatus


@dataclass
class ExecutionResult:
    """Outcome of interpreting one procedure run."""

    completed: bool
    steps: List[ExecutedStep] = field(default_factory=list)
    total_duration_s: float = 0.0
    error: Optional[str] = None

    @property
    def visited_step_ids(self) -> List[str]:
        return [step.step_id for step in self.steps]


class ScenarioInterpreter:
    """Executes a scenario's caregiver procedure against an outcome oracle."""

    def __init__(
        self,
        scenario: ClinicalScenario,
        *,
        outcome_oracle: Optional[Callable[[ProcedureStep], str]] = None,
        max_steps: int = 200,
    ) -> None:
        if max_steps <= 0:
            raise ValueError("max_steps must be positive")
        self.scenario = scenario
        self.outcome_oracle = outcome_oracle or (lambda step: "ok")
        self.max_steps = max_steps

    def run(self, *, start_step_id: Optional[str] = None) -> ExecutionResult:
        """Interpret the procedure from its initial step (or ``start_step_id``)."""
        result = ExecutionResult(completed=False)
        if start_step_id is not None:
            current: Optional[ProcedureStep] = self.scenario.step(start_step_id)
        else:
            initial = self.scenario.initial_steps()
            if not initial:
                result.error = "scenario has no initial procedure step"
                return result
            if len(initial) > 1:
                result.error = "scenario has multiple initial steps; start is ambiguous"
                return result
            current = initial[0]

        time = 0.0
        for _ in range(self.max_steps):
            if current is None:
                break
            started = time
            time += current.expected_duration_s
            outcome = self.outcome_oracle(current)

            if not current.next_steps:
                # Terminal step: any outcome completes the procedure.
                result.steps.append(
                    ExecutedStep(current.step_id, current.role, started, time, outcome, StepStatus.COMPLETED)
                )
                result.completed = True
                result.total_duration_s = time
                return result

            next_id = current.next_steps.get(outcome)
            if next_id is None:
                result.steps.append(
                    ExecutedStep(
                        current.step_id, current.role, started, time, outcome, StepStatus.UNHANDLED_OUTCOME
                    )
                )
                result.error = (
                    f"step {current.step_id!r} has no transition for outcome {outcome!r}; "
                    "the caregiver instructions do not cover this situation"
                )
                result.total_duration_s = time
                return result

            result.steps.append(
                ExecutedStep(current.step_id, current.role, started, time, outcome, StepStatus.COMPLETED)
            )
            current = self.scenario.step(next_id)

        result.error = f"procedure did not terminate within {self.max_steps} steps"
        result.total_duration_s = time
        return result

    # ---------------------------------------------------------- explorations
    def explore_all_outcomes(self, outcomes_per_step: Dict[str, List[str]]) -> List[ExecutionResult]:
        """Exhaustively explore every combination of listed outcomes.

        ``outcomes_per_step`` maps step ids to the outcome labels the
        environment may produce at that step; the exploration enumerates all
        paths (bounded by ``max_steps``) and returns every resulting
        execution.  Used by the fault-effect analysis.
        """
        results: List[ExecutionResult] = []

        def oracle_factory(choices: Dict[str, str]):
            return lambda step: choices.get(step.step_id, "ok")

        def recurse(choices: Dict[str, str], remaining: List[str]) -> None:
            if not remaining:
                interpreter = ScenarioInterpreter(
                    self.scenario, outcome_oracle=oracle_factory(choices), max_steps=self.max_steps
                )
                results.append(interpreter.run())
                return
            step_id = remaining[0]
            for outcome in outcomes_per_step[step_id]:
                recurse({**choices, step_id: outcome}, remaining[1:])

        recurse({}, sorted(outcomes_per_step))
        return results
