"""Clinical scenario description language.

A :class:`ClinicalScenario` captures exactly the five elements Section III(e)
of the paper lists:

* devices necessary for the implementation of the scenario
  (:class:`DeviceRole`),
* requirements for data flows between the devices and the patient
  (:class:`DataFlow`),
* caregiver roles required for the scenario (:class:`CaregiverRole`),
* operational procedures for each caregiver role (:class:`ProcedureStep`
  graphs), and
* decision logic for the closed-loop control between devices
  (:class:`DecisionRule`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class DeviceRole:
    """A device needed by the scenario, described by capability not identity."""

    role: str
    device_type: str
    required_topics: Tuple[str, ...] = ()
    required_commands: Tuple[str, ...] = ()
    description: str = ""


@dataclass(frozen=True)
class DataFlow:
    """A required data flow from a source role to a destination role.

    max_latency_s / max_period_s:
        The timing requirement the implementation must meet (used to generate
        the timed-interface checks of Section III(f)).
    """

    source_role: str
    topic: str
    destination_role: str
    max_latency_s: float = 1.0
    max_period_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_latency_s <= 0 or self.max_period_s <= 0:
            raise ValueError("data flow timing bounds must be positive")


@dataclass(frozen=True)
class CaregiverRole:
    """A human role the scenario requires (and what it is responsible for)."""

    role: str
    description: str = ""
    responsibilities: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ProcedureStep:
    """One step of a caregiver's operational procedure.

    next_steps:
        Mapping of outcome label -> next step id.  An empty mapping marks a
        terminal step.  The analysis flags outcomes that no step handles and
        steps that are unreachable.
    """

    step_id: str
    role: str
    action: str
    next_steps: Dict[str, str] = field(default_factory=dict)
    is_initial: bool = False
    expected_duration_s: float = 60.0


@dataclass(frozen=True)
class DecisionRule:
    """A closed-loop decision rule: when ``condition`` holds, send ``command``.

    condition:
        Predicate over the latest observations dict (topic -> value).
    target_role:
        The device role receiving the command.
    priority:
        Rules are evaluated highest priority first; the first rule whose
        condition holds fires (so safety rules can pre-empt comfort rules).
    """

    name: str
    condition: Callable[[Dict[str, float]], bool]
    target_role: str
    command: str
    parameters: Dict[str, object] = field(default_factory=dict)
    priority: int = 0
    description: str = ""


@dataclass
class ClinicalScenario:
    """A complete executable clinical scenario specification."""

    name: str
    description: str = ""
    device_roles: List[DeviceRole] = field(default_factory=list)
    data_flows: List[DataFlow] = field(default_factory=list)
    caregiver_roles: List[CaregiverRole] = field(default_factory=list)
    procedure: List[ProcedureStep] = field(default_factory=list)
    decision_rules: List[DecisionRule] = field(default_factory=list)

    # ------------------------------------------------------------- accessors
    def device_role(self, role: str) -> DeviceRole:
        for device_role in self.device_roles:
            if device_role.role == role:
                return device_role
        raise KeyError(f"scenario {self.name!r} has no device role {role!r}")

    def caregiver_role(self, role: str) -> CaregiverRole:
        for caregiver_role in self.caregiver_roles:
            if caregiver_role.role == role:
                return caregiver_role
        raise KeyError(f"scenario {self.name!r} has no caregiver role {role!r}")

    def step(self, step_id: str) -> ProcedureStep:
        for step in self.procedure:
            if step.step_id == step_id:
                return step
        raise KeyError(f"scenario {self.name!r} has no procedure step {step_id!r}")

    def initial_steps(self) -> List[ProcedureStep]:
        return [step for step in self.procedure if step.is_initial]

    def steps_for_role(self, role: str) -> List[ProcedureStep]:
        return [step for step in self.procedure if step.role == role]

    def sorted_decision_rules(self) -> List[DecisionRule]:
        return sorted(self.decision_rules, key=lambda rule: -rule.priority)

    @property
    def topics_consumed(self) -> List[str]:
        return sorted({flow.topic for flow in self.data_flows})
