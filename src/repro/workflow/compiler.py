"""Compilation of clinical scenarios into runtime components.

"A model of the scenario can be compiled into run-time components that will
provide decision support for caregivers, detect device incompatibilities, and
help recover from faults." (Section III(e))

Two outputs are produced:

* :func:`device_requirements` -- the deployment-time device requirements fed
  to :meth:`repro.middleware.registry.DeviceRegistry.match`, and
* :func:`compile_scenario` -- a :class:`CompiledScenarioApp`, a
  :class:`~repro.middleware.supervisor_host.SupervisorApp` that subscribes to
  the scenario's data-flow topics and evaluates its decision rules each step,
  sending commands to the devices assigned to the target roles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.middleware.qos import TopicQoS
from repro.middleware.registry import DeviceRequirement
from repro.middleware.supervisor_host import SupervisorApp
from repro.readings import coerce_reading
from repro.sim.channel import Message
from repro.workflow.spec import ClinicalScenario, DecisionRule


def device_requirements(scenario: ClinicalScenario) -> List[DeviceRequirement]:
    """Generate deployment-time device requirements from a scenario."""
    requirements = []
    for role in scenario.device_roles:
        requirements.append(
            DeviceRequirement(
                role=role.role,
                device_type=role.device_type or None,
                required_topics=tuple(role.required_topics),
                required_commands=tuple(role.required_commands),
            )
        )
    return requirements


@dataclass
class FiredRule:
    time: float
    rule: str
    target_device: str
    command: str
    issued: bool


class CompiledScenarioApp(SupervisorApp):
    """A supervisor app generated from a scenario's decision rules."""

    def __init__(
        self,
        scenario: ClinicalScenario,
        role_assignments: Dict[str, str],
        *,
        step_period_s: float = 2.0,
        data_staleness_limit_s: float = 30.0,
    ) -> None:
        super().__init__(app_id=f"compiled:{scenario.name}")
        missing = {
            rule.target_role for rule in scenario.decision_rules
        } - set(role_assignments)
        if missing:
            raise ValueError(f"no device assigned to decision-rule target roles: {sorted(missing)}")
        self.scenario = scenario
        self.role_assignments = dict(role_assignments)
        self.step_period_s = step_period_s
        self.subscriptions = tuple(scenario.topics_consumed)
        self.qos_contracts = tuple(
            TopicQoS(topic=flow.topic, max_age_s=max(flow.max_period_s * 3.0, data_staleness_limit_s))
            for flow in scenario.data_flows
        )
        self._latest: Dict[str, float] = {}
        self.fired_rules: List[FiredRule] = []
        self._rule_engaged: Dict[str, bool] = {rule.name: False for rule in scenario.decision_rules}

    # ------------------------------------------------------------------ data
    def on_data(self, topic: str, payload: Any, message: Message) -> None:
        # Route every payload through the Reading shim: slotted Readings,
        # legacy {"value": ...} dicts, and bare numbers all update the latest
        # observation; command parameters and status dicts (no value field)
        # are not observations and are ignored.
        reading = coerce_reading(payload, default_time=message.sent_at)
        if reading is not None and reading.valid:
            self._latest[topic] = float(reading.value)

    @property
    def observations(self) -> Dict[str, float]:
        return dict(self._latest)

    # ------------------------------------------------------------------ step
    def step(self, now: float) -> None:
        for rule in self.scenario.sorted_decision_rules():
            try:
                condition_holds = bool(rule.condition(self._latest))
            except KeyError:
                # Rule references data not yet observed: cannot evaluate.
                continue
            if condition_holds and not self._rule_engaged[rule.name]:
                self._fire(now, rule)
                self._rule_engaged[rule.name] = True
                break
            if not condition_holds:
                self._rule_engaged[rule.name] = False

    def _fire(self, now: float, rule: DecisionRule) -> None:
        device_id = self.role_assignments[rule.target_role]
        issued = self.send_command(device_id, rule.command, dict(rule.parameters))
        self.fired_rules.append(
            FiredRule(time=now, rule=rule.name, target_device=device_id, command=rule.command, issued=issued)
        )


def compile_scenario(
    scenario: ClinicalScenario,
    role_assignments: Dict[str, str],
    *,
    step_period_s: float = 2.0,
) -> CompiledScenarioApp:
    """Compile ``scenario`` into a supervisor app bound to concrete devices.

    ``role_assignments`` maps scenario device roles to registered device ids,
    normally obtained from :meth:`DeviceRegistry.match`.
    """
    return CompiledScenarioApp(scenario, role_assignments, step_period_s=step_period_s)
