"""Static analysis of clinical scenario specifications.

"Analysis of such precise descriptions of a scenario will allow to make sure
that instructions for caregivers are unambiguous and cover all possible
situations; ensure that devices can interact with each other as desired;
explore the effects of faults and user errors." (Section III(e))

The analyses implemented here are the ones experiment E9 measures on a corpus
of scenarios with seeded defects:

* dangling transitions (a step references a non-existent step);
* unreachable steps;
* missing initial step / multiple initial steps;
* outcomes without handlers (given a declared outcome alphabet);
* caregiver roles with no procedure steps, and steps assigned to undeclared
  roles;
* data flows whose source role is not declared to publish the topic;
* decision rules targeting roles that accept no commands;
* device requirements unsatisfiable against a registry (when one is given).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.middleware.registry import DeviceRegistry
from repro.workflow.compiler import device_requirements
from repro.workflow.spec import ClinicalScenario


@dataclass(frozen=True)
class AnalysisFinding:
    """One problem found in a scenario specification."""

    severity: str  # "error" or "warning"
    category: str
    subject: str
    message: str


def analyse_scenario(
    scenario: ClinicalScenario,
    *,
    outcome_alphabet: Optional[Dict[str, Sequence[str]]] = None,
    registry: Optional[DeviceRegistry] = None,
) -> List[AnalysisFinding]:
    """Run all static checks; returns the list of findings (empty = clean)."""
    findings: List[AnalysisFinding] = []
    findings.extend(_check_procedure_structure(scenario))
    findings.extend(_check_outcome_coverage(scenario, outcome_alphabet or {}))
    findings.extend(_check_roles(scenario))
    findings.extend(_check_data_flows(scenario))
    findings.extend(_check_decision_rules(scenario))
    if registry is not None:
        findings.extend(_check_deployability(scenario, registry))
    return findings


def errors(findings: List[AnalysisFinding]) -> List[AnalysisFinding]:
    return [finding for finding in findings if finding.severity == "error"]


# --------------------------------------------------------------------------- procedure
def _check_procedure_structure(scenario: ClinicalScenario) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    step_ids = {step.step_id for step in scenario.procedure}

    initial = scenario.initial_steps()
    if scenario.procedure and not initial:
        findings.append(
            AnalysisFinding("error", "no_initial_step", scenario.name,
                            "procedure has steps but no initial step")
        )
    if len(initial) > 1:
        findings.append(
            AnalysisFinding("error", "multiple_initial_steps", scenario.name,
                            f"procedure has {len(initial)} initial steps; the start is ambiguous")
        )

    for step in scenario.procedure:
        for outcome, target in step.next_steps.items():
            if target not in step_ids:
                findings.append(
                    AnalysisFinding(
                        "error", "dangling_transition", step.step_id,
                        f"outcome {outcome!r} points to unknown step {target!r}"
                    )
                )

    # Reachability from the initial step(s).
    reachable = set()
    frontier = [step.step_id for step in initial]
    while frontier:
        current = frontier.pop()
        if current in reachable or current not in step_ids:
            continue
        reachable.add(current)
        frontier.extend(scenario.step(current).next_steps.values())
    for step in scenario.procedure:
        if step.step_id not in reachable and not step.is_initial:
            findings.append(
                AnalysisFinding("warning", "unreachable_step", step.step_id,
                                "step cannot be reached from the initial step")
            )
    return findings


def _check_outcome_coverage(
    scenario: ClinicalScenario, outcome_alphabet: Dict[str, Sequence[str]]
) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    for step in scenario.procedure:
        declared = outcome_alphabet.get(step.step_id)
        if declared is None or not step.next_steps:
            continue
        for outcome in declared:
            if outcome not in step.next_steps:
                findings.append(
                    AnalysisFinding(
                        "error", "unhandled_outcome", step.step_id,
                        f"possible outcome {outcome!r} has no transition; "
                        "caregiver instructions do not cover this situation"
                    )
                )
    return findings


# --------------------------------------------------------------------------- roles
def _check_roles(scenario: ClinicalScenario) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    declared_roles = {role.role for role in scenario.caregiver_roles}
    used_roles = {step.role for step in scenario.procedure}
    for role in declared_roles - used_roles:
        findings.append(
            AnalysisFinding("warning", "idle_caregiver_role", role,
                            "caregiver role has no procedure steps")
        )
    for role in used_roles - declared_roles:
        findings.append(
            AnalysisFinding("error", "undeclared_caregiver_role", role,
                            "procedure steps are assigned to an undeclared caregiver role")
        )
    return findings


# --------------------------------------------------------------------------- flows
def _check_data_flows(scenario: ClinicalScenario) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    device_roles = {role.role: role for role in scenario.device_roles}
    for flow in scenario.data_flows:
        source = device_roles.get(flow.source_role)
        if source is None:
            findings.append(
                AnalysisFinding("error", "unknown_flow_source", flow.topic,
                                f"data flow source role {flow.source_role!r} is not a declared device role")
            )
        elif flow.topic not in source.required_topics:
            findings.append(
                AnalysisFinding(
                    "error", "flow_topic_not_published", flow.topic,
                    f"role {flow.source_role!r} is not required to publish topic {flow.topic!r}"
                )
            )
        if flow.destination_role not in device_roles and flow.destination_role != "supervisor":
            findings.append(
                AnalysisFinding("warning", "unknown_flow_destination", flow.topic,
                                f"data flow destination {flow.destination_role!r} is not a declared role")
            )
    return findings


# --------------------------------------------------------------------------- rules
def _check_decision_rules(scenario: ClinicalScenario) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    device_roles = {role.role: role for role in scenario.device_roles}
    for rule in scenario.decision_rules:
        target = device_roles.get(rule.target_role)
        if target is None:
            findings.append(
                AnalysisFinding("error", "unknown_rule_target", rule.name,
                                f"decision rule targets undeclared device role {rule.target_role!r}")
            )
        elif rule.command not in target.required_commands:
            findings.append(
                AnalysisFinding(
                    "error", "rule_command_not_required", rule.name,
                    f"rule sends command {rule.command!r} but role {rule.target_role!r} "
                    "is not required to accept it"
                )
            )
    return findings


# --------------------------------------------------------------------------- deploy
def _check_deployability(scenario: ClinicalScenario, registry: DeviceRegistry) -> List[AnalysisFinding]:
    findings: List[AnalysisFinding] = []
    match = registry.match(device_requirements(scenario))
    for role, reasons in match.unsatisfied.items():
        findings.append(
            AnalysisFinding(
                "error", "unsatisfiable_device_requirement", role,
                "no registered device satisfies the requirement: " + " | ".join(reasons[:3])
            )
        )
    return findings
