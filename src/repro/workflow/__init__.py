"""Executable clinical workflows.

Section III(e) of the paper calls for "a language for describing clinical
scenarios" specifying the devices, data flows, caregiver roles, operational
procedures, and closed-loop decision logic, with "precise operational
semantics" so scenarios can be analysed for ambiguity, coverage, device
compatibility, and fault effects, and then "compiled into run-time components
that will provide decision support for caregivers".

* :mod:`~repro.workflow.spec` -- the scenario description language
  (dataclasses for devices, flows, roles, procedure steps, decision rules).
* :mod:`~repro.workflow.semantics` -- an operational-semantics interpreter
  that executes a scenario step machine against an environment.
* :mod:`~repro.workflow.analysis` -- static analysis: unreachable steps,
  ambiguous or missing transitions, role coverage, device requirement
  satisfiability, fault-effect exploration.
* :mod:`~repro.workflow.compiler` -- compiles decision rules into a
  :class:`repro.middleware.supervisor_host.SupervisorApp` and generates the
  device requirements for deployment-time matching.
"""

from repro.workflow.spec import (
    CaregiverRole,
    ClinicalScenario,
    DataFlow,
    DecisionRule,
    DeviceRole,
    ProcedureStep,
)
from repro.workflow.semantics import ScenarioInterpreter, StepStatus
from repro.workflow.analysis import AnalysisFinding, analyse_scenario
from repro.workflow.compiler import CompiledScenarioApp, compile_scenario, device_requirements

__all__ = [
    "CaregiverRole",
    "ClinicalScenario",
    "DataFlow",
    "DecisionRule",
    "DeviceRole",
    "ProcedureStep",
    "ScenarioInterpreter",
    "StepStatus",
    "AnalysisFinding",
    "analyse_scenario",
    "CompiledScenarioApp",
    "compile_scenario",
    "device_requirements",
]
