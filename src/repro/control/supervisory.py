"""Supervisory adaptive control (Morse-style multi-model switching).

A bank of candidate controllers is maintained, each tuned for a different
patient-parameter hypothesis (e.g. low / nominal / high drug sensitivity).
A supervisor runs a simple model estimator for each hypothesis, accumulates a
leaky-integrated prediction-error score, and switches the active controller
to the candidate whose model currently explains the observations best --
subject to hysteresis and a dwell time to prevent chattering, which is the
essential robustness ingredient of Morse's scheme (reference [17] of the
paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.control.pid import PIDController


@dataclass
class CandidateController:
    """One candidate in the supervisory bank.

    controller:
        The control law used when this candidate is active.
    predictor:
        ``predictor(control_output, dt) -> predicted_measurement_change``,
        the candidate's model of how the plant responds; the supervisor
        scores candidates by how well this prediction matches reality.
    """

    name: str
    controller: PIDController
    predictor: Callable[[float, float], float]


@dataclass
class SupervisoryConfig:
    """Switching behaviour of the supervisor.

    forgetting_factor:
        Exponential forgetting applied to the error scores each update
        (closer to 1.0 = longer memory).
    hysteresis:
        A challenger must beat the incumbent's score by this factor before a
        switch happens.
    dwell_time_s:
        Minimum time between switches.
    """

    forgetting_factor: float = 0.98
    hysteresis: float = 1.2
    dwell_time_s: float = 60.0

    def validate(self) -> None:
        if not 0 < self.forgetting_factor <= 1:
            raise ValueError("forgetting_factor must be in (0, 1]")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        if self.dwell_time_s < 0:
            raise ValueError("dwell_time_s must be non-negative")


class SupervisoryAdaptiveController:
    """Switching supervisor over a bank of candidate controllers."""

    def __init__(
        self,
        candidates: Sequence[CandidateController],
        config: Optional[SupervisoryConfig] = None,
    ) -> None:
        if not candidates:
            raise ValueError("at least one candidate controller is required")
        self.candidates = list(candidates)
        self.config = config or SupervisoryConfig()
        self.config.validate()
        self._scores: Dict[str, float] = {candidate.name: 0.0 for candidate in self.candidates}
        self._active = self.candidates[0]
        self._last_switch_time: Optional[float] = None
        self._previous_measurement: Optional[float] = None
        self._previous_output = 0.0
        self.switch_history: List[Dict[str, object]] = []

    # --------------------------------------------------------------- queries
    @property
    def active_candidate(self) -> CandidateController:
        return self._active

    @property
    def scores(self) -> Dict[str, float]:
        return dict(self._scores)

    @property
    def switch_count(self) -> int:
        return len(self.switch_history)

    # ---------------------------------------------------------------- update
    def update(self, time: float, measurement: float, dt: float) -> float:
        """One supervisory control step; returns the active controller's output."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._update_scores(measurement, dt)
        self._maybe_switch(time)
        output = self._active.controller.update(measurement, dt)
        self._previous_measurement = measurement
        self._previous_output = output
        return output

    def _update_scores(self, measurement: float, dt: float) -> None:
        if self._previous_measurement is None:
            return
        actual_change = measurement - self._previous_measurement
        for candidate in self.candidates:
            predicted_change = candidate.predictor(self._previous_output, dt)
            error = (actual_change - predicted_change) ** 2
            self._scores[candidate.name] = (
                self.config.forgetting_factor * self._scores[candidate.name] + error
            )

    def _maybe_switch(self, time: float) -> None:
        if self._last_switch_time is not None:
            if time - self._last_switch_time < self.config.dwell_time_s:
                return
        best = min(self.candidates, key=lambda candidate: self._scores[candidate.name])
        if best.name == self._active.name:
            return
        incumbent_score = self._scores[self._active.name]
        challenger_score = self._scores[best.name]
        if incumbent_score > self.config.hysteresis * challenger_score or self._previous_measurement is None:
            self.switch_history.append(
                {"time": time, "from": self._active.name, "to": best.name,
                 "incumbent_score": incumbent_score, "challenger_score": challenger_score}
            )
            # Carry over actuator state by resetting the incoming controller
            # so its integral term does not apply a stale correction.
            best.controller.reset()
            self._active = best
            self._last_switch_time = time
