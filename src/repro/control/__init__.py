"""Control algorithms for physiological closed loops.

Section III(g) of the paper points at "control-theoretic methods designed to
operate under high parametric uncertainty, such as supervisory adaptive
control" (Morse).  This package provides:

* :class:`~repro.control.pid.PIDController` -- the fixed-gain baseline.
* :class:`~repro.control.supervisory.SupervisoryAdaptiveController` -- a bank
  of candidate controllers with a supervisor that switches to the candidate
  whose model best explains recent observations (Morse-style multi-model
  switching with hysteresis and dwell time).
* :class:`~repro.control.envelope.SafetyEnvelope` -- output clamping and
  rate limiting applied to any controller driving an infusion.
"""

from repro.control.pid import PIDController, PIDGains
from repro.control.supervisory import (
    CandidateController,
    SupervisoryAdaptiveController,
    SupervisoryConfig,
)
from repro.control.envelope import SafetyEnvelope

__all__ = [
    "PIDController",
    "PIDGains",
    "CandidateController",
    "SupervisoryAdaptiveController",
    "SupervisoryConfig",
    "SafetyEnvelope",
]
