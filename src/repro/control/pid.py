"""PID controller: the fixed-gain baseline for closed-loop drug titration.

Used by experiment E10 as the non-adaptive comparator: a single PID tuned for
the "average" patient, applied across a population with widely varying drug
sensitivity (exactly the setting Section III(g) of the paper warns about).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PIDGains:
    """Proportional / integral / derivative gains."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError("PID gains must be non-negative")


class PIDController:
    """Discrete PID controller with anti-windup clamping."""

    def __init__(
        self,
        gains: PIDGains,
        *,
        output_min: float = 0.0,
        output_max: float = float("inf"),
        setpoint: float = 0.0,
    ) -> None:
        if output_max <= output_min:
            raise ValueError("output_max must exceed output_min")
        self.gains = gains
        self.output_min = output_min
        self.output_max = output_max
        self.setpoint = setpoint
        self._integral = 0.0
        self._previous_error: Optional[float] = None
        self.last_output = 0.0

    def reset(self) -> None:
        self._integral = 0.0
        self._previous_error = None
        self.last_output = 0.0

    def update(self, measurement: float, dt: float) -> float:
        """Compute the control output for ``measurement`` after ``dt`` seconds."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        error = self.setpoint - measurement
        derivative = 0.0
        if self._previous_error is not None:
            derivative = (error - self._previous_error) / dt
        self._previous_error = error

        candidate_integral = self._integral + error * dt
        output = (
            self.gains.kp * error
            + self.gains.ki * candidate_integral
            + self.gains.kd * derivative
        )
        # Anti-windup: only accumulate the integral if the output is not
        # saturated in the direction the integral would push it further.
        if (output <= self.output_min and error < 0) or (output >= self.output_max and error > 0):
            pass
        else:
            self._integral = candidate_integral
        output = min(self.output_max, max(self.output_min, output))
        self.last_output = output
        return output
