"""Safety envelope applied to controller outputs driving an infusion.

Whatever the control law (PID, adaptive, or a clinician's manual setting),
the actuator command is passed through a :class:`SafetyEnvelope` that clamps
the absolute rate, limits its rate of change, and caps the cumulative dose
over a rolling window -- a software analogue of the hard limits that make a
PCA pump's programmable bounds trustworthy even when the controller above is
not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class EnvelopeLimits:
    max_rate: float
    max_rate_change_per_s: float
    max_cumulative: float
    cumulative_window_s: float

    def validate(self) -> None:
        if self.max_rate <= 0:
            raise ValueError("max_rate must be positive")
        if self.max_rate_change_per_s <= 0:
            raise ValueError("max_rate_change_per_s must be positive")
        if self.max_cumulative <= 0:
            raise ValueError("max_cumulative must be positive")
        if self.cumulative_window_s <= 0:
            raise ValueError("cumulative_window_s must be positive")


class SafetyEnvelope:
    """Clamps a commanded infusion rate to safe limits."""

    def __init__(self, limits: EnvelopeLimits) -> None:
        limits.validate()
        self.limits = limits
        self._last_rate = 0.0
        self._last_time: float = 0.0
        self._delivery_history: List[Tuple[float, float]] = []  # (time, amount)
        self.clamp_events = 0

    def apply(self, time: float, requested_rate: float) -> float:
        """Return the rate actually allowed at ``time`` for ``requested_rate``."""
        if requested_rate < 0:
            requested_rate = 0.0
        dt = max(0.0, time - self._last_time)
        allowed = requested_rate

        # Absolute clamp.
        if allowed > self.limits.max_rate:
            allowed = self.limits.max_rate

        # Rate-of-change clamp.
        if dt > 0:
            max_step = self.limits.max_rate_change_per_s * dt
            if allowed > self._last_rate + max_step:
                allowed = self._last_rate + max_step
            elif allowed < self._last_rate - max_step:
                allowed = self._last_rate - max_step

        # Cumulative-dose clamp over the rolling window.
        delivered = self._delivered_in_window(time)
        projected = delivered + allowed * dt
        if projected > self.limits.max_cumulative:
            remaining = max(0.0, self.limits.max_cumulative - delivered)
            allowed = remaining / dt if dt > 0 else 0.0

        if allowed < requested_rate:
            self.clamp_events += 1

        # Book-keeping: record what the previous rate delivered over dt.
        if dt > 0:
            self._delivery_history.append((time, self._last_rate * dt))
        self._last_rate = allowed
        self._last_time = time
        return allowed

    def _delivered_in_window(self, time: float) -> float:
        cutoff = time - self.limits.cumulative_window_s
        self._delivery_history = [(t, amount) for t, amount in self._delivery_history if t >= cutoff]
        return sum(amount for _, amount in self._delivery_history)
