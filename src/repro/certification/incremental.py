"""Incremental re-certification after component upgrades.

Given an assurance case, its evidence store, and a set of upgraded
components, the :class:`IncrementalCertifier` computes which evidence is
invalidated, which goals lose support, and what the cheapest regeneration
plan is -- compared with the from-scratch alternative of regenerating every
piece of evidence, which is the cost the paper says the current process-based
regime effectively imposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.certification.evidence import Evidence, EvidenceStore
from repro.certification.gsn import AssuranceCase, NodeType


@dataclass
class RecertificationPlan:
    """Outcome of change-impact analysis for one upgrade."""

    upgraded_components: Set[str]
    invalidated_evidence: List[str]
    affected_goals: List[str]
    untouched_goals: List[str]
    incremental_cost: float
    full_recert_cost: float

    @property
    def cost_saving_fraction(self) -> float:
        if self.full_recert_cost == 0:
            return 0.0
        return 1.0 - self.incremental_cost / self.full_recert_cost

    @property
    def affected_fraction_of_goals(self) -> float:
        total = len(self.affected_goals) + len(self.untouched_goals)
        return len(self.affected_goals) / total if total else 0.0


class IncrementalCertifier:
    """Change-impact analysis over an assurance case and evidence store."""

    def __init__(self, case: AssuranceCase, evidence: EvidenceStore) -> None:
        self.case = case
        self.evidence = evidence

    # ---------------------------------------------------------------- checks
    def check_well_formed(self) -> List[str]:
        """Structural problems that would make certification claims hollow."""
        problems: List[str] = []
        if self.case.root_id is None:
            problems.append("assurance case has no root goal")
        for goal in self.case.undeveloped_goals():
            problems.append(f"goal {goal.node_id!r} has no supporting evidence")
        for solution in self.case.solutions():
            if solution.evidence_id is None or solution.evidence_id not in self.evidence:
                problems.append(f"solution {solution.node_id!r} references missing evidence")
        return problems

    # ------------------------------------------------------------- impact
    def plan_upgrade(self, upgraded_components: Set[str]) -> RecertificationPlan:
        """Compute the re-certification plan for upgrading ``upgraded_components``."""
        invalidated: List[str] = []
        for component in upgraded_components:
            for evidence in self.evidence.depending_on(component):
                if evidence.evidence_id not in invalidated:
                    invalidated.append(evidence.evidence_id)

        affected_goal_ids: Set[str] = set()
        for solution in self.case.solutions():
            if solution.evidence_id in invalidated:
                for ancestor_id in self.case.ancestors(solution.node_id):
                    if self.case.node(ancestor_id).node_type == NodeType.GOAL:
                        affected_goal_ids.add(ancestor_id)
        # Goals whose own components were upgraded are affected as well.
        for goal in self.case.goals():
            if goal.components & upgraded_components:
                affected_goal_ids.add(goal.node_id)

        all_goal_ids = {goal.node_id for goal in self.case.goals()}
        untouched = sorted(all_goal_ids - affected_goal_ids)

        incremental_cost = sum(self.evidence.get(eid).regeneration_cost for eid in invalidated)
        full_cost = sum(evidence.regeneration_cost for evidence in self.evidence.all)

        return RecertificationPlan(
            upgraded_components=set(upgraded_components),
            invalidated_evidence=invalidated,
            affected_goals=sorted(affected_goal_ids),
            untouched_goals=untouched,
            incremental_cost=incremental_cost,
            full_recert_cost=full_cost,
        )

    def apply_upgrade(self, upgraded_components: Set[str]) -> RecertificationPlan:
        """Plan the upgrade and mark the affected evidence invalidated."""
        plan = self.plan_upgrade(upgraded_components)
        for evidence_id in plan.invalidated_evidence:
            self.evidence.get(evidence_id).invalidate()
        return plan

    def regenerate(self, evidence_ids: List[str]) -> None:
        """Mark the listed evidence regenerated (after re-running the analyses)."""
        for evidence_id in evidence_ids:
            self.evidence.get(evidence_id).regenerate()

    def certification_complete(self) -> bool:
        """True when the case is well-formed and no evidence is invalidated."""
        return not self.check_well_formed() and not self.evidence.invalidated()
