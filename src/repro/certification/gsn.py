"""Goal Structuring Notation (GSN) style assurance cases.

An assurance case is a tree (more generally a DAG) whose root goal states the
top-level safety claim ("the closed-loop PCA system does not contribute to
patient harm"), decomposed by strategy nodes into sub-goals, each eventually
supported by solution nodes that reference concrete evidence artefacts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set


class NodeType(enum.Enum):
    GOAL = "goal"
    STRATEGY = "strategy"
    SOLUTION = "solution"
    CONTEXT = "context"


@dataclass
class _Node:
    node_id: str
    node_type: NodeType
    statement: str
    children: List[str] = field(default_factory=list)
    components: Set[str] = field(default_factory=set)
    evidence_id: Optional[str] = None


@dataclass
class GoalNode(_Node):
    def __init__(self, node_id: str, statement: str, components: Iterable[str] = ()) -> None:
        super().__init__(node_id=node_id, node_type=NodeType.GOAL, statement=statement,
                         components=set(components))


@dataclass
class StrategyNode(_Node):
    def __init__(self, node_id: str, statement: str) -> None:
        super().__init__(node_id=node_id, node_type=NodeType.STRATEGY, statement=statement)


@dataclass
class SolutionNode(_Node):
    def __init__(self, node_id: str, statement: str, evidence_id: str, components: Iterable[str] = ()) -> None:
        super().__init__(node_id=node_id, node_type=NodeType.SOLUTION, statement=statement,
                         components=set(components), evidence_id=evidence_id)


class AssuranceCase:
    """A GSN assurance case: nodes, edges, and queries over them."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: Dict[str, _Node] = {}
        self.root_id: Optional[str] = None

    # ------------------------------------------------------------- structure
    def add(self, node: _Node, parent_id: Optional[str] = None) -> _Node:
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id!r} already exists")
        self._nodes[node.node_id] = node
        if parent_id is None:
            if self.root_id is None:
                if node.node_type != NodeType.GOAL:
                    raise ValueError("the root of an assurance case must be a goal")
                self.root_id = node.node_id
            else:
                raise ValueError("a root already exists; supply parent_id")
        else:
            parent = self.node(parent_id)
            self._check_edge(parent, node)
            parent.children.append(node.node_id)
        return node

    def _check_edge(self, parent: _Node, child: _Node) -> None:
        if parent.node_type == NodeType.SOLUTION:
            raise ValueError("solution nodes cannot have children")
        if parent.node_type == NodeType.GOAL and child.node_type == NodeType.GOAL:
            # Goals are normally decomposed through strategies, but direct
            # goal-to-goal support is tolerated in compact cases.
            return
        if parent.node_type == NodeType.STRATEGY and child.node_type == NodeType.STRATEGY:
            raise ValueError("a strategy cannot directly support a strategy")

    def node(self, node_id: str) -> _Node:
        if node_id not in self._nodes:
            raise KeyError(f"no node {node_id!r} in assurance case {self.name!r}")
        return self._nodes[node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[_Node]:
        return list(self._nodes.values())

    # ---------------------------------------------------------------- queries
    def goals(self) -> List[_Node]:
        return [node for node in self._nodes.values() if node.node_type == NodeType.GOAL]

    def solutions(self) -> List[_Node]:
        return [node for node in self._nodes.values() if node.node_type == NodeType.SOLUTION]

    def descendants(self, node_id: str) -> List[str]:
        """All node ids reachable below ``node_id`` (excluding it)."""
        result: List[str] = []
        stack = list(self.node(node_id).children)
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            result.append(current)
            stack.extend(self.node(current).children)
        return result

    def ancestors(self, node_id: str) -> List[str]:
        """All node ids on paths from the root to ``node_id`` (excluding it)."""
        result: List[str] = []
        for candidate_id, candidate in self._nodes.items():
            if node_id in self.descendants(candidate_id):
                result.append(candidate_id)
        return result

    def solutions_for_component(self, component: str) -> List[_Node]:
        return [node for node in self.solutions() if component in node.components]

    def undeveloped_goals(self) -> List[_Node]:
        """Goals with no supporting children anywhere below them."""
        undeveloped = []
        for goal in self.goals():
            below = self.descendants(goal.node_id)
            if not any(self.node(i).node_type == NodeType.SOLUTION for i in below):
                undeveloped.append(goal)
        return undeveloped

    def is_complete(self) -> bool:
        """True if the root exists and every goal is eventually backed by evidence."""
        return self.root_id is not None and not self.undeveloped_goals()
