"""Evidence artefacts referenced by assurance-case solution nodes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set


class EvidenceStatus(enum.Enum):
    VALID = "valid"
    INVALIDATED = "invalidated"
    REGENERATED = "regenerated"


@dataclass
class Evidence:
    """A concrete evidence artefact (verification run, test report, analysis).

    components:
        The system components the evidence depends on; upgrading any of them
        invalidates the evidence.
    kind:
        Free-form category ("model_checking", "unit_test", "delay_analysis",
        "clinical_evaluation", ...), used for reporting.
    """

    evidence_id: str
    description: str
    kind: str
    components: Set[str] = field(default_factory=set)
    data: Dict[str, Any] = field(default_factory=dict)
    status: EvidenceStatus = EvidenceStatus.VALID
    regeneration_cost: float = 1.0

    def depends_on(self, component: str) -> bool:
        return component in self.components

    def invalidate(self) -> None:
        self.status = EvidenceStatus.INVALIDATED

    def regenerate(self, data: Optional[Dict[str, Any]] = None) -> None:
        if data is not None:
            self.data = dict(data)
        self.status = EvidenceStatus.REGENERATED


class EvidenceStore:
    """Registry of evidence artefacts keyed by id."""

    def __init__(self) -> None:
        self._evidence: Dict[str, Evidence] = {}

    def add(self, evidence: Evidence) -> Evidence:
        if evidence.evidence_id in self._evidence:
            raise ValueError(f"evidence {evidence.evidence_id!r} already registered")
        self._evidence[evidence.evidence_id] = evidence
        return evidence

    def get(self, evidence_id: str) -> Evidence:
        if evidence_id not in self._evidence:
            raise KeyError(f"no evidence {evidence_id!r}")
        return self._evidence[evidence_id]

    def __contains__(self, evidence_id: str) -> bool:
        return evidence_id in self._evidence

    def __len__(self) -> int:
        return len(self._evidence)

    @property
    def all(self) -> List[Evidence]:
        return list(self._evidence.values())

    def valid(self) -> List[Evidence]:
        return [e for e in self._evidence.values() if e.status != EvidenceStatus.INVALIDATED]

    def invalidated(self) -> List[Evidence]:
        return [e for e in self._evidence.values() if e.status == EvidenceStatus.INVALIDATED]

    def depending_on(self, component: str) -> List[Evidence]:
        return [e for e in self._evidence.values() if e.depends_on(component)]
