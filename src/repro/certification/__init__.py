"""Assurance cases and incremental certification.

Section III(n) of the paper advocates evidence-based certification: "using
compositional modeling techniques and assume-guarantee reasoning may enable
incremental certification, which would allow us to re-certify MCPS after
component upgrades without reconsidering the whole assurance case from
scratch."

* :mod:`~repro.certification.gsn` -- Goal Structuring Notation style
  assurance cases: goals decomposed by strategies into sub-goals backed by
  solution (evidence) nodes.
* :mod:`~repro.certification.evidence` -- evidence artefacts (verification
  results, test reports, delay-budget analyses) with validity tracking.
* :mod:`~repro.certification.incremental` -- change-impact analysis over an
  assurance case: given upgraded components, which evidence is invalidated
  and which goals must be re-established.
"""

from repro.certification.gsn import AssuranceCase, GoalNode, NodeType, SolutionNode, StrategyNode
from repro.certification.evidence import Evidence, EvidenceStatus
from repro.certification.incremental import IncrementalCertifier, RecertificationPlan

__all__ = [
    "AssuranceCase",
    "GoalNode",
    "NodeType",
    "SolutionNode",
    "StrategyNode",
    "Evidence",
    "EvidenceStatus",
    "IncrementalCertifier",
    "RecertificationPlan",
]
