"""Hospital-ward scenario family: topology-driven campaigns at scale.

Where the other scenarios hand-wire one patient, this one expands a
declarative :class:`~repro.topology.spec.TopologySpec` — wards x beds x
device mixes x staffing x cohort fractions x fault profiles — into a fully
wired hospital (:mod:`repro.topology.expand`) and runs it as a registered
campaign scenario.  "200-bed hospital, 3% device fault rate, night staffing"
becomes one JSON spec swept like any parameter through the existing
shard/merge/streaming-aggregation pipeline, with generated fault schedules
(:mod:`repro.sim.faults`), posture-driven attack campaigns
(:mod:`repro.security.attacks`), and population cohorts
(:mod:`repro.patient.population`) all in the loop.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.campaign.registry import CampaignError, campaign_scenario
from repro.campaign.spec import cohort_patient
from repro.security.attacks import AttackCampaign
from repro.sim.faults import fault_plan_specs
from repro.topology.expand import (
    AlarmThresholds,
    build_hospital,
    expand_topology,
    manifest_device_ids,
)
from repro.topology.generators import (
    SECURITY_POSTURES,
    generate_attack_plan,
    generate_fault_plan,
    security_for_posture,
)
from repro.topology.spec import TopologyError, TopologySpec, standard_hospital

#: Default topology: one small mixed ward with modest fault rates, sized so
#: golden and smoke campaigns stay fast.  Stored as its plain-dict form —
#: campaign params must survive JSON manifests byte-identically.
DEFAULT_TOPOLOGY = standard_hospital(
    "ward-default",
    wards=1,
    beds_per_ward=6,
    device_mix={"pulse_oximeter": 1.0, "capnograph": 0.5, "bp_monitor": 0.5,
                "bed": 1.0, "pca_pump": 0.5},
    faults={"channel_outage_rate": 2.0, "stuck_sensor_rate": 1.0,
            "misprogramming_rate": 0.5},
).as_dict()


def _validate_ward_campaign(spec) -> None:
    """Reject bad topologies/postures at spec time, before any run executes."""
    topologies = spec.parameters.get("topology")
    candidates = topologies if isinstance(topologies, list) else (
        [topologies] if topologies is not None else [])
    for value in candidates:
        try:
            TopologySpec.from_dict(value)
        except TopologyError as error:
            raise CampaignError(f"invalid ward topology: {error}") from None
    postures = spec.parameters.get("security_posture")
    candidates = postures if isinstance(postures, list) else (
        [postures] if postures is not None else [])
    for value in candidates:
        if value not in SECURITY_POSTURES:
            raise CampaignError(
                f"unknown security posture {value!r}; expected one of "
                f"{SECURITY_POSTURES}")


def _apply_focus_patient(manifest: Dict[str, Any], params: Dict[str, Any]) -> str:
    """Place the campaign cohort's focus patient into the first bed.

    Cohort campaigns compare configurations on *paired* patients: patient
    ``i`` is the same person in every configuration.  The rest of the
    hospital stays as expanded — the backdrop load the focus patient is
    monitored under.  Returns the focus patient's cohort label.
    """
    focus = cohort_patient(params["cohort_seed"], params["patient_index"])
    if "opioid_sensitive" in focus.tags:
        label = "opioid_sensitive"
    elif focus.is_athlete:
        label = "athlete"
    else:
        label = "typical"
    first_ward = manifest["wards"][0]
    first_bed = first_ward["beds"][0]
    first_ward["cohort_counts"][first_bed["cohort"]] -= 1
    first_ward["cohort_counts"][label] += 1
    first_bed["cohort"] = label
    first_bed["patient"] = focus.as_record()
    return label


@campaign_scenario(
    "ward",
    defaults={
        "topology": DEFAULT_TOPOLOGY,
        "duration_s": 600.0,
        "security_posture": "allowlisted",
        "generate_faults": True,
        "attack_reprogram": 4,
        "attack_replay": 2,
        "attack_flood": 2,
        "attack_insider": 1,
        "spo2_alarm_threshold": 90.0,
        "respiratory_rate_alarm_threshold": 8.0,
        "map_alarm_threshold_mmhg": 65.0,
        "heart_rate_alarm_threshold": 50.0,
        "stop_threshold_spo2": 85.0,
    },
    result_fields=(
        "wards", "beds", "caregivers",
        "patients_typical", "patients_opioid_sensitive", "patients_athlete",
        "alarms_total", "alarms_typical", "alarms_opioid_sensitive",
        "alarms_athlete", "caregiver_alarms_received", "caregiver_alarms_missed",
        "caregiver_interventions", "supervisor_stops",
        "faults_planned", "faults_injected",
        "attacks_total", "attacks_succeeded", "attacks_blocked_authentication",
        "attacks_blocked_authorization",
        "messages_published", "messages_forwarded", "focus_cohort",
    ),
    supports_cohort=True,
    supports_faults=True,
    description="Topology-driven hospital ward with generated fault/attack campaigns",
    spec_validator=_validate_ward_campaign,
)
def run_ward_campaign(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Campaign runner: one monitored shift of a generated hospital ward."""
    try:
        topology = TopologySpec.from_dict(params["topology"])
    except TopologyError as error:
        raise ValueError(f"invalid ward topology: {error}") from None
    duration_s = float(params["duration_s"])
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    posture = params["security_posture"]
    if posture not in SECURITY_POSTURES:
        raise ValueError(
            f"unknown security posture {posture!r}; expected one of "
            f"{SECURITY_POSTURES}")

    manifest = expand_topology(topology, seed)
    focus_cohort = "none"
    if params.get("patient_index") is not None:
        focus_cohort = _apply_focus_patient(manifest, params)

    # Fault schedule: topology-generated profile faults compose with any
    # campaign-level ``faults`` block (the engine-injected fault_plan param).
    plan = []
    if params["generate_faults"]:
        plan.extend(generate_fault_plan(topology, seed, duration_s,
                                        manifest=manifest))
    plan.extend(params.get("fault_plan", ()))
    fault_specs = fault_plan_specs(plan)

    attacks = generate_attack_plan(
        topology, seed, manifest=manifest,
        reprogram=int(params["attack_reprogram"]),
        replay=int(params["attack_replay"]),
        flood=int(params["attack_flood"]),
        insider=int(params["attack_insider"]),
    )
    insiders = tuple(attack.attacker for attack in attacks
                     if attack.kind == "insider")
    pumps = manifest_device_ids(manifest, "pca_pump")
    authenticator, policy, stolen = security_for_posture(
        posture, seed, pump_ids=tuple(pumps), insider_principals=insiders)

    runtime = build_hospital(
        topology, seed,
        thresholds=AlarmThresholds(
            spo2=float(params["spo2_alarm_threshold"]),
            respiratory_rate=float(params["respiratory_rate_alarm_threshold"]),
            map_mmhg=float(params["map_alarm_threshold_mmhg"]),
            heart_rate=float(params["heart_rate_alarm_threshold"]),
        ),
        stop_threshold=float(params["stop_threshold_spo2"]),
        command_authoriser=policy.as_authoriser(),
        manifest=manifest,
    )
    runtime.injector.extend(fault_specs)
    runtime.injector.arm()
    runtime.simulator.run(until=duration_s)

    # Post-shift security audit: the generated attack campaign against the
    # same policy the supervisors commanded through during the run.
    attack_campaign = AttackCampaign(authenticator, policy,
                                     stolen_credentials=stolen)
    attack_campaign.run(attacks)
    outcomes = attack_campaign.outcomes()

    patients = runtime.cohort_counts()
    alarms = runtime.alarm_counts_by_cohort()
    caregivers = runtime.caregiver_stats()
    bus = runtime.bus_stats()
    return {
        "wards": len(runtime.wards),
        "beds": topology.total_beds,
        "caregivers": sum(len(ward.caregivers) for ward in runtime.wards),
        "patients_typical": patients["typical"],
        "patients_opioid_sensitive": patients["opioid_sensitive"],
        "patients_athlete": patients["athlete"],
        "alarms_total": sum(alarms.values()),
        "alarms_typical": alarms["typical"],
        "alarms_opioid_sensitive": alarms["opioid_sensitive"],
        "alarms_athlete": alarms["athlete"],
        "caregiver_alarms_received": caregivers["alarms_received"],
        "caregiver_alarms_missed": caregivers["alarms_missed"],
        "caregiver_interventions": caregivers["interventions"],
        "supervisor_stops": runtime.stop_commands(),
        "faults_planned": len(fault_specs),
        "faults_injected": len(runtime.injector.injected),
        "attacks_total": len(attacks),
        "attacks_succeeded": outcomes["succeeded"],
        "attacks_blocked_authentication": outcomes["blocked_authentication"],
        "attacks_blocked_authorization": outcomes["blocked_authorization"],
        "messages_published": bus["published"],
        "messages_forwarded": bus["forwarded"],
        "focus_cohort": focus_cohort,
    }
