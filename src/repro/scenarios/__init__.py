"""End-to-end clinical scenarios used by the examples and experiments.

Each module builds a complete simulated clinical situation from the paper:

* :mod:`~repro.scenarios.pca_scenario` -- the closed-loop PCA scenario as a
  declarative :class:`~repro.workflow.spec.ClinicalScenario`, plus the fault
  workloads (misprogramming, PCA-by-proxy, sensitive patients) used by E1.
* :mod:`~repro.scenarios.xray_vent` -- X-ray / ventilator synchronisation
  (Section II(b)); compares manual, pause/restart, and state-broadcast
  coordination.
* :mod:`~repro.scenarios.bed_map` -- the mixed-criticality bed / MAP
  false-alarm scenario (Section III(l)).
* :mod:`~repro.scenarios.proton` -- proton-therapy beam scheduling with
  patient-motion interrupts (Section II(a)).
* :mod:`~repro.scenarios.home` -- continuous home monitoring: store-and-
  forward versus real-time closed-loop telemonitoring (Section II(d)).

Importing this package also registers every scenario's campaign runner with
:mod:`repro.campaign.registry`, so all five are sweepable at population
scale through ``python -m repro.campaign``.
"""

from repro.scenarios.pca_scenario import (
    build_pca_scenario_spec,
    pca_fault_campaign,
    run_pca_campaign,
)
from repro.scenarios.xray_vent import (
    XRayVentilatorScenario,
    XRayVentilatorResult,
    run_xray_vent_campaign,
)
from repro.scenarios.bed_map import BedMapScenario, BedMapResult, run_bed_map_campaign
from repro.scenarios.proton import (
    ProtonSchedulingScenario,
    ProtonSchedulingResult,
    run_proton_campaign,
)
from repro.scenarios.home import (
    HomeMonitoringScenario,
    HomeMonitoringResult,
    run_home_campaign,
)
from repro.scenarios.chaos import run_chaos_campaign
from repro.scenarios.ward import run_ward_campaign

__all__ = [
    "build_pca_scenario_spec",
    "pca_fault_campaign",
    "XRayVentilatorScenario",
    "XRayVentilatorResult",
    "BedMapScenario",
    "BedMapResult",
    "ProtonSchedulingScenario",
    "ProtonSchedulingResult",
    "HomeMonitoringScenario",
    "HomeMonitoringResult",
    "run_pca_campaign",
    "run_xray_vent_campaign",
    "run_bed_map_campaign",
    "run_proton_campaign",
    "run_home_campaign",
    "run_chaos_campaign",
    "run_ward_campaign",
]
