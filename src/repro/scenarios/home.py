"""Continuous home monitoring scenario (Section II(d) of the paper).

"Most of the current systems operate in store-and-forward mode, with no
real-time diagnostic capability.  Physiologically closed-loop technology will
allow diagnostic evaluation of vital signs in real-time and make constant
care possible."

A home-monitored patient wears a body sensor that records heart rate, SpO2,
and respiratory rate.  Deterioration episodes (e.g. the onset of respiratory
infection or heart failure decompensation) develop over tens of minutes.  Two
telemonitoring architectures are compared:

* ``store_and_forward`` -- measurements are batched and uploaded every
  ``upload_period_s``; a clinician reviews each upload after a review delay.
  Detection latency is dominated by the batching interval.
* ``real_time`` -- measurements stream continuously to a monitoring service
  that evaluates alarm rules on arrival; detection latency is dominated by
  the sampling period and network latency.

Experiment E12 sweeps the upload period and reports detection latency and
the fraction of episodes detected within a clinically useful window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.alarms.thresholds import ThresholdAlarm, ThresholdRule, AlarmSeverity
from repro.analysis.metrics import detection_latency
from repro.campaign.registry import campaign_scenario


@dataclass
class DeteriorationEpisode:
    """A gradual physiological deterioration starting at ``onset_s``."""

    onset_s: float
    spo2_drop: float = 8.0
    heart_rate_rise: float = 25.0
    development_time_s: float = 1800.0


@dataclass
class HomeMonitoringConfig:
    mode: str = "real_time"
    duration_s: float = 24.0 * 3600.0
    sample_period_s: float = 60.0
    upload_period_s: float = 4.0 * 3600.0
    review_delay_s: float = 1800.0
    network_latency_s: float = 2.0
    episodes: List[DeteriorationEpisode] = field(default_factory=list)
    baseline_spo2: float = 96.5
    baseline_heart_rate: float = 78.0
    spo2_noise_sd: float = 0.5
    heart_rate_noise_sd: float = 2.0
    spo2_alarm_threshold: float = 92.0
    heart_rate_alarm_threshold: float = 110.0
    seed: int = 0

    def validate(self) -> None:
        if self.mode not in ("store_and_forward", "real_time"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.duration_s <= 0 or self.sample_period_s <= 0:
            raise ValueError("durations must be positive")
        if self.upload_period_s <= 0 or self.review_delay_s < 0:
            raise ValueError("upload_period_s must be positive and review_delay_s non-negative")


@dataclass
class HomeMonitoringResult:
    mode: str
    episodes: int
    detected_episodes: int
    detection_latencies_s: List[float]
    alarms_raised: int

    @property
    def mean_detection_latency_s(self) -> Optional[float]:
        if not self.detection_latencies_s:
            return None
        return float(np.mean(self.detection_latencies_s))

    def detected_within(self, window_s: float) -> int:
        return sum(1 for latency in self.detection_latencies_s if latency <= window_s)


class HomeMonitoringScenario:
    """Time-stepped (non-DES) home monitoring simulation.

    A simple fixed-step loop is sufficient here because there is no feedback
    into the patient -- the comparison is purely about when the monitoring
    side *notices* a deterioration.
    """

    def __init__(self, config: Optional[HomeMonitoringConfig] = None) -> None:
        self.config = config or HomeMonitoringConfig()
        self.config.validate()
        if not self.config.episodes:
            self.config.episodes = [
                DeteriorationEpisode(onset_s=self.config.duration_s * 0.3),
                DeteriorationEpisode(onset_s=self.config.duration_s * 0.7, spo2_drop=10.0),
            ]
        self._rng = np.random.default_rng(self.config.seed)

    # --------------------------------------------------------------- signals
    def _true_vitals(self, time: float) -> Tuple[float, float]:
        """True (noise-free) SpO2 and heart rate at ``time``."""
        spo2 = self.config.baseline_spo2
        heart_rate = self.config.baseline_heart_rate
        for episode in self.config.episodes:
            if time < episode.onset_s:
                continue
            progress = min(1.0, (time - episode.onset_s) / episode.development_time_s)
            spo2 -= episode.spo2_drop * progress
            heart_rate += episode.heart_rate_rise * progress
        return spo2, heart_rate

    def _sampled_vitals(self, time: float) -> Tuple[float, float]:
        spo2, heart_rate = self._true_vitals(time)
        spo2 += float(self._rng.normal(0.0, self.config.spo2_noise_sd))
        heart_rate += float(self._rng.normal(0.0, self.config.heart_rate_noise_sd))
        return float(np.clip(spo2, 0.0, 100.0)), max(0.0, heart_rate)

    def _make_alarm(self) -> ThresholdAlarm:
        return ThresholdAlarm(
            "home_monitor",
            [
                ThresholdRule(vital="spo2", threshold=self.config.spo2_alarm_threshold,
                              direction="below", severity=AlarmSeverity.CRITICAL,
                              persistence_s=2 * self.config.sample_period_s),
                ThresholdRule(vital="heart_rate", threshold=self.config.heart_rate_alarm_threshold,
                              direction="above", severity=AlarmSeverity.WARNING,
                              persistence_s=2 * self.config.sample_period_s),
            ],
            rearm_time_s=1800.0,
        )

    # ------------------------------------------------------------------- run
    def run(self) -> HomeMonitoringResult:
        config = self.config
        alarm = self._make_alarm()
        sample_times = np.arange(config.sample_period_s, config.duration_s, config.sample_period_s)
        samples: List[Tuple[float, float, float]] = []
        detection_times: List[float] = []

        for time in sample_times:
            spo2, heart_rate = self._sampled_vitals(float(time))
            samples.append((float(time), spo2, heart_rate))
            if config.mode == "real_time":
                arrival = float(time) + config.network_latency_s
                raised = alarm.observe(arrival, "spo2", spo2)
                raised += alarm.observe(arrival, "heart_rate", heart_rate)
                detection_times.extend(event.time for event in raised)

        if config.mode == "store_and_forward":
            upload_times = np.arange(config.upload_period_s, config.duration_s + config.upload_period_s,
                                     config.upload_period_s)
            previous_upload = 0.0
            for upload_time in upload_times:
                batch = [s for s in samples if previous_upload < s[0] <= upload_time]
                previous_upload = float(upload_time)
                review_time = float(upload_time) + config.review_delay_s
                # The clinician reviews the batch at review_time; any threshold
                # crossing in the batch is only noticed then.
                for time, spo2, heart_rate in batch:
                    raised = alarm.observe(time, "spo2", spo2)
                    raised += alarm.observe(time, "heart_rate", heart_rate)
                    if raised:
                        detection_times.append(review_time)

        episode_onsets = [episode.onset_s for episode in config.episodes]
        latencies: List[float] = []
        detected = 0
        for onset in episode_onsets:
            latency = detection_latency(onset, sorted(set(detection_times)))
            if latency is not None:
                detected += 1
                latencies.append(latency)
        return HomeMonitoringResult(
            mode=config.mode,
            episodes=len(config.episodes),
            detected_episodes=detected,
            detection_latencies_s=latencies,
            alarms_raised=len(alarm.alarms),
        )


# --------------------------------------------------------------- campaigns
@campaign_scenario(
    "home",
    defaults={
        "mode": "real_time",
        "duration_s": 24.0 * 3600.0,
        "sample_period_s": 60.0,
        "upload_period_s": 4.0 * 3600.0,
        "review_delay_s": 1800.0,
        "network_latency_s": 2.0,
        "detection_window_s": 1800.0,
    },
    result_fields=(
        "mode", "episodes", "detected_episodes", "alarms_raised",
        "mean_detection_latency_s", "detected_within_window",
    ),
    description="Home telemonitoring: store-and-forward vs real-time (experiment E12 at scale)",
)
def run_home_campaign(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Campaign runner: one 24 h home-monitoring episode."""
    config = HomeMonitoringConfig(
        mode=params["mode"],
        duration_s=params["duration_s"],
        sample_period_s=params["sample_period_s"],
        upload_period_s=params["upload_period_s"],
        review_delay_s=params["review_delay_s"],
        network_latency_s=params["network_latency_s"],
        seed=seed,
    )
    result = HomeMonitoringScenario(config).run()
    return {
        "mode": result.mode,
        "episodes": result.episodes,
        "detected_episodes": result.detected_episodes,
        "alarms_raised": result.alarms_raised,
        "mean_detection_latency_s": result.mean_detection_latency_s,
        "detected_within_window": result.detected_within(params["detection_window_s"]),
        "detection_latencies_s": result.detection_latencies_s,
    }
