"""X-ray / ventilator synchronisation scenario (Section II(b) of the paper).

A sequence of intra-operative chest X-rays is requested while the patient is
ventilated.  Three coordination modes are compared:

* ``manual`` -- the clinician pauses the ventilator by hand, shoots, and is
  supposed to restart it; with probability ``forget_restart_probability``
  the restart is forgotten (the fatal failure of Lofsky [15]).  Images may
  also be blurred if the exposure is not aligned with a zero-flow window.
* ``pause_restart`` -- the X-ray machine pauses/resumes the ventilator over
  the network; a lost resume command leaves the patient apnoeic until a
  watchdog (if enabled) or a caregiver notices.
* ``state_broadcast`` -- the ventilator broadcasts its breathing phase and
  the X-ray machine shoots inside the end-expiratory window; the ventilator
  is never paused, removing the apnoea hazard entirely at the cost of
  possibly skipping windows (retries) when timing is too tight.

The result captures image quality, apnoea exposure, and hazard counts for
experiment E3.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.campaign.registry import campaign_scenario
from repro.devices.ventilator import Ventilator, VentilatorSettings
from repro.devices.xray import XRayConfig, XRayMachine
from repro.sim.channel import Channel, ChannelConfig
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


@dataclass
class XRayVentilatorConfig:
    """Workload and coordination parameters."""

    mode: str = "state_broadcast"
    image_requests: int = 10
    request_period_s: float = 300.0
    ventilator: VentilatorSettings = field(default_factory=VentilatorSettings)
    xray: XRayConfig = field(default_factory=XRayConfig)
    command_loss_probability: float = 0.0
    network_latency_s: float = 0.05
    forget_restart_probability: float = 0.05
    apnea_watchdog_enabled: bool = False
    apnea_watchdog_timeout_s: float = 60.0
    seed: int = 0

    def validate(self) -> None:
        if self.mode not in ("manual", "pause_restart", "state_broadcast"):
            raise ValueError(f"unknown coordination mode {self.mode!r}")
        if self.image_requests < 0:
            raise ValueError("image_requests must be non-negative")
        if self.request_period_s <= 0:
            raise ValueError("request_period_s must be positive")
        if not 0 <= self.command_loss_probability <= 1:
            raise ValueError("command_loss_probability must be in [0, 1]")
        if not 0 <= self.forget_restart_probability <= 1:
            raise ValueError("forget_restart_probability must be in [0, 1]")
        if self.network_latency_s < 0:
            raise ValueError("network_latency_s must be non-negative")


@dataclass
class XRayVentilatorResult:
    """Metrics of one X-ray/ventilator run."""

    mode: str
    images_requested: int
    images_taken: int
    sharp_images: int
    blurred_images: int
    skipped_windows: int
    apnea_episodes: int
    total_apnea_time_s: float
    max_apnea_time_s: float
    unsafe_apnea_events: int
    ventilator_left_paused: bool

    @property
    def image_success_rate(self) -> float:
        if self.images_requested == 0:
            return 1.0
        return self.sharp_images / self.images_requested


class XRayVentilatorScenario:
    """Builds and runs the X-ray/ventilator synchronisation scenario."""

    def __init__(self, config: Optional[XRayVentilatorConfig] = None) -> None:
        self.config = config or XRayVentilatorConfig()
        self.config.validate()
        self.trace = TraceRecorder()
        self.simulator = Simulator()
        self._rng = np.random.default_rng(self.config.seed)
        self._apnea_intervals: List[List[float]] = []  # [start, end or None]

        xray_config = XRayConfig(
            exposure_time_s=self.config.xray.exposure_time_s,
            preparation_time_s=self.config.xray.preparation_time_s,
            coordination_mode=self.config.mode if self.config.mode != "manual" else "manual",
            assumed_transmission_delay_s=max(
                self.config.xray.assumed_transmission_delay_s, self.config.network_latency_s
            ),
        )
        self.ventilator = Ventilator(
            "ventilator-1",
            self.config.ventilator,
            broadcast_state=(self.config.mode == "state_broadcast"),
            trace=self.trace,
        )
        self.command_channel = Channel(
            self.simulator,
            name="xray-to-ventilator",
            config=ChannelConfig(
                latency_s=self.config.network_latency_s,
                loss_probability=self.config.command_loss_probability,
            ),
            rng=self._rng,
        )
        self.command_channel.subscribe(self._deliver_ventilator_command)
        self.xray = XRayMachine(
            "xray-1",
            xray_config,
            ventilator=self.ventilator,
            send_ventilator_command=self._send_ventilator_command,
            trace=self.trace,
        )
        self.simulator.register(self.ventilator)
        self.simulator.register(self.xray)
        self._wire_state_broadcast()
        self._schedule_requests()
        if self.config.apnea_watchdog_enabled:
            self.simulator.call_every(5.0, self._watchdog, name="apnea_watchdog")

    # ------------------------------------------------------------- plumbing
    def _wire_state_broadcast(self) -> None:
        if self.config.mode != "state_broadcast":
            return
        broadcast_channel = Channel(
            self.simulator,
            name="ventilator-broadcast",
            config=ChannelConfig(latency_s=self.config.network_latency_s),
            rng=self._rng,
        )
        self.broadcast_channel = broadcast_channel

        def publish_via_channel(topic: str, payload) -> None:
            if topic == "breath_phase":
                broadcast_channel.send("ventilator-1", topic, payload)

        self.ventilator.attach_publisher(publish_via_channel)
        broadcast_channel.subscribe(lambda message: self.xray.on_ventilator_state(message.payload),
                                    topic="breath_phase")

    def _send_ventilator_command(self, command: str) -> bool:
        """Network path for pause/resume commands in pause_restart mode."""
        if self.config.mode == "manual":
            # The clinician acts directly at the ventilator.
            if command == "pause":
                return self.ventilator.hold()
            if command == "resume":
                if self._rng.random() < self.config.forget_restart_probability:
                    return False  # forgot to restart
                return self.ventilator.resume()
            return False
        self.command_channel.send("xray-1", command, {})
        return True

    def _deliver_ventilator_command(self, message) -> None:
        if message.topic == "pause":
            self.ventilator.hold()
        elif message.topic == "resume":
            self.ventilator.resume()

    def _schedule_requests(self) -> None:
        for index in range(self.config.image_requests):
            request_time = (index + 1) * self.config.request_period_s
            if self.config.mode == "manual":
                self.simulator.schedule(request_time, self._manual_image_workflow,
                                        name=f"image_request_{index}")
            else:
                self.simulator.schedule(request_time, self.xray.request_image,
                                        name=f"image_request_{index}")

    def _manual_image_workflow(self) -> None:
        """The uncoordinated clinical workflow of Lofsky [15].

        The clinician pauses the ventilator by hand, takes the exposure, and
        is supposed to restart it afterwards; with probability
        ``forget_restart_probability`` the restart never happens.
        """
        self.ventilator.hold()
        self.simulator.schedule(2.0, self.xray.request_image, name="manual_exposure")

        def maybe_resume() -> None:
            if self._rng.random() >= self.config.forget_restart_probability:
                self.ventilator.resume()
            else:
                self.trace.event(self.simulator.now, "restart_forgotten", source="clinician")

        self.simulator.schedule(6.0, maybe_resume, name="manual_resume")

    # ------------------------------------------------------------- watchdogs
    def _watchdog(self) -> None:
        if self.ventilator.apnea_duration() > self.config.apnea_watchdog_timeout_s:
            self.ventilator.resume()
            self.trace.event(self.simulator.now, "watchdog_resume", source="watchdog")

    # ------------------------------------------------------------------- run
    def run(self, duration_s: Optional[float] = None) -> XRayVentilatorResult:
        duration = duration_s or (self.config.image_requests + 2) * self.config.request_period_s
        self.simulator.run(until=duration)
        # Apnea intervals come straight from the ventilator's hold history;
        # an un-resumed hold is open until the end of the run.
        apnea_durations = [
            (end if end is not None else self.simulator.now) - start
            for start, end in self.ventilator.hold_history
        ]
        max_safe = self.config.ventilator.max_safe_apnea_s
        return XRayVentilatorResult(
            mode=self.config.mode,
            images_requested=self.config.image_requests,
            images_taken=len(self.xray.images),
            sharp_images=self.xray.successful_images,
            blurred_images=self.xray.blurred_images,
            skipped_windows=self.xray.skipped_windows,
            apnea_episodes=len(apnea_durations),
            total_apnea_time_s=float(sum(apnea_durations)),
            max_apnea_time_s=float(max(apnea_durations)) if apnea_durations else 0.0,
            unsafe_apnea_events=sum(1 for duration in apnea_durations if duration > max_safe),
            ventilator_left_paused=self.ventilator.phase.value == "held",
        )


# --------------------------------------------------------------- campaigns
@campaign_scenario(
    "xray_vent",
    defaults={
        "mode": "state_broadcast",
        "image_requests": 10,
        "request_period_s": 300.0,
        "command_loss_probability": 0.0,
        "network_latency_s": 0.05,
        "forget_restart_probability": 0.05,
        "apnea_watchdog_enabled": False,
        "apnea_watchdog_timeout_s": 60.0,
    },
    result_fields=(
        "mode", "images_requested", "sharp_images", "image_success_rate",
        "apnea_episodes", "total_apnea_time_s", "unsafe_apnea_events",
    ),
    description="X-ray / ventilator coordination-mode comparison (experiment E3 at scale)",
)
def run_xray_vent_campaign(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Campaign runner: one X-ray/ventilator synchronisation session."""
    config = XRayVentilatorConfig(
        mode=params["mode"],
        image_requests=params["image_requests"],
        request_period_s=params["request_period_s"],
        command_loss_probability=params["command_loss_probability"],
        network_latency_s=params["network_latency_s"],
        forget_restart_probability=params["forget_restart_probability"],
        apnea_watchdog_enabled=params["apnea_watchdog_enabled"],
        apnea_watchdog_timeout_s=params["apnea_watchdog_timeout_s"],
        seed=seed,
    )
    result = XRayVentilatorScenario(config).run()
    record = asdict(result)
    record["image_success_rate"] = result.image_success_rate
    return record
