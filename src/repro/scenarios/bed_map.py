"""Mixed-criticality bed / MAP context scenario (Section III(l) of the paper).

A monitored patient's bed is raised and lowered during routine care.  Each
move shifts the arterial-line transducer relative to the heart and steps the
measured MAP without any physiological change.  A conventional threshold
alarm fires on these artefacts; a context-aware smart alarm that subscribes
to the bed's ``bed_height`` events suppresses them, while still alarming on
genuine hypotension episodes injected into the same run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.alarms.smart import ContextEvent, SmartAlarmEngine, bed_map_suppression_rules
from repro.campaign.registry import campaign_scenario
from repro.campaign.spec import patient_from_params
from repro.alarms.thresholds import AlarmSeverity, ThresholdAlarm, ThresholdRule
from repro.analysis.metrics import AlarmConfusion, classify_alarms
from repro.devices.bed import HospitalBed
from repro.devices.bp_monitor import BloodPressureMonitor, BloodPressureMonitorConfig
from repro.patient.model import PatientModel
from repro.patient.population import DEFAULT_PATIENT, PatientParameters
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


@dataclass
class BedMapConfig:
    """Workload parameters for the bed/MAP scenario."""

    duration_s: float = 6.0 * 3600.0
    bed_moves: int = 8
    bed_move_height_cm: float = 40.0
    true_hypotension_episodes: int = 2
    hypotension_map_mmhg: float = 55.0
    hypotension_duration_s: float = 900.0
    use_context_awareness: bool = True
    map_alarm_threshold_mmhg: float = 65.0
    sample_period_s: float = 15.0
    seed: int = 0
    patient: PatientParameters = field(default_factory=lambda: DEFAULT_PATIENT)

    def validate(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.bed_moves < 0 or self.true_hypotension_episodes < 0:
            raise ValueError("event counts must be non-negative")
        if self.hypotension_duration_s <= 0:
            raise ValueError("hypotension_duration_s must be positive")


@dataclass
class BedMapResult:
    """Metrics reported by experiment E5."""

    context_aware: bool
    bed_moves: int
    true_episodes: int
    clinical_alarms: int
    suppressed_alarms: int
    technical_advisories: int
    confusion: AlarmConfusion

    @property
    def false_alarm_count(self) -> int:
        return self.confusion.false_positives

    @property
    def missed_episodes(self) -> int:
        return self.confusion.false_negatives


class BedMapScenario:
    """Builds and runs the mixed-criticality bed/MAP scenario."""

    def __init__(self, config: Optional[BedMapConfig] = None) -> None:
        self.config = config or BedMapConfig()
        self.config.validate()
        self.trace = TraceRecorder()
        self.simulator = Simulator()
        self._rng = np.random.default_rng(self.config.seed)
        self.patient = PatientModel(self.config.patient, trace=self.trace, rng=self._rng)
        # Septic-shock-like hypotension develops over minutes, not the default
        # slow drift, so the injected episodes actually cross the alarm limit.
        self.patient.map_model.parameters.drift_time_constant_min = 8.0
        self.simulator.register(self.patient)
        self.bed = HospitalBed("bed-1", self.patient, trace=self.trace)
        self.bp_monitor = BloodPressureMonitor(
            "bp-1", self.patient, BloodPressureMonitorConfig(sample_period_s=self.config.sample_period_s),
            trace=self.trace,
        )
        self.simulator.register(self.bed)
        self.simulator.register(self.bp_monitor)

        base_alarm = ThresholdAlarm(
            "map_alarm",
            [ThresholdRule(vital="map", threshold=self.config.map_alarm_threshold_mmhg,
                           direction="below", severity=AlarmSeverity.CRITICAL)],
            rearm_time_s=300.0,
        )
        suppression = bed_map_suppression_rules() if self.config.use_context_awareness else []
        self.alarm_engine = SmartAlarmEngine(base_alarm, suppression_rules=suppression)

        self._episode_intervals: List[Tuple[float, float]] = []
        self._schedule_events()
        self.simulator.call_every(self.config.sample_period_s, self._sample_alarms, name="alarm_sampler")

    # ------------------------------------------------------------- schedule
    def _schedule_events(self) -> None:
        config = self.config
        # Bed moves spread over the run (alternating raise / lower).
        for index in range(config.bed_moves):
            time = (index + 1) * config.duration_s / (config.bed_moves + 1)
            height = config.bed_move_height_cm if index % 2 == 0 else 0.0
            self.simulator.schedule_at(time, lambda h=height: self._move_bed(h), name=f"bed_move_{index}")

        # Genuine hypotension episodes placed in the second half of the run,
        # offset from bed moves.
        for index in range(config.true_hypotension_episodes):
            start = config.duration_s * (0.35 + 0.5 * (index + 1) / (config.true_hypotension_episodes + 1))
            end = start + config.hypotension_duration_s
            self._episode_intervals.append((start, end))
            self.simulator.schedule_at(start, lambda: self.patient.map_model.set_target_map(
                config.hypotension_map_mmhg), name=f"hypotension_start_{index}")
            self.simulator.schedule_at(end, lambda i=index: self._end_hypotension_episode(i),
                                       name=f"hypotension_end_{index}")

    def _end_hypotension_episode(self, index: int) -> None:
        # With overlapping episodes, the earlier episode's end must not reset
        # the target MAP to baseline while a later episode is still running —
        # that would silently weaken the injected ground truth the confusion
        # matrix is scored against.  Restore only once no other episode covers
        # the current time.
        now = self.simulator.now
        for other, (start, end) in enumerate(self._episode_intervals):
            if other != index and start <= now < end:
                return
        self.patient.map_model.set_target_map(self.patient.map_model.parameters.baseline_map_mmhg)

    def _move_bed(self, height_cm: float) -> None:
        self.bed.set_height(height_cm)
        if self.config.use_context_awareness:
            self.alarm_engine.observe_context(
                ContextEvent(time=self.simulator.now, kind="bed_height_change", source="bed-1",
                             data={"height_cm": height_cm})
            )

    def _sample_alarms(self) -> None:
        reading = self.patient.map_model.measured_map_mmhg
        self.alarm_engine.observe(self.simulator.now, "map", reading)

    # ------------------------------------------------------------------- run
    def run(self) -> BedMapResult:
        self.simulator.run(until=self.config.duration_s)
        # Hypotension develops with the MAP drift time constant, so give the
        # alarm classification a grace window around each episode.
        extended_episodes = [
            (start, end + 600.0) for start, end in self._episode_intervals
        ]
        confusion = classify_alarms(
            self.alarm_engine.clinical_alarm_times, extended_episodes, detection_lead_s=60.0
        )
        counts = self.alarm_engine.counts()
        return BedMapResult(
            context_aware=self.config.use_context_awareness,
            bed_moves=self.config.bed_moves,
            true_episodes=len(self._episode_intervals),
            clinical_alarms=counts["clinical"],
            suppressed_alarms=counts["suppressed"],
            technical_advisories=counts["technical"],
            confusion=confusion,
        )


# --------------------------------------------------------------- campaigns
@campaign_scenario(
    "bed_map",
    defaults={
        "duration_s": 6.0 * 3600.0,
        "bed_moves": 8,
        "bed_move_height_cm": 40.0,
        "true_hypotension_episodes": 2,
        "use_context_awareness": True,
        "map_alarm_threshold_mmhg": 65.0,
        "sample_period_s": 15.0,
    },
    result_fields=(
        "context_aware", "bed_moves", "true_episodes", "clinical_alarms",
        "suppressed_alarms", "false_alarms", "missed_episodes",
    ),
    supports_cohort=True,
    description="Context-aware bed/MAP false-alarm suppression (experiment E5 at scale)",
)
def run_bed_map_campaign(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Campaign runner: one bed/MAP monitoring shift."""
    config = BedMapConfig(
        duration_s=params["duration_s"],
        bed_moves=params["bed_moves"],
        bed_move_height_cm=params["bed_move_height_cm"],
        true_hypotension_episodes=params["true_hypotension_episodes"],
        use_context_awareness=params["use_context_awareness"],
        map_alarm_threshold_mmhg=params["map_alarm_threshold_mmhg"],
        sample_period_s=params["sample_period_s"],
        seed=seed,
        patient=patient_from_params(params),
    )
    result = BedMapScenario(config).run()
    return {
        "context_aware": result.context_aware,
        "bed_moves": result.bed_moves,
        "true_episodes": result.true_episodes,
        "clinical_alarms": result.clinical_alarms,
        "suppressed_alarms": result.suppressed_alarms,
        "technical_advisories": result.technical_advisories,
        "false_alarms": result.false_alarm_count,
        "missed_episodes": result.missed_episodes,
        "alarm_sensitivity": result.confusion.sensitivity,
        "alarm_precision": result.confusion.precision,
    }
