"""Declarative specification and fault workloads for the closed-loop PCA scenario.

This module complements :mod:`repro.core.loop` (which wires the executable
system) with the *declarative* scenario description of Section III(e) -- the
artefact that the workflow analysis, device matching, and scenario
compilation operate on -- and with the standard fault campaign used by
experiment E1.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.campaign.registry import CampaignError, campaign_scenario
from repro.campaign.spec import patient_from_params
from repro.sim.faults import FaultSpec, fault_plan_specs
from repro.workflow.spec import (
    CaregiverRole,
    ClinicalScenario,
    DataFlow,
    DecisionRule,
    DeviceRole,
    ProcedureStep,
)


def build_pca_scenario_spec(
    *,
    spo2_stop_threshold: float = 92.0,
    respiratory_rate_stop_threshold: float = 8.0,
    include_capnograph: bool = True,
) -> ClinicalScenario:
    """The closed-loop PCA safety scenario as a clinical workflow specification."""
    device_roles = [
        DeviceRole(
            role="analgesia_pump",
            device_type="pca_pump",
            required_topics=("pump_status",),
            required_commands=("stop", "resume"),
            description="PCA pump delivering opioid boluses on patient demand",
        ),
        DeviceRole(
            role="spo2_source",
            device_type="pulse_oximeter",
            required_topics=("spo2", "heart_rate"),
            description="pulse oximeter on the patient's finger",
        ),
    ]
    data_flows = [
        DataFlow(source_role="spo2_source", topic="spo2", destination_role="supervisor",
                 max_latency_s=1.0, max_period_s=5.0),
        DataFlow(source_role="spo2_source", topic="heart_rate", destination_role="supervisor",
                 max_latency_s=1.0, max_period_s=5.0),
        DataFlow(source_role="analgesia_pump", topic="pump_status", destination_role="supervisor",
                 max_latency_s=2.0, max_period_s=20.0),
    ]
    decision_rules = [
        DecisionRule(
            name="stop_on_desaturation",
            condition=lambda obs: obs["spo2"] < spo2_stop_threshold,
            target_role="analgesia_pump",
            command="stop",
            priority=10,
            description="stop the infusion when SpO2 falls below the safety threshold",
        ),
    ]
    if include_capnograph:
        device_roles.append(
            DeviceRole(
                role="respiration_source",
                device_type="capnograph",
                required_topics=("respiratory_rate",),
                description="capnograph measuring respiratory rate",
            )
        )
        data_flows.append(
            DataFlow(source_role="respiration_source", topic="respiratory_rate",
                     destination_role="supervisor", max_latency_s=1.0, max_period_s=10.0)
        )
        decision_rules.append(
            DecisionRule(
                name="stop_on_hypoventilation",
                condition=lambda obs: obs["respiratory_rate"] < respiratory_rate_stop_threshold,
                target_role="analgesia_pump",
                command="stop",
                priority=9,
                description="stop the infusion when the respiratory rate collapses",
            )
        )

    caregiver_roles = [
        CaregiverRole(
            role="nurse",
            description="ward nurse responsible for the patient",
            responsibilities=("programme the pump", "respond to supervisor alarms"),
        ),
        CaregiverRole(
            role="pharmacist",
            description="prepares and labels the opioid syringe",
            responsibilities=("verify drug concentration",),
        ),
    ]
    procedure = [
        ProcedureStep(
            step_id="verify_prescription",
            role="pharmacist",
            action="verify the prescription and syringe concentration",
            next_steps={"ok": "program_pump", "mismatch": "escalate_pharmacy"},
            is_initial=True,
            expected_duration_s=180.0,
        ),
        ProcedureStep(
            step_id="escalate_pharmacy",
            role="pharmacist",
            action="return the syringe to the pharmacy and obtain a corrected one",
            next_steps={"ok": "verify_prescription"},
            expected_duration_s=900.0,
        ),
        ProcedureStep(
            step_id="program_pump",
            role="nurse",
            action="programme bolus dose, lockout, and hourly limit into the pump",
            next_steps={"ok": "attach_sensors", "programming_error": "program_pump"},
            expected_duration_s=240.0,
        ),
        ProcedureStep(
            step_id="attach_sensors",
            role="nurse",
            action="attach pulse oximeter (and capnograph) to the patient",
            next_steps={"ok": "start_infusion", "sensor_fault": "replace_sensor"},
            expected_duration_s=120.0,
        ),
        ProcedureStep(
            step_id="replace_sensor",
            role="nurse",
            action="replace the faulty sensor",
            next_steps={"ok": "attach_sensors"},
            expected_duration_s=300.0,
        ),
        ProcedureStep(
            step_id="start_infusion",
            role="nurse",
            action="start the PCA infusion and verify supervisor connectivity",
            next_steps={"ok": "monitor", "no_connectivity": "troubleshoot_network"},
            expected_duration_s=120.0,
        ),
        ProcedureStep(
            step_id="troubleshoot_network",
            role="nurse",
            action="re-establish the device network connection or revert to open-loop monitoring",
            next_steps={"ok": "start_infusion", "unresolved": "revert_open_loop"},
            expected_duration_s=600.0,
        ),
        ProcedureStep(
            step_id="revert_open_loop",
            role="nurse",
            action="document reversion to standard monitoring and increase rounding frequency",
            next_steps={},
            expected_duration_s=120.0,
        ),
        ProcedureStep(
            step_id="monitor",
            role="nurse",
            action="respond to supervisor alarms; assess the patient at every alarm",
            next_steps={"alarm": "assess_patient", "shift_end": "handover"},
            expected_duration_s=1800.0,
        ),
        ProcedureStep(
            step_id="assess_patient",
            role="nurse",
            action="assess sedation and respiration; resume or discontinue therapy",
            next_steps={"resume": "monitor", "discontinue": "handover"},
            expected_duration_s=300.0,
        ),
        ProcedureStep(
            step_id="handover",
            role="nurse",
            action="hand the patient over to the next shift with the PCA status",
            next_steps={},
            expected_duration_s=300.0,
        ),
    ]

    return ClinicalScenario(
        name="closed_loop_pca",
        description="Closed-loop patient-controlled analgesia with a safety supervisor (Figure 1)",
        device_roles=device_roles,
        data_flows=data_flows,
        caregiver_roles=caregiver_roles,
        procedure=procedure,
        decision_rules=decision_rules,
    )


#: The per-step outcome alphabet used when analysing the PCA procedure for
#: coverage (experiment E9 seeds defects by deleting transitions from it).
PCA_OUTCOME_ALPHABET: Dict[str, List[str]] = {
    "verify_prescription": ["ok", "mismatch"],
    "program_pump": ["ok", "programming_error"],
    "attach_sensors": ["ok", "sensor_fault"],
    "start_infusion": ["ok", "no_connectivity"],
    "troubleshoot_network": ["ok", "unresolved"],
    "monitor": ["alarm", "shift_end"],
    "assess_patient": ["resume", "discontinue"],
}


def pca_fault_campaign(
    *,
    misprogramming_rate_multiplier: float = 4.0,
    misprogramming_time_s: float = 1800.0,
    proxy_press_time_s: float = 3600.0,
    proxy_press_count: int = 6,
    include_communication_outage: bool = False,
    outage_start_s: float = 5400.0,
    outage_duration_s: float = 600.0,
) -> List[FaultSpec]:
    """The standard fault workload of experiment E1.

    Combines the adverse-event causes the paper enumerates: misprogramming
    (wrong rate), PCA-by-proxy (someone else pressing the button), and --
    optionally -- a communication outage on the oximeter uplink that the
    supervisor must fail safe on.
    """
    faults = [
        FaultSpec(
            kind="misprogramming",
            start=misprogramming_time_s,
            target="pca-pump-1",
            parameters={"rate_multiplier": misprogramming_rate_multiplier},
        ),
        FaultSpec(
            kind="pca_by_proxy",
            start=proxy_press_time_s,
            target="pca-pump-1",
            parameters={"count": proxy_press_count},
        ),
    ]
    if include_communication_outage:
        faults.append(
            FaultSpec(
                kind="channel_outage",
                start=outage_start_s,
                duration=outage_duration_s,
                target="uplink:pulse-ox-1",
            )
        )
    return faults


# --------------------------------------------------------------- campaigns
def _validate_pca_campaign(spec) -> None:
    """Reject spec shapes that would silently mislead (caught before any run)."""
    if spec.cohort_size > 0:
        return
    shaped = [key for key in ("sensitive_fraction", "athlete_fraction")
              if key in spec.parameters]
    if shaped:
        raise CampaignError(
            f"{shaped} shape the sampled cohort and have no effect without "
            "one; set cohort_size > 0 in the campaign spec"
        )


@campaign_scenario(
    "pca",
    defaults={
        "mode": "closed_loop",
        "policy": "fused",
        "duration_s": 3.0 * 3600.0,
        "with_capnograph": True,
        "bolus_dose_mg": 1.5,
        "lockout_interval_s": 300.0,
        "hourly_limit_mg": 12.0,
        "basal_rate_mg_per_hr": 1.5,
        "button_press_period_s": 420.0,
        "faults": "none",
        "misprogramming_rate_multiplier": 4.0,
        "sensitive_fraction": 0.15,
        "athlete_fraction": 0.1,
    },
    result_fields=(
        "mode", "patient_id", "harmed", "respiratory_failure_events",
        "time_below_spo2_90_s", "min_spo2", "total_drug_delivered_mg",
        "mean_pain_level", "supervisor_stops",
    ),
    supports_cohort=True,
    supports_faults=True,
    description="Closed-loop PCA safety run over a patient cohort (experiment E1 at scale)",
    spec_validator=_validate_pca_campaign,
)
def run_pca_campaign(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Campaign runner: one closed-/open-loop PCA encounter, fully seeded."""
    from repro.core.loop import ClosedLoopPCASystem, PCASystemConfig
    from repro.core.pca import SupervisorConfig
    from repro.devices.pca_pump import PCAPrescription

    patient = patient_from_params(
        params,
        sensitive_fraction=params["sensitive_fraction"],
        athlete_fraction=params["athlete_fraction"],
    )

    preset = params["faults"]
    if preset == "none":
        faults: List[FaultSpec] = []
    elif preset == "standard":
        faults = pca_fault_campaign(
            misprogramming_rate_multiplier=params["misprogramming_rate_multiplier"]
        )
    elif preset == "standard+outage":
        faults = pca_fault_campaign(
            misprogramming_rate_multiplier=params["misprogramming_rate_multiplier"],
            include_communication_outage=True,
        )
    else:
        raise ValueError(f"unknown fault plan {preset!r}")
    # Declarative campaign faults (a spec's ``faults`` block compiles to the
    # engine-injected ``fault_plan`` param) compose with the preset above:
    # the paper's outage sweeps ride on top of any standard fault workload.
    faults = faults + fault_plan_specs(params.get("fault_plan", ()))

    config = PCASystemConfig(
        mode=params["mode"],
        duration_s=params["duration_s"],
        patient=patient,
        prescription=PCAPrescription(
            bolus_dose_mg=params["bolus_dose_mg"],
            lockout_interval_s=params["lockout_interval_s"],
            hourly_limit_mg=params["hourly_limit_mg"],
            basal_rate_mg_per_hr=params["basal_rate_mg_per_hr"],
        ),
        supervisor=SupervisorConfig(policy=params["policy"]),
        with_capnograph=params["with_capnograph"],
        button_press_period_s=params["button_press_period_s"],
        faults=faults,
        seed=seed,
    )
    return ClosedLoopPCASystem(config).run().as_record()
