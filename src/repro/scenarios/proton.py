"""Proton-therapy beam scheduling scenario (Section II(a) of the paper).

Several treatment rooms share one cyclotron beam.  Each room requests dose
fractions; per-room imaging occasionally detects patient motion, which must
cut the beam for that room promptly; a facility-wide emergency shutdown can
also be triggered.  The experiment measures throughput (completed fractions,
beam utilisation, waiting times), the interference between scheduling and
application (aborted fractions caused by motion during delivery), and the
latency of the two safety paths.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.campaign.registry import campaign_scenario
from repro.devices.proton import ProtonTherapySystem, TreatmentRoom
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


@dataclass
class ProtonSchedulingConfig:
    rooms: int = 3
    fractions_per_room: int = 4
    fraction_spots: int = 60
    spot_duration_s: float = 0.4
    request_period_s: float = 400.0
    switch_time_s: float = 20.0
    motion_events_per_room: int = 1
    emergency_shutdown_time_s: Optional[float] = None
    duration_s: float = 2.0 * 3600.0
    seed: int = 0

    def validate(self) -> None:
        if self.rooms <= 0:
            raise ValueError("rooms must be positive")
        if self.fractions_per_room < 0 or self.motion_events_per_room < 0:
            raise ValueError("event counts must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


@dataclass
class ProtonSchedulingResult:
    rooms: int
    fractions_requested: int
    fractions_completed: int
    fractions_aborted: int
    beam_utilisation: float
    mean_waiting_time_s: float
    max_waiting_time_s: float
    motion_events: int
    beam_switches: int
    emergency_shutdown_triggered: bool

    @property
    def completion_rate(self) -> float:
        if self.fractions_requested == 0:
            return 1.0
        return self.fractions_completed / self.fractions_requested


class ProtonSchedulingScenario:
    """Builds and runs the multi-room proton therapy scheduling scenario."""

    def __init__(self, config: Optional[ProtonSchedulingConfig] = None) -> None:
        self.config = config or ProtonSchedulingConfig()
        self.config.validate()
        self.trace = TraceRecorder()
        self.simulator = Simulator()
        self._rng = np.random.default_rng(self.config.seed)
        self.system = ProtonTherapySystem(
            "proton-1", switch_time_s=self.config.switch_time_s, trace=self.trace
        )
        self.simulator.register(self.system)
        self.rooms: List[TreatmentRoom] = []
        for index in range(self.config.rooms):
            motion_times = sorted(
                float(self._rng.uniform(0.1, 0.9) * self.config.duration_s)
                for _ in range(self.config.motion_events_per_room)
            )
            room = TreatmentRoom(
                f"room-{index}",
                fraction_spots=self.config.fraction_spots,
                spot_duration_s=self.config.spot_duration_s,
                request_period_s=self.config.request_period_s,
                fractions=self.config.fractions_per_room,
                motion_times=motion_times,
                priority=0,
            )
            self.system.attach_room(room)
            self.simulator.register(room)
            self.rooms.append(room)
        if self.config.emergency_shutdown_time_s is not None:
            self.simulator.schedule_at(
                self.config.emergency_shutdown_time_s,
                self.system.emergency_shutdown,
                name="emergency_shutdown",
            )

    def run(self) -> ProtonSchedulingResult:
        self.simulator.run(until=self.config.duration_s)
        all_requests = [request for room in self.rooms for request in room.requests]
        waits = [request.waiting_time_s for request in all_requests if request.waiting_time_s is not None]
        return ProtonSchedulingResult(
            rooms=self.config.rooms,
            fractions_requested=len(all_requests),
            fractions_completed=self.system.completed_fractions,
            fractions_aborted=self.system.aborted_fractions,
            beam_utilisation=self.system.utilisation(self.config.duration_s),
            mean_waiting_time_s=float(np.mean(waits)) if waits else 0.0,
            max_waiting_time_s=float(np.max(waits)) if waits else 0.0,
            motion_events=len(self.system.motion_cutoffs),
            beam_switches=self.system.switch_count,
            emergency_shutdown_triggered=self.system.shutdown,
        )


# --------------------------------------------------------------- campaigns
@campaign_scenario(
    "proton",
    defaults={
        "rooms": 3,
        "fractions_per_room": 4,
        "fraction_spots": 60,
        "spot_duration_s": 0.4,
        "request_period_s": 400.0,
        "switch_time_s": 20.0,
        "motion_events_per_room": 1,
        "emergency_shutdown_time_s": None,
        "duration_s": 2.0 * 3600.0,
    },
    result_fields=(
        "rooms", "fractions_requested", "fractions_completed", "completion_rate",
        "beam_utilisation", "mean_waiting_time_s", "motion_events",
    ),
    description="Multi-room proton beam scheduling throughput (experiment E8 at scale)",
)
def run_proton_campaign(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Campaign runner: one proton-therapy facility session."""
    config = ProtonSchedulingConfig(
        rooms=params["rooms"],
        fractions_per_room=params["fractions_per_room"],
        fraction_spots=params["fraction_spots"],
        spot_duration_s=params["spot_duration_s"],
        request_period_s=params["request_period_s"],
        switch_time_s=params["switch_time_s"],
        motion_events_per_room=params["motion_events_per_room"],
        emergency_shutdown_time_s=params["emergency_shutdown_time_s"],
        duration_s=params["duration_s"],
        seed=seed,
    )
    result = ProtonSchedulingScenario(config).run()
    record = asdict(result)
    record["completion_rate"] = result.completion_rate
    return record
