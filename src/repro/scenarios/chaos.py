"""Chaos scenario: a scripted misbehaving workload for resilience testing.

Every fault-tolerance claim the campaign engine makes (retry, quarantine,
timeout, worker-death survival) needs a workload that fails *on purpose, at
a chosen run, in a chosen way*.  This scenario is that workload: its
parameters name the repeat indices at which runs raise, hang, flake, or
SIGKILL their own worker, and every run that does none of those returns a
value derived purely from its seed — so the surviving records of a chaos
campaign are byte-identical across serial, parallel, crashed-and-resumed,
and degraded executions, which is exactly what the resilience tests assert.

It is registered like any clinical scenario, so the CI chaos job can drive
it end-to-end through ``python -m repro.campaign run``.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict, Set, Union

from repro.campaign.registry import campaign_scenario
from repro.campaign.resilience import TransientError, current_attempt, in_worker
from repro.sim.random import derive_seed


def _indices(value: Union[int, str]) -> Set[int]:
    """Parse a trigger parameter: an int, or a comma-separated index list.

    ``""`` (the default) triggers nothing; ``5`` triggers at repeat 5;
    ``"5,17,140"`` triggers at each listed repeat — letting one campaign
    script several failures without sweeping duplicate values.
    """
    if isinstance(value, int):
        return {value} if value >= 0 else set()
    text = str(value).strip()
    if not text:
        return set()
    return {int(part) for part in text.split(",")}


@campaign_scenario(
    "chaos",
    defaults={
        "behavior": "ok",
        "raise_at": "",
        "flaky_at": "",
        "hang_at": "",
        "kill_at": "",
        "fail_attempts": 2,
        "hang_s": 60.0,
        "work_s": 0.0,
        "cell": 0,
    },
    result_fields=("behavior", "value", "attempts"),
    description="Scripted failure workload (raise/flake/hang/kill) for resilience tests",
)
def run_chaos_campaign(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One chaos run: misbehave if this repeat index is scripted to.

    behavior:
        Baseline for unscripted runs: ``ok`` (return a record) or any of
        ``raise`` / ``flaky`` / ``hang`` / ``kill`` to misbehave on *every*
        run.
    raise_at / flaky_at / hang_at / kill_at:
        Repeat indices (int or ``"5,17"``-style list) that override the
        baseline: ``raise`` fails deterministically, ``flaky`` raises
        :class:`~repro.campaign.resilience.TransientError` until attempt
        ``fail_attempts``, ``hang`` sleeps ``hang_s`` (tripping a per-run
        timeout), ``kill`` SIGKILLs its own worker process mid-run.
    cell:
        Inert sweep axis so tests can build multi-point grids.
    """
    repeat = int(params.get("repeat", 0))
    behavior = str(params["behavior"])
    if repeat in _indices(params["kill_at"]):
        behavior = "kill"
    elif repeat in _indices(params["hang_at"]):
        behavior = "hang"
    elif repeat in _indices(params["raise_at"]):
        behavior = "raise"
    elif repeat in _indices(params["flaky_at"]):
        behavior = "flaky"

    if params["work_s"] > 0:
        time.sleep(float(params["work_s"]))

    if behavior == "raise":
        raise RuntimeError(f"chaos: scripted deterministic failure at repeat {repeat}")
    if behavior == "flaky":
        if current_attempt() < int(params["fail_attempts"]):
            raise TransientError(
                f"chaos: transient failure at repeat {repeat}, "
                f"attempt {current_attempt()}"
            )
    elif behavior == "hang":
        time.sleep(float(params["hang_s"]))
    elif behavior == "kill":
        if not in_worker():
            # Killing the only process would take the campaign (and the
            # test harness) down with it; outside a pool this scripted
            # fault degrades to a deterministic failure.
            raise RuntimeError(f"chaos: kill scripted at repeat {repeat} "
                               "outside a worker process")
        os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
    elif behavior != "ok":
        raise ValueError(f"unknown chaos behavior {behavior!r}")

    return {
        "behavior": behavior,
        "value": derive_seed(seed, "chaos:value") % 1_000_000,
        "attempts": current_attempt(),
    }
