"""Deterministic expansion of a :class:`TopologySpec` into a wired hospital.

Two layers, both position-independent (every random draw comes from a stream
derived with :func:`repro.sim.random.derive_seed` from ``(seed, stable
name)``, never from execution order):

* :func:`expand_topology` produces a plain-JSON **manifest** — which patient
  occupies which bed, which devices each bed carries, which channels exist —
  without touching a simulator.  Byte-identical for identical ``(spec,
  seed)`` regardless of ``PYTHONHASHSEED``, process, or call order; this is
  the determinism contract the topology tests pin.
* :func:`build_hospital` wires that manifest onto a live
  :class:`~repro.sim.kernel.Simulator`: patients, per-bed device stacks, a
  per-ward :class:`~repro.middleware.bus.DeviceBus`, ward supervisors with a
  closed-loop safety app, threshold alarms feeding staffed caregivers, and a
  hospital-wide :class:`~repro.sim.faults.FaultInjector` with every channel
  and device registered.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.alarms.thresholds import AlarmSeverity, ThresholdAlarm, ThresholdRule
from repro.core.caregiver import Caregiver, CaregiverConfig
from repro.devices.base import MedicalDevice
from repro.devices.bed import HospitalBed
from repro.devices.bp_monitor import BloodPressureMonitor
from repro.devices.capnograph import Capnograph
from repro.devices.pca_pump import PCAPump
from repro.devices.pulse_oximeter import PulseOximeter
from repro.middleware.bus import DeviceBus
from repro.middleware.supervisor_host import SupervisorApp, SupervisorHost
from repro.patient.model import PatientModel
from repro.patient.population import PatientParameters, PatientPopulation
from repro.readings import Reading
from repro.sim.faults import FaultInjector
from repro.sim.kernel import Simulator
from repro.sim.random import derive_seed
from repro.topology.spec import (
    DEVICE_SHORT_NAMES,
    DEVICE_TYPES,
    TopologySpec,
    WardSpec,
)

#: Cohort labels, in reporting order.
COHORTS = ("typical", "opioid_sensitive", "athlete")

#: Vitals the ward monitor watches (topic names as devices publish them).
MONITORED_VITALS = ("spo2", "respiratory_rate", "map", "heart_rate")


@dataclass(frozen=True)
class AlarmThresholds:
    """Ward-wide threshold-alarm limits (the paper's 'average patient' limits)."""

    spo2: float = 90.0
    respiratory_rate: float = 8.0
    map_mmhg: float = 65.0
    heart_rate: float = 50.0
    rearm_time_s: float = 300.0

    def rules(self) -> List[ThresholdRule]:
        return [
            ThresholdRule(vital="spo2", threshold=self.spo2,
                          direction="below", severity=AlarmSeverity.CRITICAL),
            ThresholdRule(vital="respiratory_rate", threshold=self.respiratory_rate,
                          direction="below", severity=AlarmSeverity.CRITICAL),
            ThresholdRule(vital="map", threshold=self.map_mmhg,
                          direction="below", severity=AlarmSeverity.WARNING),
            ThresholdRule(vital="heart_rate", threshold=self.heart_rate,
                          direction="below", severity=AlarmSeverity.WARNING),
        ]


# --------------------------------------------------------------------- naming
def bed_id_for(ward: str, index: int) -> str:
    return f"{ward}-bed-{index:03d}"


def device_id_for(bed_id: str, device_type: str) -> str:
    return f"{bed_id}-{DEVICE_SHORT_NAMES[device_type]}"


def _bed_seed_name(topology: str, ward: str, index: int, stream: str) -> str:
    return f"topology:{topology}:{ward}:bed{index}:{stream}"


# ------------------------------------------------------------------- manifest
def _cohort_label(sensitive: bool, athlete: bool) -> str:
    if sensitive:
        return "opioid_sensitive"
    if athlete:
        return "athlete"
    return "typical"


def _expand_bed(spec: TopologySpec, ward: WardSpec, index: int, seed: int) -> Dict[str, Any]:
    bed_id = bed_id_for(ward.name, index)
    cohort_rng = np.random.default_rng(
        derive_seed(seed, _bed_seed_name(spec.name, ward.name, index, "cohort")))
    roll = float(cohort_rng.random())
    sensitive = roll < ward.cohort.sensitive_fraction
    athlete = (ward.cohort.sensitive_fraction <= roll
               < ward.cohort.sensitive_fraction + ward.cohort.athlete_fraction)

    patient_rng = np.random.default_rng(
        derive_seed(seed, _bed_seed_name(spec.name, ward.name, index, "patient")))
    patient = PatientPopulation(rng=patient_rng).sample_one(
        bed_id, sensitive=sensitive, athlete=athlete)

    device_rng = np.random.default_rng(
        derive_seed(seed, _bed_seed_name(spec.name, ward.name, index, "devices")))
    devices = []
    for device_type in DEVICE_TYPES:
        # One roll per device type regardless of outcome, so equipping one
        # bed differently never shifts another device's draw.
        device_roll = float(device_rng.random())
        if device_roll < ward.device_mix.fraction(device_type):
            devices.append(device_type)

    return {
        "bed_id": bed_id,
        "cohort": _cohort_label(sensitive, athlete),
        "patient": patient.as_record(),
        "devices": devices,
        "device_ids": [device_id_for(bed_id, device_type) for device_type in devices],
        "channels": [f"uplink:{device_id_for(bed_id, device_type)}"
                     for device_type in devices],
    }


def expand_topology(spec: TopologySpec, seed: int) -> Dict[str, Any]:
    """Expand ``spec`` into a plain-JSON manifest of the realised hospital."""
    wards = []
    for ward in spec.wards:
        beds = [_expand_bed(spec, ward, index, seed) for index in range(ward.beds)]
        cohort_counts = {label: 0 for label in COHORTS}
        for bed in beds:
            cohort_counts[bed["cohort"]] += 1
        wards.append({
            "name": ward.name,
            "caregivers": ward.staffing.caregiver_count(ward.beds),
            "shift": ward.staffing.shift,
            "cohort_counts": cohort_counts,
            "beds": beds,
        })
    return {
        "topology": spec.name,
        "seed": seed,
        "total_beds": spec.total_beds,
        "wards": wards,
    }


def manifest_json(spec: TopologySpec, seed: int) -> str:
    """Canonical JSON of the expanded manifest (the byte-identity surface)."""
    return json.dumps(expand_topology(spec, seed), sort_keys=True,
                      separators=(",", ":"))


def manifest_device_ids(manifest: Dict[str, Any], device_type: str) -> List[str]:
    """All realised device ids of ``device_type``, in manifest order."""
    found = []
    for ward in manifest["wards"]:
        for bed in ward["beds"]:
            for bed_device_type, device_id in zip(bed["devices"], bed["device_ids"]):
                if bed_device_type == device_type:
                    found.append(device_id)
    return found


def cohort_counts(manifest: Dict[str, Any]) -> Dict[str, int]:
    """Hospital-wide cohort composition of an expanded manifest."""
    totals = {label: 0 for label in COHORTS}
    for ward in manifest["wards"]:
        for label in COHORTS:
            totals[label] += ward["cohort_counts"][label]
    return totals


# -------------------------------------------------------------------- runtime
class WardSafetyApp(SupervisorApp):
    """Closed-loop ward safety app: stop a bed's pump on low SpO2.

    The ward-scale analogue of the single-patient PCA supervisor: it
    subscribes to the ward's pulse-oximeter streams and, when a bed whose
    stack includes a PCA pump desaturates below ``stop_threshold``, issues a
    ``stop`` command through the host (and hence through the security
    policy).
    """

    subscriptions = ("spo2",)
    step_period_s: Optional[float] = None  # purely event-driven

    def __init__(self, app_id: str, stop_threshold: float = 85.0) -> None:
        super().__init__(app_id)
        self.stop_threshold = stop_threshold
        self._pump_by_sensor: Dict[str, str] = {}
        self._stopped: Dict[str, bool] = {}
        self.stop_commands = 0

    def watch(self, sensor_device_id: str, pump_device_id: str) -> None:
        self._pump_by_sensor[sensor_device_id] = pump_device_id
        self._stopped[pump_device_id] = False

    def on_data(self, topic: str, payload: Any, message) -> None:
        pump_id = self._pump_by_sensor.get(message.sender)
        if pump_id is None or self._stopped[pump_id]:
            return
        if type(payload) is Reading:
            if not payload.valid:
                return
            value = payload.value
        elif isinstance(payload, dict):
            value = payload.get("value")
        else:
            return
        if value is not None and value < self.stop_threshold:
            self._stopped[pump_id] = True
            if self.send_command(pump_id, "stop"):
                self.stop_commands += 1


@dataclass
class BedRuntime:
    """One wired bed: patient, devices, alarm, assigned caregiver."""

    bed_id: str
    ward: str
    cohort: str
    parameters: PatientParameters
    patient: PatientModel
    devices: Dict[str, MedicalDevice]
    alarm: ThresholdAlarm
    caregiver: Caregiver
    alarms_raised: int = 0


@dataclass
class WardRuntime:
    """One wired ward: its bus, supervisor, beds, and caregivers."""

    spec: WardSpec
    bus: DeviceBus
    host: SupervisorHost
    safety_app: WardSafetyApp
    beds: List[BedRuntime] = field(default_factory=list)
    caregivers: List[Caregiver] = field(default_factory=list)


@dataclass
class HospitalRuntime:
    """A fully wired hospital ready to ``simulator.run(until=...)``."""

    spec: TopologySpec
    seed: int
    manifest: Dict[str, Any]
    simulator: Simulator
    injector: FaultInjector
    wards: List[WardRuntime] = field(default_factory=list)

    # ------------------------------------------------------------ aggregates
    def beds(self) -> List[BedRuntime]:
        return [bed for ward in self.wards for bed in ward.beds]

    def alarm_counts_by_cohort(self) -> Dict[str, int]:
        counts = {label: 0 for label in COHORTS}
        for bed in self.beds():
            counts[bed.cohort] += bed.alarms_raised
        return counts

    def cohort_counts(self) -> Dict[str, int]:
        return cohort_counts(self.manifest)

    def caregiver_stats(self) -> Dict[str, int]:
        received = missed = interventions = 0
        for ward in self.wards:
            for caregiver in ward.caregivers:
                received += caregiver.alarms_received
                missed += caregiver.alarms_missed
                interventions += len(caregiver.interventions)
        return {"alarms_received": received, "alarms_missed": missed,
                "interventions": interventions}

    def bus_stats(self) -> Dict[str, int]:
        published = forwarded = 0
        for ward in self.wards:
            published += ward.bus.published_count
            forwarded += ward.bus.forwarded_count
        return {"published": published, "forwarded": forwarded}

    def stop_commands(self) -> int:
        return sum(ward.safety_app.stop_commands for ward in self.wards)


def _caregiver_config(ward: WardSpec, beds_covered: int) -> CaregiverConfig:
    if ward.staffing.shift == "night":
        return CaregiverConfig(
            rounding_period_s=3600.0,
            mean_response_delay_s=240.0,
            response_delay_sd_s=80.0,
            distraction_probability=0.25,
            patients_assigned=max(1, beds_covered),
        )
    return CaregiverConfig(patients_assigned=max(1, beds_covered))


def _build_device(device_type: str, device_id: str, patient: PatientModel,
                  rng: np.random.Generator) -> MedicalDevice:
    if device_type == "pulse_oximeter":
        return PulseOximeter(device_id, patient, rng=rng)
    if device_type == "capnograph":
        return Capnograph(device_id, patient, rng=rng)
    if device_type == "bp_monitor":
        return BloodPressureMonitor(device_id, patient)
    if device_type == "bed":
        return HospitalBed(device_id, patient)
    if device_type == "pca_pump":
        return PCAPump(device_id, patient)
    raise ValueError(f"unknown device type {device_type!r}")


def _wire_ward_monitor(runtime: HospitalRuntime, ward_runtime: WardRuntime) -> None:
    """Subscribe a ward-monitor endpoint feeding per-bed threshold alarms."""
    simulator = runtime.simulator
    bus = ward_runtime.bus
    endpoint = f"monitor:{ward_runtime.spec.name}"
    bed_by_device: Dict[str, BedRuntime] = {}
    for bed in ward_runtime.beds:
        for device in bed.devices.values():
            bed_by_device[device.descriptor.device_id] = bed

    def _observe(topic: str, payload: Any, message) -> None:
        bed = bed_by_device.get(message.sender)
        if bed is None:
            return
        if type(payload) is Reading:
            if not payload.valid:
                return
            value = payload.value
        elif isinstance(payload, dict):
            value = payload.get("value")
        else:
            return
        if value is None:
            return
        raised = bed.alarm.observe(simulator.now, topic, float(value))
        for event in raised:
            bed.alarms_raised += 1
            # Athlete bradycardia alarms are physiological, not clinical:
            # the experiment-E4 false-alarm driver feeding caregiver fatigue.
            is_false = topic == "heart_rate" and bed.cohort == "athlete"
            bed.caregiver.notify_alarm(f"{bed.bed_id}:{event.vital}",
                                       is_false_alarm=is_false)

    for topic in MONITORED_VITALS:
        bus.subscribe(endpoint, topic, _observe)


def build_hospital(
    spec: TopologySpec,
    seed: int,
    *,
    simulator: Optional[Simulator] = None,
    thresholds: Optional[AlarmThresholds] = None,
    stop_threshold: float = 85.0,
    command_authoriser=None,
    manifest: Optional[Dict[str, Any]] = None,
) -> HospitalRuntime:
    """Wire the hospital described by ``(spec, seed)`` onto a simulator.

    ``command_authoriser`` (if given) gates every supervisor command — pass
    ``CommandAuthorizationPolicy(...).as_authoriser()`` to put the security
    posture in the loop.  ``manifest`` may be supplied to skip re-expansion
    when the caller already has it.
    """
    simulator = simulator or Simulator()
    thresholds = thresholds or AlarmThresholds()
    if manifest is None:
        manifest = expand_topology(spec, seed)
    runtime = HospitalRuntime(
        spec=spec, seed=seed, manifest=manifest, simulator=simulator,
        injector=FaultInjector(simulator),
    )

    wards_by_name = {ward.name: ward for ward in spec.wards}
    for ward_manifest in manifest["wards"]:
        ward_spec = wards_by_name[ward_manifest["name"]]
        bus = DeviceBus(simulator)
        host = SupervisorHost(
            bus,
            host_id=f"supervisor:{ward_spec.name}",
            command_authoriser=command_authoriser,
        )
        safety_app = WardSafetyApp("safety", stop_threshold=stop_threshold)
        host.attach_app(safety_app)
        simulator.register(host)
        ward_runtime = WardRuntime(spec=ward_spec, bus=bus, host=host,
                                   safety_app=safety_app)

        # Caregiver pool, then beds assigned round-robin.
        caregiver_total = ward_manifest["caregivers"]
        beds_total = len(ward_manifest["beds"])
        per_caregiver = -(-beds_total // caregiver_total)
        for index in range(caregiver_total):
            caregiver_rng = np.random.default_rng(derive_seed(
                seed, f"topology:{spec.name}:{ward_spec.name}:caregiver{index}"))
            caregiver = Caregiver(
                f"{ward_spec.name}-nurse-{index:02d}",
                _caregiver_config(ward_spec, per_caregiver),
                rng=caregiver_rng,
            )
            simulator.register(caregiver)
            ward_runtime.caregivers.append(caregiver)

        for bed_index, bed_manifest in enumerate(ward_manifest["beds"]):
            parameters = PatientParameters(
                **{**bed_manifest["patient"],
                   "tags": tuple(bed_manifest["patient"]["tags"])})
            patient_rng = np.random.default_rng(derive_seed(
                seed, _bed_seed_name(spec.name, ward_spec.name, bed_index, "model")))
            patient = PatientModel(parameters, trace=None, rng=patient_rng)
            simulator.register(patient)

            devices: Dict[str, MedicalDevice] = {}
            for device_type, device_id in zip(bed_manifest["devices"],
                                              bed_manifest["device_ids"]):
                device_rng = np.random.default_rng(derive_seed(
                    seed, _bed_seed_name(spec.name, ward_spec.name, bed_index,
                                         f"noise:{device_type}")))
                device = _build_device(device_type, device_id, patient, device_rng)
                simulator.register(device)
                bus.attach_device(device)
                devices[device_type] = device

            bed_runtime = BedRuntime(
                bed_id=bed_manifest["bed_id"],
                ward=ward_spec.name,
                cohort=bed_manifest["cohort"],
                parameters=parameters,
                patient=patient,
                devices=devices,
                alarm=ThresholdAlarm(bed_manifest["bed_id"], thresholds.rules(),
                                     rearm_time_s=thresholds.rearm_time_s),
                caregiver=ward_runtime.caregivers[bed_index % caregiver_total],
            )
            ward_runtime.beds.append(bed_runtime)

            oximeter = devices.get("pulse_oximeter")
            pump = devices.get("pca_pump")
            if oximeter is not None and pump is not None:
                safety_app.watch(oximeter.descriptor.device_id,
                                 pump.descriptor.device_id)

        _wire_ward_monitor(runtime, ward_runtime)

        # Register the ward's channels and devices with the hospital-wide
        # injector so generated (and campaign-supplied) fault plans can
        # target anything that exists.
        for channel in bus.channels:
            runtime.injector.register_channel(channel)
        for device in bus.devices.values():
            runtime.injector.register_device(device.descriptor.device_id, device)

        runtime.wards.append(ward_runtime)

    return runtime
