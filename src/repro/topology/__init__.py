"""Declarative hospital topologies and scenario-family generators.

``repro.topology`` turns a JSON-roundtrippable :class:`TopologySpec`
(wards x beds x device mixes x staffing x cohort fractions x fault
profiles) into a deterministic manifest and a fully wired simulation, and
generates the fault schedules and attack campaigns that sweep the paper's
Section II(c)/III(m) machinery at hospital scale.  The ``ward`` campaign
scenario (:mod:`repro.scenarios.ward`) exposes all of it to the sharded
campaign pipeline.
"""

from repro.topology.expand import (
    AlarmThresholds,
    HospitalRuntime,
    build_hospital,
    cohort_counts,
    expand_topology,
    manifest_device_ids,
    manifest_json,
)
from repro.topology.generators import (
    SECURITY_POSTURES,
    generate_attack_plan,
    generate_fault_plan,
    security_for_posture,
)
from repro.topology.spec import (
    DEVICE_TYPES,
    CohortMix,
    DeviceMix,
    FaultProfile,
    StaffingSpec,
    TopologyError,
    TopologySpec,
    WardSpec,
    standard_hospital,
)

__all__ = [
    "AlarmThresholds",
    "CohortMix",
    "DEVICE_TYPES",
    "DeviceMix",
    "FaultProfile",
    "HospitalRuntime",
    "SECURITY_POSTURES",
    "StaffingSpec",
    "TopologyError",
    "TopologySpec",
    "WardSpec",
    "build_hospital",
    "cohort_counts",
    "expand_topology",
    "generate_attack_plan",
    "generate_fault_plan",
    "manifest_device_ids",
    "manifest_json",
    "security_for_posture",
    "standard_hospital",
]
