"""Scenario-family generators over an expanded topology.

These turn the *declarative* parts of a :class:`TopologySpec` — per-ward
fault rates and a security posture — into the *concrete* artefacts the
existing machinery consumes: ``fault_plan`` entries for
:mod:`repro.sim.faults`, :class:`~repro.security.attacks.Attack` lists for
:mod:`repro.security.attacks`, and posture-configured policies from
:mod:`repro.security.policy`.  All sampling is position-independent via
:func:`repro.sim.random.derive_seed`, so a generated plan depends only on
``(spec, seed)`` — the same contract the campaign layer's run seeding obeys.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.security.attacks import Attack
from repro.security.auth import DeviceAuthenticator, DeviceCredential
from repro.security.policy import CommandAuthorizationPolicy, SecurityPosture
from repro.sim.faults import FaultSpec
from repro.sim.random import derive_seed
from repro.topology.spec import TopologyError, TopologySpec

#: Device types exposing freeze/unfreeze hooks (stuck_sensor targets).
FREEZABLE_DEVICE_TYPES = ("pulse_oximeter", "capnograph")

#: Security postures a ward campaign can sweep.
SECURITY_POSTURES = ("open", "allowlisted", "data_only")


# ---------------------------------------------------------------- fault plans
def _poisson_starts(rng: np.random.Generator, rate_per_hour: float,
                    duration_s: float) -> List[float]:
    """Fault start times for one target: Poisson count, uniform placement."""
    expected = rate_per_hour * duration_s / 3600.0
    count = int(rng.poisson(expected))
    if count == 0:
        return []
    return sorted(float(start) for start in rng.uniform(0.0, duration_s, count))


def generate_fault_plan(
    spec: TopologySpec,
    seed: int,
    duration_s: float,
    *,
    manifest: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Compile each ward's :class:`FaultProfile` into ``fault_plan`` entries.

    Rates are per device-hour: each realised eligible device draws its own
    Poisson fault count from a stream named after the device, so adding a bed
    (or re-rolling a device mix) never perturbs another device's faults.
    Every entry round-trips through :class:`~repro.sim.faults.FaultSpec`, so
    the returned plan is guaranteed valid against ``FAULT_KINDS``.
    """
    if duration_s <= 0:
        raise TopologyError("fault plan duration_s must be positive")
    if manifest is None:
        from repro.topology.expand import expand_topology

        manifest = expand_topology(spec, seed)
    profiles = {ward.name: ward.faults for ward in spec.wards}

    entries: List[Dict[str, Any]] = []
    for ward_manifest in manifest["wards"]:
        profile = profiles[ward_manifest["name"]]
        if not profile.any_faults:
            continue
        for bed in ward_manifest["beds"]:
            for device_type, device_id in zip(bed["devices"], bed["device_ids"]):
                rng = np.random.default_rng(derive_seed(
                    seed, f"faults:{spec.name}:{device_id}"))
                # Draw all three kinds from the one per-device stream, in a
                # fixed order, so the plan for a device is self-contained.
                for start in _poisson_starts(rng, profile.channel_outage_rate,
                                             duration_s):
                    entries.append({
                        "kind": "channel_outage",
                        "start": start,
                        "duration": profile.channel_outage_duration_s,
                        "target": f"uplink:{device_id}",
                    })
                if device_type in FREEZABLE_DEVICE_TYPES:
                    for start in _poisson_starts(rng, profile.stuck_sensor_rate,
                                                 duration_s):
                        entries.append({
                            "kind": "stuck_sensor",
                            "start": start,
                            "duration": profile.stuck_sensor_duration_s,
                            "target": device_id,
                        })
                if device_type == "pca_pump":
                    for start in _poisson_starts(rng, profile.misprogramming_rate,
                                                 duration_s):
                        entries.append({
                            "kind": "misprogramming",
                            "start": start,
                            "duration": 0.0,
                            "target": device_id,
                            "parameters": {
                                "rate_multiplier":
                                    profile.misprogramming_rate_multiplier,
                            },
                        })
    entries.sort(key=lambda entry: (entry["start"], entry["kind"], entry["target"]))
    # Validate every entry against FAULT_KINDS and normalise field types.
    return [FaultSpec.from_dict(entry).as_dict() for entry in entries]


# -------------------------------------------------------------- attack plans
def generate_attack_plan(
    spec: TopologySpec,
    seed: int,
    *,
    manifest: Optional[Dict[str, Any]] = None,
    reprogram: int = 4,
    replay: int = 2,
    flood: int = 2,
    insider: int = 1,
) -> List[Attack]:
    """Generate an attack campaign against the topology's realised pumps.

    The mix mirrors :func:`repro.security.attacks.standard_reprogramming_campaign`
    but targets are drawn (deterministically, per seed) from the pumps the
    topology actually realised.  Returns an empty list when no bed carries a
    pump — there is nothing harmful to command.
    """
    for name, count in (("reprogram", reprogram), ("replay", replay),
                        ("flood", flood), ("insider", insider)):
        if count < 0:
            raise TopologyError(f"attack count {name} must be non-negative")
    if manifest is None:
        from repro.topology.expand import expand_topology

        manifest = expand_topology(spec, seed)
    from repro.topology.expand import manifest_device_ids

    pumps = manifest_device_ids(manifest, "pca_pump")
    if not pumps:
        return []
    rng = np.random.default_rng(derive_seed(seed, f"attacks:{spec.name}"))

    def _target() -> str:
        return pumps[int(rng.integers(len(pumps)))]

    attacks: List[Attack] = []
    for index in range(reprogram):
        attacks.append(Attack(kind="reprogram", attacker=f"external-{index}",
                              target_device=_target(), command="set_prescription"))
    for index in range(replay):
        attacks.append(Attack(kind="replay", attacker=f"eavesdropper-{index}",
                              target_device=_target(), command="resume",
                              replayed_response=b"\x00" * 32))
    for index in range(flood):
        attacks.append(Attack(kind="flood", attacker=f"flooder-{index}",
                              target_device=_target(), command="stop"))
    for index in range(insider):
        attacks.append(Attack(kind="insider", attacker=f"insider-{index}",
                              target_device=_target(), command="set_prescription",
                              uses_stolen_credential=True))
    return attacks


# ---------------------------------------------------------- security posture
def security_for_posture(
    posture: str,
    seed: int,
    *,
    supervisor_principal: str = "safety",
    pump_ids: Tuple[str, ...] = (),
    insider_principals: Tuple[str, ...] = (),
) -> Tuple[DeviceAuthenticator, CommandAuthorizationPolicy,
           Dict[str, DeviceCredential]]:
    """Build the (authenticator, policy, stolen credentials) for a posture.

    The legitimate supervisor principal is provisioned and — when the
    posture authenticates at all — taken through a real challenge-response
    exchange before being marked on the policy.  Insider principals are
    provisioned too, with their credentials returned as the "stolen" set an
    :class:`~repro.security.attacks.AttackCampaign` hands its insiders.
    """
    if posture not in SECURITY_POSTURES:
        raise TopologyError(
            f"unknown security posture {posture!r}; expected one of "
            f"{SECURITY_POSTURES}")
    authenticator = DeviceAuthenticator()

    def _key(principal: str) -> bytes:
        return derive_seed(seed, f"key:{principal}").to_bytes(8, "little")

    supervisor_credential = authenticator.provision(
        supervisor_principal, _key(supervisor_principal))
    stolen: Dict[str, DeviceCredential] = {}
    for principal in insider_principals:
        stolen[principal] = authenticator.provision(principal, _key(principal))

    if posture == "open":
        policy = CommandAuthorizationPolicy(
            posture=SecurityPosture.OPEN, require_authentication=False)
    elif posture == "allowlisted":
        policy = CommandAuthorizationPolicy(
            posture=SecurityPosture.ALLOWLISTED, require_authentication=True)
        for pump_id in pump_ids:
            policy.allow(supervisor_principal, pump_id, "stop")
    else:
        policy = CommandAuthorizationPolicy(
            posture=SecurityPosture.DATA_ONLY, require_authentication=True)

    if policy.require_authentication:
        if authenticator.authenticate(supervisor_credential):
            policy.mark_authenticated(supervisor_principal)
    return authenticator, policy, stolen
