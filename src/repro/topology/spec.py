"""Declarative hospital-topology specifications.

The paper's experiments are ward- and hospital-scale (Section III(i):
"the staggering range of patient responses"; Section II(c): communication
faults in the control loop), but hand-wiring a 100-bed hospital out of
simulator primitives is untenable.  A :class:`TopologySpec` describes a
hospital declaratively — wards x beds x device mixes x caregiver staffing x
patient-cohort fractions x fault profiles — and is plain-JSON round-trippable
so it survives campaign manifests and worker process boundaries unchanged.

Expansion into a wired simulation lives in :mod:`repro.topology.expand`;
everything here is inert data with validation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple, Union


#: Device types a bed can be equipped with, in deterministic wiring order.
DEVICE_TYPES = ("pulse_oximeter", "capnograph", "bp_monitor", "bed", "pca_pump")

#: Short device-id suffix per device type (``ward-a-bed-003-spo2``).
DEVICE_SHORT_NAMES = {
    "pulse_oximeter": "spo2",
    "capnograph": "capno",
    "bp_monitor": "bp",
    "bed": "bed",
    "pca_pump": "pump",
}

#: Caregiver shift kinds; night shifts respond slower and cover more beds.
SHIFTS = ("day", "night")


class TopologyError(ValueError):
    """Raised for invalid topology specifications."""


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise TopologyError(f"{name} must be within [0, 1], got {value}")


def _from_mapping(cls, data: Mapping[str, Any], label: str):
    """Build dataclass ``cls`` from ``data``, rejecting unknown fields."""
    if not isinstance(data, Mapping):
        raise TopologyError(f"{label} must be an object, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise TopologyError(f"unknown {label} fields: {unknown}")
    return cls(**dict(data))


@dataclass(frozen=True)
class DeviceMix:
    """Fraction of a ward's beds equipped with each device type.

    1.0 means every bed has one; 0.0 means none do.  Which individual beds
    get a device is decided by a per-bed derived random roll during
    expansion, so the realised mix converges to these fractions while every
    bed's equipment is independent of every other bed's.
    """

    pulse_oximeter: float = 1.0
    capnograph: float = 0.5
    bp_monitor: float = 0.25
    bed: float = 1.0
    pca_pump: float = 0.3

    def __post_init__(self) -> None:
        for device_type in DEVICE_TYPES:
            _check_fraction(f"device_mix.{device_type}", getattr(self, device_type))

    def fraction(self, device_type: str) -> float:
        if device_type not in DEVICE_TYPES:
            raise TopologyError(
                f"unknown device type {device_type!r}; expected one of {DEVICE_TYPES}"
            )
        return getattr(self, device_type)

    def as_dict(self) -> Dict[str, Any]:
        return {device_type: getattr(self, device_type) for device_type in DEVICE_TYPES}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeviceMix":
        return _from_mapping(cls, data, "device mix")


@dataclass(frozen=True)
class CohortMix:
    """Patient sub-population fractions for a ward.

    Mirrors :meth:`repro.patient.population.PatientPopulation.sample`: the
    two special bands must leave room for the typical band, so their sum may
    not exceed 1.
    """

    sensitive_fraction: float = 0.15
    athlete_fraction: float = 0.1

    def __post_init__(self) -> None:
        _check_fraction("cohort.sensitive_fraction", self.sensitive_fraction)
        _check_fraction("cohort.athlete_fraction", self.athlete_fraction)
        if self.sensitive_fraction + self.athlete_fraction > 1.0:
            raise TopologyError(
                "cohort sensitive_fraction + athlete_fraction must not exceed 1 "
                f"(got {self.sensitive_fraction} + {self.athlete_fraction})"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sensitive_fraction": self.sensitive_fraction,
            "athlete_fraction": self.athlete_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CohortMix":
        return _from_mapping(cls, data, "cohort mix")


@dataclass(frozen=True)
class StaffingSpec:
    """Caregiver staffing for a ward.

    caregivers:
        Explicit caregiver count; 0 derives the count from
        ``beds_per_caregiver`` (ceiling division over the ward's beds).
    shift:
        ``"day"`` or ``"night"``; night staffing responds slower, is
        distracted more often, and covers more patients per caregiver —
        the Section II(c) "human in the loop" under its worst conditions.
    """

    caregivers: int = 0
    beds_per_caregiver: int = 4
    shift: str = "day"

    def __post_init__(self) -> None:
        if self.caregivers < 0:
            raise TopologyError("staffing.caregivers must be non-negative")
        if self.beds_per_caregiver < 1:
            raise TopologyError("staffing.beds_per_caregiver must be >= 1")
        if self.shift not in SHIFTS:
            raise TopologyError(
                f"staffing.shift must be one of {SHIFTS}, got {self.shift!r}"
            )

    def caregiver_count(self, beds: int) -> int:
        if self.caregivers > 0:
            return self.caregivers
        return max(1, -(-beds // self.beds_per_caregiver))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "caregivers": self.caregivers,
            "beds_per_caregiver": self.beds_per_caregiver,
            "shift": self.shift,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StaffingSpec":
        return _from_mapping(cls, data, "staffing spec")


@dataclass(frozen=True)
class FaultProfile:
    """Stochastic fault rates for a ward, in events per device-hour.

    Rates compile (deterministically, per seed) into concrete
    ``fault_plan`` entries targeting the ward's realised devices and
    channels — see :func:`repro.topology.generators.generate_fault_plan`.
    All three kinds exercise :mod:`repro.sim.faults` machinery: channel
    outages (Section II(c) communication failures), stuck sensors, and pump
    misprogramming (the leading PCA adverse-event cause).
    """

    channel_outage_rate: float = 0.0
    channel_outage_duration_s: float = 60.0
    stuck_sensor_rate: float = 0.0
    stuck_sensor_duration_s: float = 300.0
    misprogramming_rate: float = 0.0
    misprogramming_rate_multiplier: float = 4.0

    def __post_init__(self) -> None:
        for name in ("channel_outage_rate", "stuck_sensor_rate", "misprogramming_rate"):
            if getattr(self, name) < 0:
                raise TopologyError(f"faults.{name} must be non-negative")
        for name in ("channel_outage_duration_s", "stuck_sensor_duration_s"):
            if getattr(self, name) <= 0:
                raise TopologyError(f"faults.{name} must be positive")
        if self.misprogramming_rate_multiplier <= 0:
            raise TopologyError("faults.misprogramming_rate_multiplier must be positive")

    @property
    def any_faults(self) -> bool:
        return (self.channel_outage_rate > 0 or self.stuck_sensor_rate > 0
                or self.misprogramming_rate > 0)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "channel_outage_rate": self.channel_outage_rate,
            "channel_outage_duration_s": self.channel_outage_duration_s,
            "stuck_sensor_rate": self.stuck_sensor_rate,
            "stuck_sensor_duration_s": self.stuck_sensor_duration_s,
            "misprogramming_rate": self.misprogramming_rate,
            "misprogramming_rate_multiplier": self.misprogramming_rate_multiplier,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultProfile":
        return _from_mapping(cls, data, "fault profile")


@dataclass(frozen=True)
class WardSpec:
    """One ward: a named block of identically-distributed beds."""

    name: str
    beds: int
    device_mix: DeviceMix = field(default_factory=DeviceMix)
    cohort: CohortMix = field(default_factory=CohortMix)
    staffing: StaffingSpec = field(default_factory=StaffingSpec)
    faults: FaultProfile = field(default_factory=FaultProfile)

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("ward name must be non-empty")
        if any(sep in self.name for sep in (":", "&", "=", " ")):
            raise TopologyError(
                f"ward name {self.name!r} must not contain ':', '&', '=' or spaces "
                "(it becomes part of seed-derivation names and run ids)"
            )
        if self.beds < 1:
            raise TopologyError(f"ward {self.name!r} must have at least one bed")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "beds": self.beds,
            "device_mix": self.device_mix.as_dict(),
            "cohort": self.cohort.as_dict(),
            "staffing": self.staffing.as_dict(),
            "faults": self.faults.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WardSpec":
        if not isinstance(data, Mapping):
            raise TopologyError(f"ward spec must be an object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise TopologyError(f"unknown ward spec fields: {unknown}")
        if "name" not in data or "beds" not in data:
            raise TopologyError("ward spec requires 'name' and 'beds'")
        return cls(
            name=str(data["name"]),
            beds=int(data["beds"]),
            device_mix=DeviceMix.from_dict(data.get("device_mix", {})),
            cohort=CohortMix.from_dict(data.get("cohort", {})),
            staffing=StaffingSpec.from_dict(data.get("staffing", {})),
            faults=FaultProfile.from_dict(data.get("faults", {})),
        )


@dataclass(frozen=True)
class TopologySpec:
    """A hospital: a named, ordered collection of wards.

    The spec is pure data; :func:`repro.topology.expand.expand_topology`
    turns it into a concrete manifest (which patients, which devices, which
    channels) and :func:`repro.topology.expand.build_hospital` wires that
    manifest onto a live simulator.  Both take the spec plus a seed and are
    position-independent: every sampled quantity draws from a stream derived
    via :func:`repro.sim.random.derive_seed` from ``(seed, stable name)``.
    """

    name: str
    wards: Tuple[WardSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("topology name must be non-empty")
        if not self.wards:
            raise TopologyError("topology must declare at least one ward")
        names = [ward.name for ward in self.wards]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise TopologyError(f"duplicate ward names: {duplicates}")
        object.__setattr__(self, "wards", tuple(self.wards))

    @property
    def total_beds(self) -> int:
        return sum(ward.beds for ward in self.wards)

    def total_caregivers(self) -> int:
        return sum(ward.staffing.caregiver_count(ward.beds) for ward in self.wards)

    # ----------------------------------------------------------- persistence
    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wards": [ward.as_dict() for ward in self.wards],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        if not isinstance(data, Mapping):
            raise TopologyError(
                f"topology spec must be an object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"name", "wards"})
        if unknown:
            raise TopologyError(f"unknown topology spec fields: {unknown}")
        if "name" not in data:
            raise TopologyError("topology spec requires 'name'")
        wards = data.get("wards", [])
        if not isinstance(wards, (list, tuple)):
            raise TopologyError("topology 'wards' must be a list")
        return cls(
            name=str(data["name"]),
            wards=tuple(WardSpec.from_dict(ward) for ward in wards),
        )

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "TopologySpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TopologySpec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        except OSError as error:
            raise TopologyError(f"cannot read topology spec {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise TopologyError(f"topology spec {path} is not valid JSON: {error}") from error


def standard_hospital(
    name: str = "hospital",
    *,
    wards: int = 2,
    beds_per_ward: int = 8,
    device_mix: Mapping[str, float] = None,
    cohort: Mapping[str, float] = None,
    staffing: Mapping[str, Any] = None,
    faults: Mapping[str, Any] = None,
) -> TopologySpec:
    """Convenience builder: ``wards`` identical wards of ``beds_per_ward``.

    Each keyword block is the plain-dict form of the corresponding spec
    section, applied to every ward.  Ward names are ``ward-00`` ... so specs
    of any size keep lexicographically stable ordering.
    """
    if wards < 1:
        raise TopologyError("hospital needs at least one ward")
    mix = DeviceMix.from_dict(device_mix or {})
    cohort_mix = CohortMix.from_dict(cohort or {})
    staff = StaffingSpec.from_dict(staffing or {})
    fault_profile = FaultProfile.from_dict(faults or {})
    return TopologySpec(
        name=name,
        wards=tuple(
            WardSpec(
                name=f"ward-{index:02d}",
                beds=beds_per_ward,
                device_mix=mix,
                cohort=cohort_mix,
                staffing=staff,
                faults=fault_profile,
            )
            for index in range(wards)
        ),
    )
