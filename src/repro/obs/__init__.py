"""``repro.obs`` — zero-overhead-when-disabled observability.

Five pieces, one enable switch (``REPRO_OBS=1`` or :func:`enable`):

* :mod:`repro.obs.metrics` — slotted ``Counter`` / ``Gauge`` / ``Histogram``
  in a process-wide registry; instrument bundles give hot paths direct
  attribute access and collapse to ``None`` when disabled.
* :mod:`repro.obs.spans` — sim-time span tracing for run lifecycle phases
  with deterministic ids derived from run-id seeding.
* :mod:`repro.obs.profiler` — an opt-in sampling profiler that attributes
  event-dispatch wall time to callback owners every N-th event.
* :mod:`repro.obs.export` — deterministic NDJSON snapshots plus the shard
  merge used by the campaign engine.
* :mod:`repro.obs.logging` — a structured logging facade (human / json /
  quiet) for CLI-facing output.

Design invariants: observability is off by default; metric values never
feed back into simulation state (golden digests are identical with obs on
or off); export ordering is deterministic under pinned ``PYTHONHASHSEED``.
"""

from repro.obs.export import (
    dump_lines,
    merge_lines,
    merge_snapshots,
    read_snapshot,
    snapshot_lines,
    write_snapshot,
)
from repro.obs.logging import StructLogger, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    registry,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.spans import SpanTracer, derive_id, tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SamplingProfiler",
    "SpanTracer",
    "StructLogger",
    "derive_id",
    "disable",
    "dump_lines",
    "enable",
    "enabled",
    "get_logger",
    "merge_lines",
    "merge_snapshots",
    "read_snapshot",
    "registry",
    "snapshot_lines",
    "tracer",
    "write_snapshot",
]
