"""Opt-in sampling profiler for the kernel's event dispatch loop.

Attach a :class:`SamplingProfiler` to a simulator and every ``every``-th
executed event is timed with ``time.perf_counter`` and attributed to its
*callback owner* — the device, channel, or middleware component named in
the event's ``name`` (the kernel already stamps ``"<process>:<method>"``,
``"channel:<link>:deliver"``, and ``"bus:forward:<topic>"`` names on the
hot paths).  Sampling bounds the overhead: the other ``every - 1`` events
pay one decrement and one comparison.

The profiler is independent of the metrics enable switch — it is opt-in
per simulator — but its results export through the same NDJSON snapshot
(``type: "profile"`` lines) so one file carries metrics, spans, and
profiles.

Typical use::

    profiler = SamplingProfiler(every=64)
    simulator.attach_profiler(profiler)
    simulator.run(until=...)
    for owner, stats in profiler.report().items():
        print(owner, stats["est_total_wall_s"])
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List


def owner_of(name: str) -> str:
    """Map an event name to the component that owns its callback.

    ``"channel:uplink:dev-a:deliver"`` -> ``"channel:uplink:dev-a"`` (the
    link), ``"bus:forward:vitals"`` -> ``"bus"``, ``"pump-1:_tick"`` ->
    ``"pump-1"`` (the process), unnamed events -> ``"<anonymous>"``.
    """
    if not name:
        return "<anonymous>"
    if name.startswith("channel:"):
        cut = name.rfind(":")
        return name[:cut] if cut > len("channel:") else name
    if name.startswith("bus:"):
        return "bus"
    return name.split(":", 1)[0]


class SamplingProfiler:
    """Times every ``every``-th dispatched event, keyed by callback owner."""

    __slots__ = ("every", "_countdown", "_stats", "events_seen")

    def __init__(self, every: int = 64) -> None:
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every!r}")
        self.every = every
        self._countdown = every
        # owner -> [samples, sampled wall seconds]; plain lists keep the
        # sampled-path update to two item assignments.
        self._stats: Dict[str, List[float]] = {}
        self.events_seen = 0

    # ------------------------------------------------------------- hot path
    def dispatch(self, event) -> None:
        """Run ``event.callback`` and, on sampled events, time and attribute it.

        Called by :meth:`Simulator.run` in place of a bare callback
        invocation whenever a profiler is attached.
        """
        self.events_seen += 1
        self._countdown -= 1
        if self._countdown:
            event.callback()
            return
        self._countdown = self.every
        started = perf_counter()
        event.callback()
        elapsed = perf_counter() - started
        owner = owner_of(event.name)
        record = self._stats.get(owner)
        if record is None:
            self._stats[owner] = record = [0, 0.0]
        record[0] += 1
        record[1] += elapsed

    # -------------------------------------------------------------- results
    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-owner sample counts, sampled wall time, and a scaled estimate.

        ``est_total_wall_s`` extrapolates sampled time by the sampling
        interval — a statistical attribution, not an exact measurement.
        Owners are returned sorted by name for deterministic iteration.
        """
        return {
            owner: {
                "samples": float(samples),
                "sampled_wall_s": sampled,
                "est_total_wall_s": sampled * self.every,
            }
            for owner, (samples, sampled) in sorted(self._stats.items())
        }

    def lines(self) -> List[Dict[str, Any]]:
        """NDJSON export lines (``type: "profile"``), sorted by owner."""
        return [
            {"type": "profile", "owner": owner, "samples": int(samples),
             "sampled_wall_s": sampled, "every": self.every}
            for owner, (samples, sampled) in sorted(self._stats.items())
        ]

    def reset(self) -> None:
        self._stats = {}
        self._countdown = self.every
        self.events_seen = 0
