"""Metrics registry: counters, gauges, and preallocated-bucket histograms.

Observability is **off by default** and must cost nothing measurable when
off.  The contract every instrumented layer follows:

* At construction time a component asks for its *instrument bundle*
  (:func:`kernel_instruments`, :func:`channel_instruments`, ...).  When
  observability is disabled the bundle is ``None``, so the only cost a hot
  path ever pays is one attribute load plus an ``is not None`` check.
* When enabled, bundles cache direct references to the registry's slotted
  metric objects, so the hot path increments ``counter.value`` without a
  dict lookup or method call.
* Metric values flow strictly *out* of the simulation: nothing in
  :mod:`repro.sim` or :mod:`repro.campaign` ever reads a metric back, so
  enabling observability cannot change simulation results (the golden
  digests pin this).

Enabling: set ``REPRO_OBS=1`` in the environment before import, or call
:func:`enable` before constructing simulators/channels.  Components cache
their bundle at construction, so flipping the switch only affects objects
built afterwards.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

_FALSY = ("", "0", "false", "off", "no")

_ENABLED = os.environ.get("REPRO_OBS", "").strip().lower() not in _FALSY


def enabled() -> bool:
    """Whether observability is currently on (for newly built components)."""
    return _ENABLED


def enable() -> None:
    """Turn observability on for components constructed from now on."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn observability off for components constructed from now on."""
    global _ENABLED
    _ENABLED = False


# --------------------------------------------------------------------- types
class Counter:
    """A monotonically increasing count.

    Hot paths cache the object and do ``counter.value += n`` directly; the
    :meth:`inc` method is the convenience spelling for cold paths.
    """

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def line(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name, "value": self.value}

    def _reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value with an explicit merge rule.

    ``agg`` names how per-shard values fold into one campaign-level value:
    ``"max"`` / ``"min"`` / ``"sum"`` are self-describing; ``"last"`` keeps
    the value from the last shard merged (shards are merged in sorted
    filename order, so the result is deterministic).
    """

    __slots__ = ("name", "value", "agg")
    kind = "gauge"
    AGGS = ("last", "max", "min", "sum")

    def __init__(self, name: str, agg: str = "last") -> None:
        if agg not in self.AGGS:
            raise ValueError(f"gauge agg must be one of {self.AGGS}, got {agg!r}")
        self.name = name
        self.agg = agg
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def line(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name, "value": self.value,
                "agg": self.agg}

    def _reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Gauge {self.name}={self.value} agg={self.agg}>"


class Histogram:
    """A fixed-bound histogram with preallocated buckets.

    ``bounds`` are upper-inclusive bucket edges (Prometheus ``le``
    semantics); one overflow bucket catches everything beyond the last
    bound.  ``observe`` is one bisect plus three attribute updates — cheap
    enough for per-delivery latency observation on the enabled path.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram bounds must be non-empty and strictly increasing, "
                f"got {bounds!r}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def line(self) -> Dict[str, Any]:
        return {"type": "histogram", "name": self.name,
                "bounds": list(self.bounds), "counts": list(self.counts),
                "sum": self.sum, "count": self.count}

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Histogram {self.name} count={self.count} sum={self.sum}>"


Metric = Union[Counter, Gauge, Histogram]

#: Delivery-latency bucket edges in seconds (two channel hops + processing).
LATENCY_BOUNDS_S = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
                    1.0, 2.0, 5.0)
#: Per-run wall-time bucket edges in seconds (a campaign run spans ms..min).
RUN_WALL_BOUNDS_S = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0,
                     30.0, 60.0, 120.0, 300.0)
#: Trace-flush batch-size bucket edges (samples per flush).
FLUSH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                     512.0, 1024.0)


# ------------------------------------------------------------------ registry
class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Metric objects are shared: every channel's bundle points at the same
    ``channel.delivered`` counter, so registry values are process-level
    aggregates.  Snapshot order is sorted by name — deterministic under any
    ``PYTHONHASHSEED``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {metric.kind}, "
                f"not a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str, agg: str = "last") -> Gauge:
        gauge = self._get_or_create(name, lambda: Gauge(name, agg), "gauge")
        if gauge.agg != agg:
            raise ValueError(
                f"gauge {name!r} is registered with agg={gauge.agg!r}, "
                f"requested agg={agg!r}"
            )
        return gauge

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        histogram = self._get_or_create(
            name, lambda: Histogram(name, bounds), "histogram")
        if histogram.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} is registered with bounds "
                f"{histogram.bounds}, requested {tuple(bounds)}"
            )
        return histogram

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> List[Dict[str, Any]]:
        """One line dict per metric, sorted by name (deterministic order)."""
        return [self._metrics[name].line() for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every metric *in place* so cached bundle references survive."""
        for metric in self._metrics.values():
            metric._reset()

    def clear(self) -> None:
        """Drop every metric (cached bundles become detached — rebuild them)."""
        self._metrics.clear()


_DEFAULT_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry all instrument bundles feed."""
    return _DEFAULT_REGISTRY


# -------------------------------------------------------- instrument bundles
class KernelInstruments:
    """Cached kernel metrics plus loop-local accumulators for one Simulator.

    ``heap_peak`` is a plain int the scheduling path compares against (no
    method call); :meth:`flush_run` folds a finished ``run()`` segment into
    the registry in one shot, so the dispatch loop itself pays nothing
    per event.
    """

    __slots__ = ("heap_peak", "events_fired", "events_cancelled",
                 "sim_seconds", "wall_seconds", "heap_peak_gauge",
                 "events_per_s", "sim_s_per_wall_s")

    def __init__(self, reg: MetricsRegistry) -> None:
        self.heap_peak = 0
        self.events_fired = reg.counter("kernel.events_fired")
        self.events_cancelled = reg.counter("kernel.events_cancelled")
        self.sim_seconds = reg.counter("kernel.sim_seconds_total")
        self.wall_seconds = reg.counter("kernel.wall_seconds_total")
        self.heap_peak_gauge = reg.gauge("kernel.heap_peak", agg="max")
        self.events_per_s = reg.gauge("kernel.events_per_s", agg="max")
        self.sim_s_per_wall_s = reg.gauge("kernel.sim_s_per_wall_s", agg="max")

    def flush_run(self, fired: int, sim_delta: float, wall_delta: float) -> None:
        self.events_fired.value += fired
        self.sim_seconds.value += sim_delta
        self.wall_seconds.value += wall_delta
        self.heap_peak_gauge.set_max(self.heap_peak)
        if wall_delta > 0.0:
            self.events_per_s.set_max(fired / wall_delta)
            self.sim_s_per_wall_s.set_max(sim_delta / wall_delta)


class ChannelInstruments:
    """Cached channel metrics (shared across every channel in the process)."""

    __slots__ = ("sent", "delivered", "dropped", "outage_hits",
                 "coalesced_ticks", "max_batch", "latency")

    def __init__(self, reg: MetricsRegistry) -> None:
        self.sent = reg.counter("channel.sent")
        self.delivered = reg.counter("channel.delivered")
        self.dropped = reg.counter("channel.dropped")
        self.outage_hits = reg.counter("channel.outage_hits")
        self.coalesced_ticks = reg.counter("channel.coalesced_ticks")
        self.max_batch = reg.gauge("channel.max_batch", agg="max")
        self.latency = reg.histogram("channel.latency_s", LATENCY_BOUNDS_S)


class BusInstruments:
    """Cached device-bus metrics."""

    __slots__ = ("published", "forwarded", "commands")

    def __init__(self, reg: MetricsRegistry) -> None:
        self.published = reg.counter("bus.published")
        self.forwarded = reg.counter("bus.forwarded")
        self.commands = reg.counter("bus.commands")


class SamplerInstruments:
    """Cached sampling-backbone metrics (trace batch flushes)."""

    __slots__ = ("flushes", "flushed_samples", "flush_size")

    def __init__(self, reg: MetricsRegistry) -> None:
        self.flushes = reg.counter("sampler.flushes")
        self.flushed_samples = reg.counter("sampler.flushed_samples")
        self.flush_size = reg.histogram("sampler.flush_size", FLUSH_SIZE_BOUNDS)


class CampaignInstruments:
    """Cached campaign-engine metrics (per-run and resilience accounting).

    The resilience counters are incremented where the event is observed:
    ``runs_retried`` and ``faults_injected`` in whichever process executes
    the run (so they ride worker shards), ``runs_quarantined`` and
    ``worker_restarts`` in the parent watchdog.  All are plain counters, so
    the shard merge sums them like any other.
    """

    __slots__ = ("runs", "run_wall_s", "runs_retried", "runs_quarantined",
                 "worker_restarts", "faults_injected", "shards_merged")

    def __init__(self, reg: MetricsRegistry) -> None:
        self.runs = reg.counter("campaign.runs")
        self.run_wall_s = reg.histogram("campaign.run_wall_s", RUN_WALL_BOUNDS_S)
        self.runs_retried = reg.counter("campaign.runs_retried")
        self.runs_quarantined = reg.counter("campaign.runs_quarantined")
        self.worker_restarts = reg.counter("campaign.worker_restarts")
        self.faults_injected = reg.counter("campaign.faults_injected")
        self.shards_merged = reg.counter("campaign.shards_merged")


def kernel_instruments() -> Optional[KernelInstruments]:
    return KernelInstruments(_DEFAULT_REGISTRY) if _ENABLED else None


def channel_instruments() -> Optional[ChannelInstruments]:
    return ChannelInstruments(_DEFAULT_REGISTRY) if _ENABLED else None


def bus_instruments() -> Optional[BusInstruments]:
    return BusInstruments(_DEFAULT_REGISTRY) if _ENABLED else None


def sampler_instruments() -> Optional[SamplerInstruments]:
    return SamplerInstruments(_DEFAULT_REGISTRY) if _ENABLED else None


def campaign_instruments() -> Optional[CampaignInstruments]:
    return CampaignInstruments(_DEFAULT_REGISTRY) if _ENABLED else None
