"""Structured logging facade for user-facing tools (CLI, services).

Three output modes, one call site:

* ``human`` — the message string is printed verbatim (byte-compatible with
  the bare ``print()`` calls this facade replaces).
* ``json`` — one NDJSON object per call carrying the event name and
  structured fields (machine-readable; the message text rides along as
  ``msg``).
* ``quiet`` — informational output is suppressed; errors still print.

Errors always go to ``stderr`` (as before), informational output to
``stdout``.  The facade is deliberately tiny: it is an output-shaping
layer, not a log-routing framework, and it never buffers — ordering
relative to exceptions and subprocess output is exactly print()'s.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Optional, TextIO

MODES = ("human", "json", "quiet")


class StructLogger:
    """Mode-switched logger with structured fields."""

    __slots__ = ("name", "mode", "_out", "_err")

    def __init__(self, name: str = "repro", mode: str = "human",
                 out: Optional[TextIO] = None,
                 err: Optional[TextIO] = None) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.name = name
        self.mode = mode
        self._out = out
        self._err = err

    # ------------------------------------------------------------- plumbing
    @property
    def json_mode(self) -> bool:
        return self.mode == "json"

    @property
    def quiet(self) -> bool:
        return self.mode == "quiet"

    def _emit(self, level: str, message: str, event: Optional[str],
              stream: TextIO, fields: dict) -> None:
        if self.mode == "json":
            record = {"level": level, "logger": self.name,
                      "event": event or "log"}
            if message:
                record["msg"] = message
            record.update(fields)
            print(json.dumps(record, sort_keys=True, default=str), file=stream)
        else:
            print(message, file=stream)

    # ------------------------------------------------------------------ api
    def info(self, message: str = "", *, event: Optional[str] = None,
             **fields: Any) -> None:
        """Informational output; suppressed in quiet mode."""
        if self.mode == "quiet":
            return
        self._emit("info", message, event,
                   self._out if self._out is not None else sys.stdout, fields)

    def error(self, message: str = "", *, event: Optional[str] = None,
              **fields: Any) -> None:
        """Error output; printed in every mode, always to stderr."""
        self._emit("error", message, event,
                   self._err if self._err is not None else sys.stderr, fields)


def get_logger(name: str = "repro", mode: str = "human",
               out: Optional[TextIO] = None,
               err: Optional[TextIO] = None) -> StructLogger:
    """Build a :class:`StructLogger` (thin constructor wrapper)."""
    return StructLogger(name, mode=mode, out=out, err=err)
