"""NDJSON snapshot export and the shard-merge operation.

A *snapshot* is a list of JSON-object lines: one ``meta`` header, then the
registry's metrics, then spans and profiles.  Ordering is fully
deterministic — types in a fixed order, metrics sorted by name, spans by
their derived ids, profiles by owner, and every object serialised with
``sort_keys=True`` — so two runs of the same workload produce snapshots
whose line/key ordering is identical under any ``PYTHONHASHSEED`` (CI pins
this with a subprocess test).

Campaign workers each write their own *shard* snapshot;
:func:`merge_lines` folds any number of shards into one campaign-level
snapshot: counters and profiles sum, gauges fold by their declared ``agg``,
histograms add bucket-wise (bounds must agree), spans concatenate.  Merging
is associative over sorted shard order, so a sharded campaign and a serial
one produce the same *shape* of snapshot.

Schema (one JSON object per line)::

    {"type": "meta", "schema": 1, ...}
    {"type": "counter", "name": "...", "value": N}
    {"type": "gauge", "name": "...", "value": X, "agg": "max|min|sum|last"}
    {"type": "histogram", "name": "...", "bounds": [...], "counts": [...],
     "sum": X, "count": N}
    {"type": "span", "trace_id": "...", "span_id": "...", "parent_id": "...",
     "name": "...", "clock": "sim|wall", "start": X, "end": X}
    {"type": "profile", "owner": "...", "samples": N, "sampled_wall_s": X,
     "every": N}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans

SCHEMA_VERSION = 1

#: Fixed emission order of line types within a snapshot.
_TYPE_ORDER = {"meta": 0, "counter": 1, "gauge": 2, "histogram": 3,
               "span": 4, "profile": 5}

Line = Dict[str, Any]


def _sort_key(line: Line) -> Tuple[int, str, str, str, str]:
    kind = line.get("type", "")
    return (
        _TYPE_ORDER.get(kind, len(_TYPE_ORDER)),
        line.get("name", ""),
        line.get("trace_id", ""),
        line.get("span_id", ""),
        line.get("owner", ""),
    )


def snapshot_lines(
    registry: Optional[_metrics.MetricsRegistry] = None,
    tracer: Optional[_spans.SpanTracer] = None,
    profilers: Sequence = (),
    meta: Optional[Dict[str, Any]] = None,
) -> List[Line]:
    """Capture the current snapshot (defaults: process registry + tracer)."""
    registry = registry if registry is not None else _metrics.registry()
    tracer = tracer if tracer is not None else _spans.tracer()
    header: Line = {"type": "meta", "schema": SCHEMA_VERSION}
    if tracer.dropped:
        header["spans_dropped"] = tracer.dropped
    if meta:
        header.update(meta)
    lines: List[Line] = [header]
    lines.extend(registry.snapshot())
    lines.extend(tracer.lines())
    for profiler in profilers:
        lines.extend(profiler.lines())
    return sorted(lines, key=_sort_key)


def dump_lines(lines: Iterable[Line]) -> str:
    """Serialise snapshot lines to NDJSON text (deterministic key order)."""
    return "".join(
        json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n"
        for line in lines
    )


def write_snapshot(path: Union[str, Path],
                   lines: Optional[Iterable[Line]] = None,
                   **snapshot_kwargs: Any) -> Path:
    """Write a snapshot (captured now unless ``lines`` is given) to ``path``."""
    path = Path(path)
    if lines is None:
        lines = snapshot_lines(**snapshot_kwargs)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dump_lines(lines), encoding="utf-8")
    return path


def read_snapshot(path: Union[str, Path]) -> List[Line]:
    """Parse an NDJSON snapshot file back into line dicts."""
    lines: List[Line] = []
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        raw = raw.strip()
        if raw:
            lines.append(json.loads(raw))
    return lines


# --------------------------------------------------------------------- merge
def _merge_counter(into: Line, line: Line) -> None:
    into["value"] += line["value"]


def _merge_gauge(into: Line, line: Line) -> None:
    agg = into.get("agg", "last")
    if agg != line.get("agg", "last"):
        raise ValueError(
            f"gauge {into.get('name')!r} merged with conflicting agg rules "
            f"{into.get('agg')!r} vs {line.get('agg')!r}"
        )
    if agg == "max":
        into["value"] = max(into["value"], line["value"])
    elif agg == "min":
        into["value"] = min(into["value"], line["value"])
    elif agg == "sum":
        into["value"] += line["value"]
    else:  # "last": later shard wins; shards are merged in sorted order
        into["value"] = line["value"]


def _merge_histogram(into: Line, line: Line) -> None:
    if into["bounds"] != line["bounds"]:
        raise ValueError(
            f"histogram {into.get('name')!r} merged with mismatched bounds "
            f"{into['bounds']} vs {line['bounds']}"
        )
    into["counts"] = [a + b for a, b in zip(into["counts"], line["counts"])]
    into["sum"] += line["sum"]
    into["count"] += line["count"]


def _merge_profile(into: Line, line: Line) -> None:
    into["samples"] += line["samples"]
    into["sampled_wall_s"] += line["sampled_wall_s"]
    into["every"] = max(into["every"], line["every"])


def merge_lines(groups: Iterable[Iterable[Line]]) -> List[Line]:
    """Fold several snapshots (e.g. per-worker shards) into one.

    Pass groups in a deterministic order (sorted shard filenames): ``last``
    gauges and the meta header depend on it.
    """
    merged: Dict[Any, Line] = {}
    meta: Line = {"type": "meta", "schema": SCHEMA_VERSION, "merged_shards": 0}
    spans: List[Line] = []
    for group in groups:
        meta["merged_shards"] += 1
        for line in group:
            kind = line.get("type")
            if kind == "meta":
                dropped = line.get("spans_dropped", 0)
                if dropped:
                    meta["spans_dropped"] = meta.get("spans_dropped", 0) + dropped
                continue
            if kind == "span":
                spans.append(dict(line))
                continue
            if kind == "profile":
                key = ("profile", line.get("owner"))
            else:
                key = (kind, line.get("name"))
            existing = merged.get(key)
            if existing is None:
                merged[key] = dict(line)
            elif kind == "counter":
                _merge_counter(existing, line)
            elif kind == "gauge":
                _merge_gauge(existing, line)
            elif kind == "histogram":
                _merge_histogram(existing, line)
            elif kind == "profile":
                _merge_profile(existing, line)
            else:
                raise ValueError(f"cannot merge unknown line type {kind!r}")
    lines = [meta] + list(merged.values()) + spans
    return sorted(lines, key=_sort_key)


def merge_snapshots(paths: Sequence[Union[str, Path]],
                    out: Optional[Union[str, Path]] = None) -> List[Line]:
    """Merge snapshot *files* (in sorted path order); optionally write ``out``."""
    ordered = sorted(Path(p) for p in paths)
    merged = merge_lines(read_snapshot(p) for p in ordered)
    if out is not None:
        Path(out).parent.mkdir(parents=True, exist_ok=True)
        Path(out).write_text(dump_lines(merged), encoding="utf-8")
    return merged
