"""Sim-time span tracing for run lifecycle phases.

A *span* covers one phase of a run (setup / run / teardown) with a start
and end read from a pluggable clock — the owning simulator's ``now`` for
sim-time spans, ``time.perf_counter`` for wall-time spans at the campaign
layer.  Span and trace ids are **derived, not random**: a trace is seeded
with the run id and every span id is a hash of ``"<seed>/<index>"``, so
two runs of the same campaign produce byte-identical id streams (the
export-determinism contract) and a span in a worker shard can be joined
back to its run without any cross-process coordination.

Finished spans accumulate on a :class:`SpanTracer` (the process default is
:func:`tracer`); the NDJSON exporter drains them via :meth:`SpanTracer.lines`.
A cap bounds memory at campaign scale — spans beyond it are counted in
``dropped``, never silently lost.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional


def derive_id(seed: str) -> str:
    """16-hex-char id deterministically derived from ``seed``."""
    return hashlib.sha256(seed.encode()).hexdigest()[:16]


class Span:
    """One finished (or in-flight) lifecycle phase."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "clock", "start",
                 "end", "attrs")

    def __init__(self, trace_id: str, span_id: str, parent_id: str, name: str,
                 clock: str, start: float) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.clock = clock
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def line(self) -> Dict[str, Any]:
        record = {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "clock": self.clock,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<Span {self.name!r} id={self.span_id} "
                f"[{self.start}, {self.end}] {self.clock}>")


class TraceContext:
    """Span factory for one run: deterministic ids, a clock, a parent stack."""

    __slots__ = ("_tracer", "_seed", "trace_id", "_index", "_clock",
                 "_clock_name", "_stack")

    def __init__(self, tracer: "SpanTracer", seed: str,
                 clock: Optional[Callable[[], float]] = None,
                 clock_name: str = "wall") -> None:
        self._tracer = tracer
        self._seed = seed
        self.trace_id = derive_id(seed)
        self._index = 0
        self._clock = clock if clock is not None else time.perf_counter
        self._clock_name = clock_name
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, clock: Optional[Callable[[], float]] = None,
             clock_name: Optional[str] = None, **attrs: Any) -> Iterator[Span]:
        """Open a span around a ``with`` block; nested spans get parents."""
        clk = clock if clock is not None else self._clock
        span_id = derive_id(f"{self._seed}/{self._index}")
        self._index += 1
        parent = self._stack[-1].span_id if self._stack else ""
        span = Span(self.trace_id, span_id, parent, name,
                    clock_name if clock_name is not None else self._clock_name,
                    clk())
        span.attrs.update(attrs)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = clk()
            self._stack.pop()
            self._tracer.add(span)


class SpanTracer:
    """Accumulates finished spans, bounded by ``cap``."""

    def __init__(self, cap: int = 4096) -> None:
        if cap < 1:
            raise ValueError(f"span cap must be >= 1, got {cap!r}")
        self.cap = cap
        self.spans: List[Span] = []
        self.dropped = 0

    def trace(self, seed: str, clock: Optional[Callable[[], float]] = None,
              clock_name: str = "wall") -> TraceContext:
        """Open a deterministic trace context seeded by (typically) a run id."""
        return TraceContext(self, str(seed), clock=clock, clock_name=clock_name)

    def add(self, span: Span) -> None:
        if len(self.spans) >= self.cap:
            self.dropped += 1
            return
        self.spans.append(span)

    def lines(self) -> List[Dict[str, Any]]:
        """Span export lines sorted by deterministic ids (stable order)."""
        return [span.line()
                for span in sorted(self.spans,
                                   key=lambda s: (s.trace_id, s.span_id))]

    def reset(self) -> None:
        self.spans = []
        self.dropped = 0


_DEFAULT_TRACER = SpanTracer()


def tracer() -> SpanTracer:
    """The process-wide default tracer the NDJSON exporter drains."""
    return _DEFAULT_TRACER
