"""repro: an open medical cyber-physical systems (MCPS) framework.

This library reproduces the system envisioned in Lee & Sokolsky, "Medical
Cyber Physical Systems" (DAC 2010): interoperable medical devices composed
into verified, physiologically closed-loop clinical scenarios.

Quickstart::

    from repro.core import ClosedLoopPCASystem, PCASystemConfig

    result = ClosedLoopPCASystem(PCASystemConfig(mode="closed_loop")).run()
    print(result.min_spo2, result.harmed)

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (clock, processes, channels, faults).
``repro.patient``
    Pharmacokinetic / pharmacodynamic patient models and populations.
``repro.devices``
    Virtual medical devices (PCA pump, pulse oximeter, ventilator, ...).
``repro.middleware``
    ICE-style interoperability: bus, registry, QoS, supervisor hosting.
``repro.core``
    Closed-loop PCA supervision (the paper's Figure 1 system).
``repro.control``
    Supervisory adaptive control and baseline controllers.
``repro.alarms``
    Threshold, patient-adaptive, and multivariate smart alarms.
``repro.ehr``
    Electronic health record store with access control.
``repro.workflow``
    Executable clinical workflow language, analysis, and compilation.
``repro.verification``
    Transition systems, reachability, BMC, k-induction, assume-guarantee.
``repro.security``
    Device authentication, command authorisation, attack models.
``repro.certification``
    GSN-style assurance cases and incremental re-certification.
``repro.scenarios``
    End-to-end clinical scenarios used by the experiments.
``repro.campaign``
    Population-scale Monte Carlo campaigns: scenario registry, parallel
    execution engine, streamed results with resume, and aggregation.
``repro.analysis``
    Metrics, statistics, and report-table formatting.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
