"""Command-line entry point: ``python -m repro.campaign <command>``.

Commands
--------
``list``
    Show the registered scenarios and their campaign parameters.
``run SPEC.json``
    Execute a campaign spec, optionally in parallel and/or persisted to a
    campaign directory (which then supports ``--resume`` and ``report``).
    ``--shard I/K`` executes only the I-th of K partitions (any box, any
    time, resumable independently); the spec may itself be a shard
    manifest emitted by ``shard``.
``shard SPEC.json --count K --out DIR``
    Emit K self-contained shard-manifest files, one dispatchable work
    unit per box.
``merge SEG [SEG ...] --out DIR``
    Fold finalized shard segments into one store whose ``results.jsonl``
    is byte-identical to a serial run, writing a content-hashed
    ``shard_index.json`` alongside.
``report DIR``
    Aggregate a stored campaign into a summary table via streaming
    (record-at-a-time) aggregation — a 100k-run store is never loaded
    into memory.
``topology SPEC.json``
    Expand a declarative hospital :class:`~repro.topology.spec.TopologySpec`
    into its deterministic manifest (canonical JSON): which patients occupy
    which beds, each bed's device stack and channels, and per-ward cohort
    composition.  The manifest depends only on (spec, seed) — the
    byte-identity surface the topology tests pin.

All commands emit through the :mod:`repro.obs.logging` facade: ``--json``
switches every line to NDJSON events (tables are emitted structurally as
``{title, columns, rows}``), ``--quiet`` suppresses informational output,
and the default human mode is byte-identical to the plain ``print`` output
this CLI used to produce.  ``run --metrics-out PATH`` enables the
observability registry and writes the merged campaign metrics snapshot.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from pathlib import Path

from repro.campaign.aggregate import campaign_table, streaming_campaign_table
from repro.campaign.engine import run_campaign
from repro.campaign.registry import CampaignError, get_scenario, list_scenarios
from repro.campaign.resilience import ResilienceConfig, RetryPolicy
from repro.campaign.sharding import (STRATEGIES, ShardSelector,
                                     load_spec_or_shard,
                                     write_shard_manifests)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.obs import export as obs_export
from repro.obs import metrics as obs_metrics
from repro.obs.logging import StructLogger, get_logger


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Population-scale simulation campaigns over the repro scenarios.",
    )
    # Output-mode flags are shared by every subcommand via a parent parser,
    # so `run --quiet` keeps working exactly as before and `list`/`report`
    # gain the same switches.
    output = argparse.ArgumentParser(add_help=False)
    mode = output.add_mutually_exclusive_group()
    mode.add_argument("--quiet", action="store_true",
                      help="suppress informational output (errors still print)")
    mode.add_argument("--json", action="store_true",
                      help="emit NDJSON events instead of human-readable lines")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", parents=[output],
                        help="show registered campaign scenarios")

    run = commands.add_parser("run", parents=[output],
                              help="execute a campaign spec (JSON file)")
    run.add_argument("spec", help="path to a campaign spec JSON file "
                                  "(or a shard manifest emitted by 'shard')")
    run.add_argument("--shard", default=None, metavar="I/K",
                     help="execute only the I-th of K partitions of the "
                          "expanded campaign (1-based, e.g. 2/4); segments "
                          "merge byte-identically via 'merge'")
    run.add_argument("--shard-strategy", choices=STRATEGIES,
                     default="contiguous",
                     help="partition assignment for --shard (default: "
                          "contiguous blocks; strided balances systematic "
                          "cost gradients)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes (1 = deterministic serial reference)")
    run.add_argument("--out", default=None,
                     help="campaign directory for streamed results and resume")
    run.add_argument("--resume", action="store_true",
                     help="skip runs already completed in --out")
    run.add_argument("--chunksize", type=int, default=None,
                     help="runs handed to a worker per dispatch (default: 1 "
                          "with --out so checkpointing stays per-run, else "
                          "auto: max(1, runs // (workers * 4)))")
    run.add_argument("--flush-every", type=int, default=1,
                     help="flush+fsync results.jsonl every N records "
                          "(default 1 = per-record durability; larger values "
                          "risk at most N-1 tail records on a crash)")
    run.add_argument("--group-by", default=None,
                     help="comma-separated fields for the post-run summary table")
    run.add_argument("--metrics", default=None,
                     help="comma-separated result metrics for the summary table")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="enable observability and write the merged campaign "
                          "metrics snapshot (NDJSON) to PATH")
    run.add_argument("--isolate-failures", action="store_true",
                     help="quarantine failing runs to errors.jsonl instead of "
                          "aborting the campaign (resume re-dispatches them)")
    run.add_argument("--retries", type=int, default=3, metavar="N",
                     help="with --isolate-failures: total attempts per run for "
                          "transient failures (default 3; 1 disables retry)")
    run.add_argument("--retry-backoff", type=float, default=0.0, metavar="SECONDS",
                     help="with --isolate-failures: base backoff before a "
                          "retry, doubled per attempt with seeded jitter "
                          "(default 0 = retry immediately)")
    run.add_argument("--run-timeout", type=float, default=None, metavar="SECONDS",
                     help="with --isolate-failures and --workers > 1: per-run "
                          "wall-clock budget; a run exceeding it is "
                          "quarantined and its worker killed and respawned")

    shard = commands.add_parser(
        "shard", parents=[output],
        help="partition a campaign into dispatchable shard manifests")
    shard.add_argument("spec", help="path to a campaign spec JSON file")
    shard.add_argument("--count", type=int, required=True, metavar="K",
                       help="number of shards to emit")
    shard.add_argument("--strategy", choices=STRATEGIES, default="contiguous",
                       help="partition assignment (default: contiguous)")
    shard.add_argument("--out", required=True, metavar="DIR",
                       help="directory for the shard manifest files")

    merge = commands.add_parser(
        "merge", parents=[output],
        help="merge finalized shard segments into one campaign store")
    merge.add_argument("segments", nargs="+",
                       help="shard segment directories written by "
                            "'run --shard I/K --out SEG'")
    merge.add_argument("--out", required=True, metavar="DIR",
                       help="directory for the merged store")
    merge.add_argument("--allow-partial", action="store_true",
                       help="merge whatever segments are present instead of "
                            "failing on missing shards/runs")
    merge.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="enable observability and merge each segment's "
                            "metrics.ndjson (plus the merge's own counters) "
                            "into one snapshot at PATH")

    report = commands.add_parser("report", parents=[output],
                                 help="summarise a stored campaign")
    report.add_argument("directory", help="campaign directory written by 'run --out'")
    report.add_argument("--group-by", default=None,
                        help="comma-separated grouping fields (default: swept params)")
    report.add_argument("--metrics", default=None,
                        help="comma-separated result metrics (default: scenario schema)")
    report.add_argument("--statistic", default="mean",
                        choices=("mean", "median", "min", "max", "std"))

    topology = commands.add_parser(
        "topology", parents=[output],
        help="expand a hospital topology spec into its deterministic manifest")
    topology.add_argument("spec", help="path to a TopologySpec JSON file")
    topology.add_argument("--seed", type=int, default=0,
                          help="expansion seed (default 0); identical "
                               "(spec, seed) pairs expand byte-identically")
    topology.add_argument("--out", default=None, metavar="PATH",
                          help="write the canonical manifest JSON to PATH "
                               "(default: print a summary only)")
    return parser


def _make_logger(args: argparse.Namespace) -> StructLogger:
    mode = "json" if getattr(args, "json", False) else (
        "quiet" if getattr(args, "quiet", False) else "human")
    return get_logger("repro.campaign", mode=mode)


def _csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    fields = [item.strip() for item in value.split(",") if item.strip()]
    return fields or None


def _default_metrics(records: Sequence[Dict[str, Any]], limit: int = 6) -> List[str]:
    """Numeric fields of the scenario's declared result schema (or any found)."""
    if not records:
        return []

    def numeric(key: str) -> bool:
        # A field may legitimately be None for some runs (e.g. a latency when
        # nothing was detected), so look for the first run that has a value.
        return any(
            isinstance(record["result"].get(key), (bool, int, float))
            for record in records
        )

    try:
        schema = get_scenario(records[0]["scenario"]).result_fields
    except CampaignError:
        schema = ()
    metrics = [key for key in schema if numeric(key)]
    if not metrics:
        metrics = [key for key in records[0]["result"] if numeric(key)]
    return metrics[:limit]


def _emit_rendered(log: StructLogger, table) -> None:
    if log.json_mode:
        log.info(event="table", title=table.title, columns=list(table.columns),
                 rows=[list(row) for row in table.rows])
    else:
        log.info(table.render())


def _emit_table(log: StructLogger, records, group_by, metrics,
                statistic="mean", title="campaign summary"):
    if not records:
        log.info("no records", event="table")
        return
    if not group_by:
        group_by = ["scenario"]
    table = campaign_table(
        records, group_by=group_by, metrics=metrics, statistic=statistic, title=title
    )
    _emit_rendered(log, table)


def _cmd_list(log: StructLogger) -> int:
    for scenario in list_scenarios():
        cohort = " [cohort]" if scenario.supports_cohort else ""
        defaults = ", ".join(f"{k}={v!r}" for k, v in sorted(scenario.defaults.items()))
        if log.json_mode:
            log.info(event="scenario", name=scenario.name,
                     cohort=scenario.supports_cohort,
                     description=scenario.description,
                     parameters={k: repr(v) for k, v in sorted(scenario.defaults.items())},
                     result_fields=list(scenario.result_fields))
            continue
        log.info(f"{scenario.name}{cohort}: {scenario.description}")
        log.info(f"  parameters: {defaults}")
        log.info(f"  result fields: {', '.join(scenario.result_fields)}")
    return 0


def _cmd_run(args: argparse.Namespace, log: StructLogger) -> int:
    spec, shard = load_spec_or_shard(args.spec)
    if args.shard is not None:
        selected = ShardSelector.parse(args.shard, args.shard_strategy)
        if shard is not None and shard != selected:
            raise CampaignError(
                f"spec file {args.spec} is the manifest for shard "
                f"{shard.label} but --shard requested {selected.label}")
        shard = selected
    total = spec.grid_size()
    shard_note = ""
    if shard is not None:
        owned = len(shard.run_indices(total))
        shard_note = f" (shard {shard.label}: {owned} of {total} runs)"
    log.info(f"campaign {spec.name!r}: {total} runs of scenario {spec.scenario!r} "
             f"({args.workers} worker{'s' if args.workers != 1 else ''})"
             f"{shard_note}",
             event="campaign-start", campaign=spec.name, scenario=spec.scenario,
             runs=total, workers=args.workers,
             shard=shard.label if shard is not None else None)

    def progress(done: int, total_runs: int, record: Dict[str, Any]) -> None:
        log.info(f"  [{done}/{total_runs}] {record['run_id']}",
                 event="progress", done=done, total=total_runs,
                 run_id=record["run_id"])

    resilience = None
    if args.isolate_failures:
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=args.retries,
                              backoff_base_s=args.retry_backoff),
            run_timeout_s=args.run_timeout,
        )
    elif args.run_timeout is not None:
        raise CampaignError("--run-timeout requires --isolate-failures")

    report = run_campaign(
        spec,
        workers=args.workers,
        directory=args.out,
        resume=args.resume,
        progress=progress,
        chunksize=args.chunksize,
        flush_every=args.flush_every,
        metrics_out=args.metrics_out,
        resilience=resilience,
        shard=shard,
    )
    where = f" -> {report.directory}" if report.directory else ""
    log.info(f"completed {report.total} runs "
             f"({report.executed} executed, {report.skipped} resumed){where}",
             event="campaign-done", total=report.total, executed=report.executed,
             skipped=report.skipped,
             directory=str(report.directory) if report.directory else None)
    if resilience is not None:
        log.info(f"outcomes: {report.ok} ok ({report.retried} after retry), "
                 f"{report.quarantined} quarantined "
                 f"({report.timed_out} timed out), "
                 f"{report.worker_restarts} worker restarts",
                 event="campaign-outcomes", ok=report.ok,
                 retried=report.retried, quarantined=report.quarantined,
                 timed_out=report.timed_out,
                 worker_restarts=report.worker_restarts)
        if report.quarantined and report.directory is not None:
            log.info(f"quarantined runs -> {report.directory / 'errors.jsonl'} "
                     "(re-run with --resume to re-dispatch them)",
                     event="campaign-quarantine",
                     errors=str(report.directory / "errors.jsonl"))
    if report.metrics_path is not None:
        log.info(f"metrics snapshot -> {report.metrics_path}",
                 event="metrics-written", path=str(report.metrics_path))

    group_by = _csv(args.group_by) or spec.sweep_axes()
    metrics = _csv(args.metrics) or _default_metrics(report.records)
    if metrics:
        _emit_table(log, report.records, group_by, metrics,
                    title=f"campaign {spec.name!r} summary")
    return 0


def _cmd_shard(args: argparse.Namespace, log: StructLogger) -> int:
    spec = CampaignSpec.from_file(args.spec)
    written = write_shard_manifests(spec, args.out, args.count, args.strategy)
    for path, selector, runs in written:
        log.info(f"  shard {selector.label}: {runs} runs -> {path}",
                 event="shard-written", shard=selector.label, runs=runs,
                 path=str(path))
    total = sum(runs for _, _, runs in written)
    log.info(f"campaign {spec.name!r}: {total} runs partitioned into "
             f"{args.count} {args.strategy} shard manifest(s) in {args.out}",
             event="shard-done", campaign=spec.name, runs=total,
             count=args.count, strategy=args.strategy, directory=args.out)
    return 0


def _merge_metrics(args: argparse.Namespace, log: StructLogger,
                   merged_segments: int) -> None:
    """Fold per-segment metrics snapshots + the merge's own counters.

    Reuses the engine's worker-shard merge path: each segment directory may
    carry a ``metrics.ndjson`` written by ``run --metrics-out``; those fold
    bucket-wise (per-shard wall histograms) and sum-wise (counters) with a
    parent snapshot carrying ``campaign.shards_merged``.
    """
    instruments = obs_metrics.campaign_instruments()
    if instruments is not None:
        instruments.shards_merged.value += merged_segments
    groups = [obs_export.snapshot_lines(meta={"source": "campaign-merge"})]
    for segment in args.segments:
        snapshot = Path(segment) / "metrics.ndjson"
        if snapshot.exists():
            groups.append(obs_export.read_snapshot(snapshot))
    out = Path(args.metrics_out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(obs_export.dump_lines(obs_export.merge_lines(groups)),
                   encoding="utf-8")
    log.info(f"metrics snapshot ({len(groups) - 1} segment shard(s)) -> {out}",
             event="metrics-written", path=str(out), shards=len(groups) - 1)


def _cmd_merge(args: argparse.Namespace, log: StructLogger) -> int:
    if args.metrics_out is not None:
        obs_metrics.enable()
    store = ResultStore(args.out)
    result = store.merge(args.segments, allow_partial=args.allow_partial)
    for info in result.segments:
        log.info(f"  shard {info.index}/{info.count}: {info.records} records "
                 f"from {info.directory} (sha256 {info.sha256[:12]})",
                 event="segment-merged", shard=f"{info.index}/{info.count}",
                 records=info.records, directory=str(info.directory),
                 sha256=info.sha256, skipped_lines=info.skipped_lines)
    log.info(f"merged {result.records}/{result.total_runs} runs from "
             f"{len(result.segments)} segment(s) -> {result.directory} "
             f"(results sha256 {result.merged_sha256[:12]})",
             event="merge-done", records=result.records,
             total_runs=result.total_runs, segments=len(result.segments),
             directory=str(result.directory), sha256=result.merged_sha256,
             index=str(result.index_path), errors=result.errors)
    if result.missing:
        log.info(f"partial merge: {len(result.missing)} run(s) still missing",
                 event="merge-partial", missing=len(result.missing))
    if args.metrics_out is not None:
        _merge_metrics(args, log, len(result.segments))
    return 0


def _cmd_report(args: argparse.Namespace, log: StructLogger) -> int:
    store = ResultStore(args.directory)
    # A bounded peek infers default metrics; aggregation itself re-streams
    # the file record-at-a-time, so the store is never materialised.
    peek = store.head_records(64)
    if not peek:
        log.error(f"no results in {args.directory}",
                  event="report-empty", directory=args.directory)
        return 1
    manifest = store.load_manifest()
    spec = CampaignSpec.from_dict(manifest["spec"]) if manifest else None
    group_by = _csv(args.group_by) or (spec.sweep_axes() if spec else [])
    if not group_by:
        group_by = ["scenario"]
    metrics = _csv(args.metrics) or _default_metrics(peek)
    title = f"campaign {spec.name!r} report" if spec else "campaign report"
    if not metrics:
        log.info("no records", event="table")
        return 0
    table = streaming_campaign_table(
        store.iter_records(), group_by=group_by, metrics=metrics,
        statistic=args.statistic, title=title)
    _emit_rendered(log, table)
    return 0


def _cmd_topology(args: argparse.Namespace, log: StructLogger) -> int:
    # Imported here so the topology layer stays optional for the other
    # subcommands; expansion failures surface as CampaignError -> exit 2.
    from repro.topology import (TopologyError, TopologySpec, cohort_counts,
                                expand_topology, manifest_json)

    try:
        spec = TopologySpec.from_file(args.spec)
        manifest = expand_topology(spec, args.seed)
        canonical = manifest_json(spec, args.seed)
    except TopologyError as error:
        raise CampaignError(f"invalid topology spec: {error}") from None
    cohorts = cohort_counts(manifest)
    cohort_note = ", ".join(f"{name}={count}"
                            for name, count in sorted(cohorts.items()))
    log.info(f"topology {spec.name!r} @ seed {args.seed}: "
             f"{len(spec.wards)} ward(s), {spec.total_beds} beds, "
             f"{spec.total_caregivers()} caregiver(s); cohorts: {cohort_note}",
             event="topology-expanded", topology=spec.name, seed=args.seed,
             wards=len(spec.wards), beds=spec.total_beds,
             caregivers=spec.total_caregivers(), cohorts=cohorts)
    if args.out is not None:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(canonical + "\n", encoding="utf-8")
        log.info(f"manifest ({len(canonical)} bytes) -> {out}",
                 event="manifest-written", path=str(out), bytes=len(canonical))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    log = _make_logger(args)
    try:
        if args.command == "list":
            return _cmd_list(log)
        if args.command == "run":
            return _cmd_run(args, log)
        if args.command == "shard":
            return _cmd_shard(args, log)
        if args.command == "merge":
            return _cmd_merge(args, log)
        if args.command == "report":
            return _cmd_report(args, log)
        if args.command == "topology":
            return _cmd_topology(args, log)
    except CampaignError as error:
        log.error(f"error: {error}", event="error", error=str(error))
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
