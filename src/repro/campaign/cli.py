"""Command-line entry point: ``python -m repro.campaign <command>``.

Commands
--------
``list``
    Show the registered scenarios and their campaign parameters.
``run SPEC.json``
    Execute a campaign spec, optionally in parallel and/or persisted to a
    campaign directory (which then supports ``--resume`` and ``report``).
``report DIR``
    Aggregate a stored campaign into a summary table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.aggregate import campaign_table
from repro.campaign.engine import run_campaign
from repro.campaign.registry import CampaignError, get_scenario, list_scenarios
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, load_results


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Population-scale simulation campaigns over the repro scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="show registered campaign scenarios")

    run = commands.add_parser("run", help="execute a campaign spec (JSON file)")
    run.add_argument("spec", help="path to a campaign spec JSON file")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes (1 = deterministic serial reference)")
    run.add_argument("--out", default=None,
                     help="campaign directory for streamed results and resume")
    run.add_argument("--resume", action="store_true",
                     help="skip runs already completed in --out")
    run.add_argument("--chunksize", type=int, default=None,
                     help="runs handed to a worker per dispatch (default: 1 "
                          "with --out so checkpointing stays per-run, else "
                          "auto: max(1, runs // (workers * 4)))")
    run.add_argument("--flush-every", type=int, default=1,
                     help="flush+fsync results.jsonl every N records "
                          "(default 1 = per-record durability; larger values "
                          "risk at most N-1 tail records on a crash)")
    run.add_argument("--group-by", default=None,
                     help="comma-separated fields for the post-run summary table")
    run.add_argument("--metrics", default=None,
                     help="comma-separated result metrics for the summary table")
    run.add_argument("--quiet", action="store_true", help="suppress progress lines")

    report = commands.add_parser("report", help="summarise a stored campaign")
    report.add_argument("directory", help="campaign directory written by 'run --out'")
    report.add_argument("--group-by", default=None,
                        help="comma-separated grouping fields (default: swept params)")
    report.add_argument("--metrics", default=None,
                        help="comma-separated result metrics (default: scenario schema)")
    report.add_argument("--statistic", default="mean",
                        choices=("mean", "median", "min", "max", "std"))
    return parser


def _csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    fields = [item.strip() for item in value.split(",") if item.strip()]
    return fields or None


def _default_metrics(records: Sequence[Dict[str, Any]], limit: int = 6) -> List[str]:
    """Numeric fields of the scenario's declared result schema (or any found)."""
    if not records:
        return []

    def numeric(key: str) -> bool:
        # A field may legitimately be None for some runs (e.g. a latency when
        # nothing was detected), so look for the first run that has a value.
        return any(
            isinstance(record["result"].get(key), (bool, int, float))
            for record in records
        )

    try:
        schema = get_scenario(records[0]["scenario"]).result_fields
    except CampaignError:
        schema = ()
    metrics = [key for key in schema if numeric(key)]
    if not metrics:
        metrics = [key for key in records[0]["result"] if numeric(key)]
    return metrics[:limit]


def _print_table(records, group_by, metrics, statistic="mean", title="campaign summary"):
    if not records:
        print("no records")
        return
    if not group_by:
        group_by = ["scenario"]
    table = campaign_table(
        records, group_by=group_by, metrics=metrics, statistic=statistic, title=title
    )
    print(table.render())


def _cmd_list() -> int:
    for scenario in list_scenarios():
        cohort = " [cohort]" if scenario.supports_cohort else ""
        print(f"{scenario.name}{cohort}: {scenario.description}")
        defaults = ", ".join(f"{k}={v!r}" for k, v in sorted(scenario.defaults.items()))
        print(f"  parameters: {defaults}")
        print(f"  result fields: {', '.join(scenario.result_fields)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_file(args.spec)
    total = spec.grid_size()
    if not args.quiet:
        print(f"campaign {spec.name!r}: {total} runs of scenario {spec.scenario!r} "
              f"({args.workers} worker{'s' if args.workers != 1 else ''})")

    def progress(done: int, total_runs: int, record: Dict[str, Any]) -> None:
        if not args.quiet:
            print(f"  [{done}/{total_runs}] {record['run_id']}")

    report = run_campaign(
        spec,
        workers=args.workers,
        directory=args.out,
        resume=args.resume,
        progress=progress,
        chunksize=args.chunksize,
        flush_every=args.flush_every,
    )
    if not args.quiet:
        where = f" -> {report.directory}" if report.directory else ""
        print(f"completed {report.total} runs "
              f"({report.executed} executed, {report.skipped} resumed){where}")

    group_by = _csv(args.group_by) or spec.sweep_axes()
    metrics = _csv(args.metrics) or _default_metrics(report.records)
    if metrics:
        _print_table(report.records, group_by, metrics,
                     title=f"campaign {spec.name!r} summary")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    records = load_results(args.directory)
    if not records:
        print(f"no results in {args.directory}", file=sys.stderr)
        return 1
    manifest = ResultStore(args.directory).load_manifest()
    spec = CampaignSpec.from_dict(manifest["spec"]) if manifest else None
    group_by = _csv(args.group_by) or (spec.sweep_axes() if spec else [])
    metrics = _csv(args.metrics) or _default_metrics(records)
    title = f"campaign {spec.name!r} report" if spec else "campaign report"
    _print_table(records, group_by, metrics, statistic=args.statistic, title=title)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
    except CampaignError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
