"""Command-line entry point: ``python -m repro.campaign <command>``.

Commands
--------
``list``
    Show the registered scenarios and their campaign parameters.
``run SPEC.json``
    Execute a campaign spec, optionally in parallel and/or persisted to a
    campaign directory (which then supports ``--resume`` and ``report``).
``report DIR``
    Aggregate a stored campaign into a summary table.

All commands emit through the :mod:`repro.obs.logging` facade: ``--json``
switches every line to NDJSON events (tables are emitted structurally as
``{title, columns, rows}``), ``--quiet`` suppresses informational output,
and the default human mode is byte-identical to the plain ``print`` output
this CLI used to produce.  ``run --metrics-out PATH`` enables the
observability registry and writes the merged campaign metrics snapshot.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.aggregate import campaign_table
from repro.campaign.engine import run_campaign
from repro.campaign.registry import CampaignError, get_scenario, list_scenarios
from repro.campaign.resilience import ResilienceConfig, RetryPolicy
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, load_results
from repro.obs.logging import StructLogger, get_logger


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Population-scale simulation campaigns over the repro scenarios.",
    )
    # Output-mode flags are shared by every subcommand via a parent parser,
    # so `run --quiet` keeps working exactly as before and `list`/`report`
    # gain the same switches.
    output = argparse.ArgumentParser(add_help=False)
    mode = output.add_mutually_exclusive_group()
    mode.add_argument("--quiet", action="store_true",
                      help="suppress informational output (errors still print)")
    mode.add_argument("--json", action="store_true",
                      help="emit NDJSON events instead of human-readable lines")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", parents=[output],
                        help="show registered campaign scenarios")

    run = commands.add_parser("run", parents=[output],
                              help="execute a campaign spec (JSON file)")
    run.add_argument("spec", help="path to a campaign spec JSON file")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes (1 = deterministic serial reference)")
    run.add_argument("--out", default=None,
                     help="campaign directory for streamed results and resume")
    run.add_argument("--resume", action="store_true",
                     help="skip runs already completed in --out")
    run.add_argument("--chunksize", type=int, default=None,
                     help="runs handed to a worker per dispatch (default: 1 "
                          "with --out so checkpointing stays per-run, else "
                          "auto: max(1, runs // (workers * 4)))")
    run.add_argument("--flush-every", type=int, default=1,
                     help="flush+fsync results.jsonl every N records "
                          "(default 1 = per-record durability; larger values "
                          "risk at most N-1 tail records on a crash)")
    run.add_argument("--group-by", default=None,
                     help="comma-separated fields for the post-run summary table")
    run.add_argument("--metrics", default=None,
                     help="comma-separated result metrics for the summary table")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="enable observability and write the merged campaign "
                          "metrics snapshot (NDJSON) to PATH")
    run.add_argument("--isolate-failures", action="store_true",
                     help="quarantine failing runs to errors.jsonl instead of "
                          "aborting the campaign (resume re-dispatches them)")
    run.add_argument("--retries", type=int, default=3, metavar="N",
                     help="with --isolate-failures: total attempts per run for "
                          "transient failures (default 3; 1 disables retry)")
    run.add_argument("--retry-backoff", type=float, default=0.0, metavar="SECONDS",
                     help="with --isolate-failures: base backoff before a "
                          "retry, doubled per attempt with seeded jitter "
                          "(default 0 = retry immediately)")
    run.add_argument("--run-timeout", type=float, default=None, metavar="SECONDS",
                     help="with --isolate-failures and --workers > 1: per-run "
                          "wall-clock budget; a run exceeding it is "
                          "quarantined and its worker killed and respawned")

    report = commands.add_parser("report", parents=[output],
                                 help="summarise a stored campaign")
    report.add_argument("directory", help="campaign directory written by 'run --out'")
    report.add_argument("--group-by", default=None,
                        help="comma-separated grouping fields (default: swept params)")
    report.add_argument("--metrics", default=None,
                        help="comma-separated result metrics (default: scenario schema)")
    report.add_argument("--statistic", default="mean",
                        choices=("mean", "median", "min", "max", "std"))
    return parser


def _make_logger(args: argparse.Namespace) -> StructLogger:
    mode = "json" if getattr(args, "json", False) else (
        "quiet" if getattr(args, "quiet", False) else "human")
    return get_logger("repro.campaign", mode=mode)


def _csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    fields = [item.strip() for item in value.split(",") if item.strip()]
    return fields or None


def _default_metrics(records: Sequence[Dict[str, Any]], limit: int = 6) -> List[str]:
    """Numeric fields of the scenario's declared result schema (or any found)."""
    if not records:
        return []

    def numeric(key: str) -> bool:
        # A field may legitimately be None for some runs (e.g. a latency when
        # nothing was detected), so look for the first run that has a value.
        return any(
            isinstance(record["result"].get(key), (bool, int, float))
            for record in records
        )

    try:
        schema = get_scenario(records[0]["scenario"]).result_fields
    except CampaignError:
        schema = ()
    metrics = [key for key in schema if numeric(key)]
    if not metrics:
        metrics = [key for key in records[0]["result"] if numeric(key)]
    return metrics[:limit]


def _emit_table(log: StructLogger, records, group_by, metrics,
                statistic="mean", title="campaign summary"):
    if not records:
        log.info("no records", event="table")
        return
    if not group_by:
        group_by = ["scenario"]
    table = campaign_table(
        records, group_by=group_by, metrics=metrics, statistic=statistic, title=title
    )
    if log.json_mode:
        log.info(event="table", title=table.title, columns=list(table.columns),
                 rows=[list(row) for row in table.rows])
    else:
        log.info(table.render())


def _cmd_list(log: StructLogger) -> int:
    for scenario in list_scenarios():
        cohort = " [cohort]" if scenario.supports_cohort else ""
        defaults = ", ".join(f"{k}={v!r}" for k, v in sorted(scenario.defaults.items()))
        if log.json_mode:
            log.info(event="scenario", name=scenario.name,
                     cohort=scenario.supports_cohort,
                     description=scenario.description,
                     parameters={k: repr(v) for k, v in sorted(scenario.defaults.items())},
                     result_fields=list(scenario.result_fields))
            continue
        log.info(f"{scenario.name}{cohort}: {scenario.description}")
        log.info(f"  parameters: {defaults}")
        log.info(f"  result fields: {', '.join(scenario.result_fields)}")
    return 0


def _cmd_run(args: argparse.Namespace, log: StructLogger) -> int:
    spec = CampaignSpec.from_file(args.spec)
    total = spec.grid_size()
    log.info(f"campaign {spec.name!r}: {total} runs of scenario {spec.scenario!r} "
             f"({args.workers} worker{'s' if args.workers != 1 else ''})",
             event="campaign-start", campaign=spec.name, scenario=spec.scenario,
             runs=total, workers=args.workers)

    def progress(done: int, total_runs: int, record: Dict[str, Any]) -> None:
        log.info(f"  [{done}/{total_runs}] {record['run_id']}",
                 event="progress", done=done, total=total_runs,
                 run_id=record["run_id"])

    resilience = None
    if args.isolate_failures:
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=args.retries,
                              backoff_base_s=args.retry_backoff),
            run_timeout_s=args.run_timeout,
        )
    elif args.run_timeout is not None:
        raise CampaignError("--run-timeout requires --isolate-failures")

    report = run_campaign(
        spec,
        workers=args.workers,
        directory=args.out,
        resume=args.resume,
        progress=progress,
        chunksize=args.chunksize,
        flush_every=args.flush_every,
        metrics_out=args.metrics_out,
        resilience=resilience,
    )
    where = f" -> {report.directory}" if report.directory else ""
    log.info(f"completed {report.total} runs "
             f"({report.executed} executed, {report.skipped} resumed){where}",
             event="campaign-done", total=report.total, executed=report.executed,
             skipped=report.skipped,
             directory=str(report.directory) if report.directory else None)
    if resilience is not None:
        log.info(f"outcomes: {report.ok} ok ({report.retried} after retry), "
                 f"{report.quarantined} quarantined "
                 f"({report.timed_out} timed out), "
                 f"{report.worker_restarts} worker restarts",
                 event="campaign-outcomes", ok=report.ok,
                 retried=report.retried, quarantined=report.quarantined,
                 timed_out=report.timed_out,
                 worker_restarts=report.worker_restarts)
        if report.quarantined and report.directory is not None:
            log.info(f"quarantined runs -> {report.directory / 'errors.jsonl'} "
                     "(re-run with --resume to re-dispatch them)",
                     event="campaign-quarantine",
                     errors=str(report.directory / "errors.jsonl"))
    if report.metrics_path is not None:
        log.info(f"metrics snapshot -> {report.metrics_path}",
                 event="metrics-written", path=str(report.metrics_path))

    group_by = _csv(args.group_by) or spec.sweep_axes()
    metrics = _csv(args.metrics) or _default_metrics(report.records)
    if metrics:
        _emit_table(log, report.records, group_by, metrics,
                    title=f"campaign {spec.name!r} summary")
    return 0


def _cmd_report(args: argparse.Namespace, log: StructLogger) -> int:
    records = load_results(args.directory)
    if not records:
        log.error(f"no results in {args.directory}",
                  event="report-empty", directory=args.directory)
        return 1
    manifest = ResultStore(args.directory).load_manifest()
    spec = CampaignSpec.from_dict(manifest["spec"]) if manifest else None
    group_by = _csv(args.group_by) or (spec.sweep_axes() if spec else [])
    metrics = _csv(args.metrics) or _default_metrics(records)
    title = f"campaign {spec.name!r} report" if spec else "campaign report"
    _emit_table(log, records, group_by, metrics,
                statistic=args.statistic, title=title)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    log = _make_logger(args)
    try:
        if args.command == "list":
            return _cmd_list(log)
        if args.command == "run":
            return _cmd_run(args, log)
        if args.command == "report":
            return _cmd_report(args, log)
    except CampaignError as error:
        log.error(f"error: {error}", event="error", error=str(error))
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
