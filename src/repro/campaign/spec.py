"""Campaign specifications and their expansion into run manifests.

A :class:`CampaignSpec` is a declarative description of a population-scale
experiment: one registered scenario, a parameter space (scalars are fixed,
lists are swept as a cross product), an optional patient cohort, and a
repeat count.  :meth:`CampaignSpec.expand` turns it into a flat list of
:class:`RunManifest` entries, each carrying a stable ``run_id`` and a seed
derived from that id through :func:`repro.sim.random.derive_seed` — so a
run's randomness depends only on the campaign seed and the run's identity,
never on execution order, worker placement, or resume history.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.campaign.registry import CampaignError, get_scenario
from repro.sim.random import derive_seed


@dataclass(frozen=True)
class RunManifest:
    """One unit of campaign work: a scenario invocation with bound parameters."""

    run_index: int
    run_id: str
    scenario: str
    params: Dict[str, Any]
    seed: int

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class CampaignSpec:
    """Declarative description of a simulation campaign.

    parameters:
        Mapping of scenario parameter name to either a scalar (fixed for
        every run) or a list of values (swept; the cross product of all
        swept parameters defines the configuration grid).
    cohort_size:
        If positive, every grid point additionally runs once per patient in
        a reproducible cohort of this size (scenario must support cohorts).
    repeats:
        Independent replications of every (grid point, patient) cell, each
        with its own derived seed.
    base_seed:
        Master seed; everything stochastic in the campaign derives from it.
    """

    name: str
    scenario: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    cohort_size: int = 0
    repeats: int = 1
    base_seed: int = 0
    description: str = ""

    def validate(self) -> None:
        if not self.name:
            raise CampaignError("campaign name must be non-empty")
        if self.repeats < 1:
            raise CampaignError("repeats must be >= 1")
        if self.cohort_size < 0:
            raise CampaignError("cohort_size must be non-negative")
        if self.base_seed < 0:
            raise CampaignError("base_seed must be non-negative")
        scenario = get_scenario(self.scenario)
        empty = [key for key, value in self.parameters.items()
                 if isinstance(value, list) and not value]
        if empty:
            raise CampaignError(
                f"swept parameters {empty} have no values; the campaign would "
                "expand to zero runs"
            )
        reserved = sorted(set(scenario.AUTO_PARAMS) & set(self.parameters))
        if reserved:
            raise CampaignError(
                f"parameters {reserved} are injected by the engine (use cohort_size "
                "/ repeats instead of setting them directly)"
            )
        scenario.validate_params(dict(self.parameters))
        if self.cohort_size > 0 and not scenario.supports_cohort:
            raise CampaignError(
                f"scenario {self.scenario!r} does not support patient cohorts"
            )
        if scenario.spec_validator is not None:
            scenario.spec_validator(self)

    # ------------------------------------------------------------- expansion
    def sweep_axes(self) -> List[str]:
        """Names of the swept (list-valued) parameters, in declaration order."""
        return [key for key, value in self.parameters.items() if isinstance(value, list)]

    def grid_size(self) -> int:
        """Total run count, without materialising the manifests.

        Kept arithmetically in sync with :meth:`expand` (tested against it),
        so banners can print counts for huge campaigns at no cost.
        """
        size = self.repeats * max(1, self.cohort_size)
        for axis in self.sweep_axes():
            size *= len(self.parameters[axis])
        return size

    def expand(self) -> List[RunManifest]:
        """Expand into the full, deterministically ordered run list."""
        self.validate()
        scenario = get_scenario(self.scenario)
        axes = self.sweep_axes()
        fixed = {
            key: value
            for key, value in self.parameters.items()
            if not isinstance(value, list)
        }
        grids = [self.parameters[axis] for axis in axes]
        patient_indices: List[Optional[int]] = (
            list(range(self.cohort_size)) if self.cohort_size > 0 else [None]
        )
        cohort_seed = derive_seed(self.base_seed, f"campaign:{self.name}:cohort")

        manifests: List[RunManifest] = []
        for point in itertools.product(*grids) if grids else [()]:
            for patient_index in patient_indices:
                for repeat in range(self.repeats):
                    params = dict(fixed)
                    params.update(dict(zip(axes, point)))
                    id_parts = [f"{axis}={params[axis]}" for axis in axes]
                    if patient_index is not None:
                        params["patient_index"] = patient_index
                        params["cohort_seed"] = cohort_seed
                        id_parts.append(f"patient={patient_index:03d}")
                    if self.repeats > 1:
                        params["repeat"] = repeat
                    id_parts.append(f"rep={repeat}")
                    run_id = "&".join(id_parts)
                    resolved = scenario.resolved_params(params)
                    manifests.append(
                        RunManifest(
                            run_index=len(manifests),
                            run_id=run_id,
                            scenario=self.scenario,
                            params=resolved,
                            seed=derive_seed(self.base_seed, f"run:{run_id}"),
                        )
                    )
        seen: Dict[str, int] = {}
        for manifest in manifests:
            if manifest.run_id in seen:
                # Identical run ids mean identical seeds: the "independent"
                # samples would be perfectly correlated copies.
                raise CampaignError(
                    f"duplicate run id {manifest.run_id!r} (runs "
                    f"{seen[manifest.run_id]} and {manifest.run_index}); "
                    "remove duplicate sweep values, or use repeats for replication"
                )
            seen[manifest.run_id] = manifest.run_index
        return manifests

    # ----------------------------------------------------------- persistence
    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "parameters": self.parameters,
            "cohort_size": self.cohort_size,
            "repeats": self.repeats,
            "base_seed": self.base_seed,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        unknown = sorted(set(data) - set(cls.__dataclass_fields__))
        if unknown:
            raise CampaignError(f"unknown campaign spec fields: {unknown}")
        if "name" not in data or "scenario" not in data:
            raise CampaignError("campaign spec requires 'name' and 'scenario'")
        return cls(**dict(data))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        except OSError as error:
            raise CampaignError(f"cannot read campaign spec {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise CampaignError(f"campaign spec {path} is not valid JSON: {error}") from error


def cohort_patient(
    cohort_seed: int,
    index: int,
    *,
    sensitive_fraction: float = 0.15,
    athlete_fraction: float = 0.1,
):
    """Deterministically materialise patient ``index`` of a campaign cohort.

    Each patient is sampled from its own derived stream, so patient ``i`` is
    identical across configurations, workers, and resumes — campaigns compare
    configurations on *paired* populations, and materialising one patient
    never requires sampling the ones before it.
    """
    from repro.patient.population import PatientPopulation

    rng = np.random.default_rng(derive_seed(cohort_seed, f"patient:{index}"))
    population = PatientPopulation(rng=rng)
    patient = population.sample(
        1,
        prefix="cohort",
        sensitive_fraction=sensitive_fraction,
        athlete_fraction=athlete_fraction,
    )[0]
    return replace(patient, patient_id=f"patient-{index:03d}")


def patient_from_params(
    params: Mapping[str, Any],
    *,
    sensitive_fraction: float = 0.15,
    athlete_fraction: float = 0.1,
):
    """The patient a cohort-capable runner should simulate for ``params``.

    Resolves the engine-injected ``patient_index`` / ``cohort_seed`` auto
    params to a :func:`cohort_patient`, or falls back to the default patient
    for cohort-less campaigns.
    """
    from repro.patient.population import DEFAULT_PATIENT

    if params.get("patient_index") is None:
        return DEFAULT_PATIENT
    return cohort_patient(
        params["cohort_seed"],
        params["patient_index"],
        sensitive_fraction=sensitive_fraction,
        athlete_fraction=athlete_fraction,
    )
