"""Campaign specifications and their expansion into run manifests.

A :class:`CampaignSpec` is a declarative description of a population-scale
experiment: one registered scenario, a parameter space (scalars are fixed,
lists are swept as a cross product), an optional patient cohort, and a
repeat count.  :meth:`CampaignSpec.expand` turns it into a flat list of
:class:`RunManifest` entries, each carrying a stable ``run_id`` and a seed
derived from that id through :func:`repro.sim.random.derive_seed` — so a
run's randomness depends only on the campaign seed and the run's identity,
never on execution order, worker placement, or resume history.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.campaign.registry import CampaignError, get_scenario
from repro.sim.random import derive_seed


@dataclass(frozen=True)
class RunManifest:
    """One unit of campaign work: a scenario invocation with bound parameters."""

    run_index: int
    run_id: str
    scenario: str
    params: Dict[str, Any]
    seed: int

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


#: Fault-entry fields that may be swept (list-valued) in a ``faults`` block.
SWEEPABLE_FAULT_FIELDS = ("start", "duration", "target")


def axis_id_value(value: Any) -> str:
    """Render one bound axis value for a run id.

    Scalars keep their plain ``str`` form (existing run ids must not move).
    Structured values — topology specs and other dict/list sweeps — are
    digested over their canonical JSON: the id stays short and stable, and
    never embeds ``&``/``=``/whitespace from the structure itself.
    """
    if isinstance(value, (dict, list)):
        canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
        return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    return str(value)


@dataclass
class CampaignSpec:
    """Declarative description of a simulation campaign.

    parameters:
        Mapping of scenario parameter name to either a scalar (fixed for
        every run) or a list of values (swept; the cross product of all
        swept parameters defines the configuration grid).
    cohort_size:
        If positive, every grid point additionally runs once per patient in
        a reproducible cohort of this size (scenario must support cohorts).
    repeats:
        Independent replications of every (grid point, patient) cell, each
        with its own derived seed.
    base_seed:
        Master seed; everything stochastic in the campaign derives from it.
    faults:
        Declarative fault-injection block: a list of fault entries, each a
        dict with ``kind`` (fixed), optional ``parameters`` (fixed), and
        ``start`` / ``duration`` / ``target`` either scalar or list-valued
        — list values are swept exactly like swept parameters, joining the
        configuration cross product as axes named ``fault<i>.<field>``.
        Every grid point compiles its resolved entries into a
        ``fault_plan`` parameter (plain JSON dicts) that a fault-capable
        scenario runner arms on its :class:`~repro.sim.faults.FaultInjector`,
        so ``repro-campaign run`` can sweep outage duration x start time x
        target channel — the paper's Section II(c) communication-failure
        experiment at population scale.
    """

    name: str
    scenario: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    cohort_size: int = 0
    repeats: int = 1
    base_seed: int = 0
    description: str = ""
    faults: List[Dict[str, Any]] = field(default_factory=list)

    def validate(self) -> None:
        if not self.name:
            raise CampaignError("campaign name must be non-empty")
        if self.repeats < 1:
            raise CampaignError("repeats must be >= 1")
        if self.cohort_size < 0:
            raise CampaignError("cohort_size must be non-negative")
        if self.base_seed < 0:
            raise CampaignError("base_seed must be non-negative")
        scenario = get_scenario(self.scenario)
        empty = [key for key, value in self.parameters.items()
                 if isinstance(value, list) and not value]
        if empty:
            raise CampaignError(
                f"swept parameters {empty} have no values; the campaign would "
                "expand to zero runs"
            )
        reserved = sorted(set(scenario.AUTO_PARAMS) & set(self.parameters))
        if reserved:
            raise CampaignError(
                f"parameters {reserved} are injected by the engine (use cohort_size "
                "/ repeats instead of setting them directly)"
            )
        scenario.validate_params(dict(self.parameters))
        if self.cohort_size > 0 and not scenario.supports_cohort:
            raise CampaignError(
                f"scenario {self.scenario!r} does not support patient cohorts"
            )
        self._validate_faults(scenario)
        if scenario.spec_validator is not None:
            scenario.spec_validator(self)

    def _validate_faults(self, scenario) -> None:
        if not self.faults:
            return
        if not scenario.supports_faults:
            raise CampaignError(
                f"scenario {self.scenario!r} does not support fault injection "
                "(no fault_plan parameter); remove the campaign 'faults' block"
            )
        from repro.sim.faults import FAULT_KINDS

        for index, entry in enumerate(self.faults):
            if not isinstance(entry, dict):
                raise CampaignError(
                    f"faults[{index}] must be an object, got {type(entry).__name__}"
                )
            unknown = sorted(set(entry) - {"kind", "start", "duration",
                                           "target", "parameters"})
            if unknown:
                raise CampaignError(
                    f"faults[{index}] has unknown fields {unknown}"
                )
            kind = entry.get("kind")
            if kind not in FAULT_KINDS:
                raise CampaignError(
                    f"faults[{index}] kind {kind!r} is not one of {FAULT_KINDS}"
                )
            if "start" not in entry:
                raise CampaignError(f"faults[{index}] requires a 'start' time")
            for field_name in SWEEPABLE_FAULT_FIELDS:
                value = entry.get(field_name)
                if isinstance(value, list) and not value:
                    raise CampaignError(
                        f"faults[{index}].{field_name} sweeps no values; the "
                        "campaign would expand to zero runs"
                    )

    # ------------------------------------------------------------- expansion
    def sweep_axes(self) -> List[str]:
        """Names of the swept (list-valued) parameters, in declaration order.

        Swept fault fields follow the parameter axes as ``fault<i>.<field>``
        (their resolved values are injected into every run's params, so
        reports can group by them like any other axis).
        """
        axes = [key for key, value in self.parameters.items()
                if isinstance(value, list)]
        axes.extend(axis for axis, _values in self._fault_axes())
        return axes

    def _fault_axes(self) -> List[tuple]:
        """``(axis_name, values)`` for every swept fault field, in order."""
        axes = []
        for index, entry in enumerate(self.faults):
            for field_name in SWEEPABLE_FAULT_FIELDS:
                value = entry.get(field_name)
                if isinstance(value, list):
                    axes.append((f"fault{index}.{field_name}", value))
        return axes

    def grid_size(self) -> int:
        """Total run count, without materialising the manifests.

        Kept arithmetically in sync with :meth:`expand` (tested against it),
        so banners can print counts for huge campaigns at no cost.
        """
        size = self.repeats * max(1, self.cohort_size)
        for axis in self.sweep_axes():
            if axis in self.parameters:
                size *= len(self.parameters[axis])
        for _axis, values in self._fault_axes():
            size *= len(values)
        return size

    def _compiled_fault_plan(self, bound: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Resolve the faults block against one grid point's bound axes."""
        from repro.sim.faults import FaultSpec

        plan: List[Dict[str, Any]] = []
        for index, entry in enumerate(self.faults):
            resolved = dict(entry)
            for field_name in SWEEPABLE_FAULT_FIELDS:
                axis = f"fault{index}.{field_name}"
                if axis in bound:
                    resolved[field_name] = bound[axis]
            try:
                plan.append(FaultSpec.from_dict(resolved).as_dict())
            except ValueError as error:
                raise CampaignError(
                    f"faults[{index}] does not compile: {error}"
                ) from error
        return plan

    def expand(self) -> List[RunManifest]:
        """Expand into the full, deterministically ordered run list."""
        self.validate()
        scenario = get_scenario(self.scenario)
        axes = self.sweep_axes()
        fixed = {
            key: value
            for key, value in self.parameters.items()
            if not isinstance(value, list)
        }
        fault_axes = dict(self._fault_axes())
        grids = [
            self.parameters[axis] if axis in self.parameters
            else fault_axes[axis]
            for axis in axes
        ]
        patient_indices: List[Optional[int]] = (
            list(range(self.cohort_size)) if self.cohort_size > 0 else [None]
        )
        cohort_seed = derive_seed(self.base_seed, f"campaign:{self.name}:cohort")

        manifests: List[RunManifest] = []
        for point in itertools.product(*grids) if grids else [()]:
            bound = dict(zip(axes, point))
            fault_plan = (
                self._compiled_fault_plan(bound) if self.faults else None
            )
            for patient_index in patient_indices:
                for repeat in range(self.repeats):
                    params = dict(fixed)
                    params.update(bound)
                    if fault_plan is not None:
                        params["fault_plan"] = fault_plan
                    id_parts = [f"{axis}={axis_id_value(bound[axis])}"
                                for axis in axes]
                    if patient_index is not None:
                        params["patient_index"] = patient_index
                        params["cohort_seed"] = cohort_seed
                        id_parts.append(f"patient={patient_index:03d}")
                    if self.repeats > 1:
                        params["repeat"] = repeat
                    id_parts.append(f"rep={repeat}")
                    run_id = "&".join(id_parts)
                    resolved = scenario.resolved_params(params)
                    manifests.append(
                        RunManifest(
                            run_index=len(manifests),
                            run_id=run_id,
                            scenario=self.scenario,
                            params=resolved,
                            seed=derive_seed(self.base_seed, f"run:{run_id}"),
                        )
                    )
        seen: Dict[str, int] = {}
        for manifest in manifests:
            if manifest.run_id in seen:
                # Identical run ids mean identical seeds: the "independent"
                # samples would be perfectly correlated copies.
                raise CampaignError(
                    f"duplicate run id {manifest.run_id!r} (runs "
                    f"{seen[manifest.run_id]} and {manifest.run_index}); "
                    "remove duplicate sweep values, or use repeats for replication"
                )
            seen[manifest.run_id] = manifest.run_index
        return manifests

    # ----------------------------------------------------------- persistence
    def as_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "scenario": self.scenario,
            "parameters": self.parameters,
            "cohort_size": self.cohort_size,
            "repeats": self.repeats,
            "base_seed": self.base_seed,
            "description": self.description,
        }
        if self.faults:
            # Only emitted when present, so manifests of fault-less campaigns
            # are byte-identical to those written before faults existed.
            data["faults"] = self.faults
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        unknown = sorted(set(data) - set(cls.__dataclass_fields__))
        if unknown:
            raise CampaignError(f"unknown campaign spec fields: {unknown}")
        if "name" not in data or "scenario" not in data:
            raise CampaignError("campaign spec requires 'name' and 'scenario'")
        return cls(**dict(data))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        except OSError as error:
            raise CampaignError(f"cannot read campaign spec {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise CampaignError(f"campaign spec {path} is not valid JSON: {error}") from error


def cohort_patient(
    cohort_seed: int,
    index: int,
    *,
    sensitive_fraction: float = 0.15,
    athlete_fraction: float = 0.1,
):
    """Deterministically materialise patient ``index`` of a campaign cohort.

    Each patient is sampled from its own derived stream, so patient ``i`` is
    identical across configurations, workers, and resumes — campaigns compare
    configurations on *paired* populations, and materialising one patient
    never requires sampling the ones before it.
    """
    from repro.patient.population import PatientPopulation

    rng = np.random.default_rng(derive_seed(cohort_seed, f"patient:{index}"))
    population = PatientPopulation(rng=rng)
    patient = population.sample(
        1,
        prefix="cohort",
        sensitive_fraction=sensitive_fraction,
        athlete_fraction=athlete_fraction,
    )[0]
    return replace(patient, patient_id=f"patient-{index:03d}")


def patient_from_params(
    params: Mapping[str, Any],
    *,
    sensitive_fraction: float = 0.15,
    athlete_fraction: float = 0.1,
):
    """The patient a cohort-capable runner should simulate for ``params``.

    Resolves the engine-injected ``patient_index`` / ``cohort_seed`` auto
    params to a :func:`cohort_patient`, or falls back to the default patient
    for cohort-less campaigns.
    """
    from repro.patient.population import DEFAULT_PATIENT

    if params.get("patient_index") is None:
        return DEFAULT_PATIENT
    return cohort_patient(
        params["cohort_seed"],
        params["patient_index"],
        sensitive_fraction=sensitive_fraction,
        athlete_fraction=athlete_fraction,
    )
