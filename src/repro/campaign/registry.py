"""Scenario registry: declarative specs of campaign-runnable workloads.

Every clinical scenario that wants to participate in population-scale
campaigns registers a :class:`ScenarioSpec` — its name, default parameter
values, result schema, and a module-level runner callable.  Runners are
registered *by reference to an importable function*, so a worker process can
execute any manifest entry after a plain ``import``: nothing unpicklable
ever crosses the process boundary.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

#: Runner signature: ``runner(params, seed) -> flat JSON-serialisable dict``.
ScenarioRunner = Callable[[Dict[str, Any], int], Dict[str, Any]]


class CampaignError(RuntimeError):
    """Raised for campaign-level misuse (unknown scenarios, bad specs, ...)."""


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one campaign-runnable scenario.

    name:
        Registry key, referenced by :class:`repro.campaign.spec.CampaignSpec`.
    runner:
        Module-level callable ``(params, seed) -> record``.  Must be
        deterministic given its arguments — campaign reproducibility (and
        the serial/parallel equivalence guarantee) rests on this.
    defaults:
        Every recognised parameter with its default value.  Campaign specs
        may only sweep or fix parameters named here; anything else is a
        spec error, caught before any run executes.
    result_fields:
        Keys every record returned by ``runner`` is expected to contain
        (the scenario's result schema).
    supports_cohort:
        Whether the scenario consumes the auto-injected ``patient_index`` /
        ``cohort_seed`` parameters produced by cohort expansion.
    supports_faults:
        Whether the scenario honours the auto-injected ``fault_plan``
        parameter produced by a campaign spec's ``faults`` block (arming
        the compiled :class:`~repro.sim.faults.FaultSpec` schedule on its
        fault injector).
    spec_validator:
        Optional hook called with the whole campaign spec during
        :meth:`CampaignSpec.validate`, for scenario-specific constraints
        (e.g. "these parameters require a cohort"); raises
        :class:`CampaignError` before any run executes.
    """

    name: str
    runner: ScenarioRunner = field(compare=False)
    defaults: Mapping[str, Any] = field(default_factory=dict)
    result_fields: Tuple[str, ...] = ()
    supports_cohort: bool = False
    supports_faults: bool = False
    description: str = ""
    spec_validator: Optional[Callable[[Any], None]] = field(default=None, compare=False)

    #: Parameters the engine injects itself; always legal for cohort scenarios.
    AUTO_PARAMS = ("patient_index", "cohort_seed", "repeat")

    #: Fault-expansion parameters the engine injects for fault-capable
    #: scenarios: the compiled plan itself plus per-axis values such as
    #: ``fault0.duration`` (kept in params so reports can group by them).
    FAULT_PARAM = "fault_plan"
    FAULT_AXIS_PREFIX = "fault"

    @classmethod
    def is_fault_axis(cls, name: str) -> bool:
        """Whether ``name`` is an engine-injected fault sweep axis."""
        prefix, dot, _field = name.partition(".")
        return (dot == "." and prefix.startswith(cls.FAULT_AXIS_PREFIX)
                and prefix[len(cls.FAULT_AXIS_PREFIX):].isdigit())

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Reject parameters the scenario does not recognise."""
        allowed = set(self.defaults) | set(self.AUTO_PARAMS)
        if self.supports_faults:
            allowed.add(self.FAULT_PARAM)
        unknown = sorted(
            key for key in set(params) - allowed
            if not (self.supports_faults and self.is_fault_axis(key))
        )
        if unknown:
            raise CampaignError(
                f"scenario {self.name!r} does not accept parameters {unknown}; "
                f"known parameters: {sorted(self.defaults)}"
            )

    def resolved_params(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Defaults overlaid with ``params`` (auto params passed through).

        Structured defaults (dicts/lists, e.g. a topology spec) are deep
        copied: manifests outlive this call, and a runner mutating its params
        in one run must never leak into the shared default of the next.
        """
        self.validate_params(params)
        resolved = {
            key: copy.deepcopy(value) if isinstance(value, (dict, list)) else value
            for key, value in self.defaults.items()
        }
        resolved.update(params)
        return resolved


_REGISTRY: Dict[str, ScenarioSpec] = {}
_BUILTINS_LOADED = False


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register ``spec``, replacing any previous spec of the same name."""
    _REGISTRY[spec.name] = spec
    return spec


def campaign_scenario(
    name: str,
    *,
    defaults: Optional[Mapping[str, Any]] = None,
    result_fields: Tuple[str, ...] = (),
    supports_cohort: bool = False,
    supports_faults: bool = False,
    description: str = "",
    spec_validator: Optional[Callable[[Any], None]] = None,
) -> Callable[[ScenarioRunner], ScenarioRunner]:
    """Decorator registering a module-level function as a scenario runner."""

    def decorate(runner: ScenarioRunner) -> ScenarioRunner:
        doc_first_line = (runner.__doc__ or "").strip().splitlines()
        register_scenario(
            ScenarioSpec(
                name=name,
                runner=runner,
                defaults=dict(defaults or {}),
                result_fields=tuple(result_fields),
                supports_cohort=supports_cohort,
                supports_faults=supports_faults,
                description=description or (doc_first_line[0] if doc_first_line else ""),
                spec_validator=spec_validator,
            )
        )
        return runner

    return decorate


def ensure_builtin_scenarios() -> None:
    """Import the bundled scenario modules so their registrations run."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Imported lazily to avoid a cycle: scenario modules import this module.
    import repro.scenarios  # noqa: F401

    _BUILTINS_LOADED = True


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario, loading the builtins on first use."""
    ensure_builtin_scenarios()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CampaignError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def list_scenarios() -> List[ScenarioSpec]:
    """All registered scenarios, sorted by name."""
    ensure_builtin_scenarios()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
