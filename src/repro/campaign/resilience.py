"""Fault-tolerant campaign execution: error capture, retries, and watchdog.

The paper's core requirement (Section II(c)) is a supervisor "tolerant to
faults that interfere with the control loop"; at population scale the same
discipline must apply to the campaign engine itself — one bad run out of a
million must not kill the job.  This module provides the three layers the
engine composes when resilience is enabled:

* **Structured error capture** (:func:`execute_with_capture`): a failing
  run yields an *error record* — exception class, message, traceback
  digest, attempt count, wall time, transient/deterministic classification
  — instead of an exception that poisons the worker pool.  Error records
  are quarantined to ``errors.jsonl`` by the store and re-dispatched on
  resume.
* **Bounded deterministic retry** (:class:`RetryPolicy`): transient
  failures retry in-worker with seeded-jitter backoff derived from
  ``derive_seed(manifest.seed, attempt)``, so reruns of a flaky run are
  reproducible; deterministic failures quarantine immediately.
* **Worker-death and timeout tolerance** (:class:`ResilientDispatcher`):
  a parent-side watchdog dispatches runs with ``apply_async``, reads
  per-run heartbeat files written by the workers, SIGKILLs wedged workers
  whose run exceeds its wall-clock budget (``multiprocessing.Pool``
  respawns the process), re-dispatches runs whose worker died under them,
  and degrades gracefully to in-parent serial execution when the pool
  cannot be kept alive.

Everything here is off the happy path: a campaign run with no
:class:`ResilienceConfig` executes exactly the same code as before.
"""

from __future__ import annotations

import hashlib
import os
import signal
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign.registry import CampaignError
from repro.campaign.spec import RunManifest
from repro.sim.random import derive_seed

#: Outcome tuples the engine consumes: ("ok", record, attempts) or
#: ("error", error_record).  Error records carry their attempt count inside.
Outcome = Tuple[str, Dict[str, Any], int]

OK = "ok"
ERROR = "error"

#: Error classifications recorded in ``errors.jsonl``.
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"
TIMEOUT = "timeout"
WORKER_LOST = "worker_lost"


class TransientError(RuntimeError):
    """Marker for failures worth retrying (I/O hiccups, resource races).

    Scenario runners raise this (or any type named in
    :attr:`RetryPolicy.transient_types`) to request an in-worker retry
    instead of immediate quarantine.
    """


# ----------------------------------------------------------------- attempts
#: 1-based attempt number of the run currently executing in this process.
_CURRENT_ATTEMPT = 1

#: True inside a resilient pool worker (set by the worker initializer).
_IN_WORKER = False


def current_attempt() -> int:
    """The 1-based attempt number of the run executing right now.

    Scenario runners may consult this to make transient failures converge
    (the chaos scenario's ``flaky`` behaviour succeeds once
    ``current_attempt() >= fail_attempts``).
    """
    return _CURRENT_ATTEMPT


def in_worker() -> bool:
    """Whether this process is a resilient campaign pool worker."""
    return _IN_WORKER


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


# -------------------------------------------------------------- retry policy
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministically jittered retry for transient failures.

    max_attempts:
        Total tries per run (1 = never retry).
    backoff_base_s / backoff_factor:
        Attempt ``n`` (1-based) sleeps ``base * factor**(n-1)`` seconds
        before retrying, capped at ``backoff_max_s``.
    backoff_jitter:
        Fraction of the backoff added as seeded jitter.  The jitter for
        attempt ``n`` of a run derives from ``derive_seed(run_seed,
        "retry:n")`` — identical on every rerun of the campaign, so retry
        timing never introduces nondeterminism.
    transient_types:
        Exception type *names* classified as transient (matched against the
        exception class, its bases, and its ``__cause__`` chain, so a
        runner error wrapped in :class:`CampaignError` keeps its
        classification).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    backoff_jitter: float = 0.5
    transient_types: Tuple[str, ...] = (
        "TransientError", "ConnectionError", "BrokenPipeError", "EOFError",
        "TimeoutError",
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CampaignError("retry max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise CampaignError("retry backoff must be non-negative")

    def classify(self, error: BaseException) -> str:
        """``"transient"`` or ``"deterministic"`` for ``error``."""
        wanted = set(self.transient_types)
        seen = set()
        current: Optional[BaseException] = error
        while current is not None and id(current) not in seen:
            seen.add(id(current))
            for klass in type(current).__mro__:
                if klass.__name__ in wanted:
                    return TRANSIENT
            current = current.__cause__ or current.__context__
        return DETERMINISTIC

    def backoff_s(self, run_seed: int, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based count of failures so far)."""
        base = min(self.backoff_max_s,
                   self.backoff_base_s * (self.backoff_factor ** (attempt - 1)))
        if base <= 0.0:
            return 0.0
        jitter_seed = derive_seed(run_seed, f"retry:{attempt}")
        unit = (jitter_seed % 10_000) / 10_000.0  # deterministic U[0, 1)
        return base * (1.0 + self.backoff_jitter * unit)


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the engine needs to survive failing runs and workers.

    retry:
        In-worker retry policy for transient errors.
    run_timeout_s:
        Per-run wall-clock budget.  Only enforceable with ``workers > 1``
        (the parent cannot preempt its own thread); a run that exceeds it
        is quarantined as ``timeout`` and its worker is killed and
        respawned.
    max_dispatch_attempts:
        How many times a run is re-dispatched after its *worker* died under
        it (distinct from in-worker retries: the run itself never raised).
    max_worker_restarts:
        After this many killed/lost workers the dispatcher stops trusting
        the pool and degrades to in-parent serial execution for the
        survivors (timeouts can then no longer be enforced, but the
        campaign completes).
    heartbeat_grace_s:
        Extra wall-clock allowance between dispatch and the worker's
        heartbeat appearing, absorbing pool scheduling delay.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    run_timeout_s: Optional[float] = None
    max_dispatch_attempts: int = 2
    max_worker_restarts: int = 3
    heartbeat_grace_s: float = 5.0
    poll_interval_s: float = 0.02

    def __post_init__(self) -> None:
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise CampaignError("run_timeout_s must be positive")
        if self.max_dispatch_attempts < 1:
            raise CampaignError("max_dispatch_attempts must be >= 1")


# ------------------------------------------------------------ error records
def _traceback_digest(error: BaseException) -> Tuple[str, str]:
    """(sha256 digest, last frame summary) of the error's traceback."""
    text = "".join(traceback.format_exception(
        type(error), error, error.__traceback__))
    digest = hashlib.sha256(text.encode()).hexdigest()
    frames = traceback.extract_tb(error.__traceback__)
    where = ""
    if frames:
        last = frames[-1]
        where = f"{Path(last.filename).name}:{last.lineno} in {last.name}"
    return digest, where


def error_record(
    manifest: RunManifest,
    *,
    classification: str,
    attempts: int,
    wall_s: float,
    error: Optional[BaseException] = None,
    message: Optional[str] = None,
) -> Dict[str, Any]:
    """Build the quarantine record for one failed run.

    Mirrors the result-record envelope (run identity + params) so
    ``errors.jsonl`` is self-describing, and nests the failure detail under
    ``"error"``.  Synthetic failures (timeouts, lost workers) pass
    ``message`` instead of an exception.
    """
    if error is not None:
        digest, where = _traceback_digest(error)
        detail = {
            "type": type(error).__name__,
            "message": str(error),
            "traceback_digest": digest,
            "where": where,
        }
    else:
        detail = {"type": classification, "message": message or "", }
    detail["classification"] = classification
    detail["attempts"] = attempts
    detail["wall_s"] = round(wall_s, 6)
    return {
        "run_index": manifest.run_index,
        "run_id": manifest.run_id,
        "scenario": manifest.scenario,
        "seed": manifest.seed,
        "params": dict(manifest.params),
        "error": detail,
    }


def execute_with_capture(
    manifest: RunManifest,
    policy: RetryPolicy,
    *,
    execute: Optional[Callable[[RunManifest], Dict[str, Any]]] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[], None]] = None,
) -> Outcome:
    """Run one manifest, retrying transients; never raises for run failures.

    Returns ``("ok", record, attempts)`` or ``("error", error_record,
    attempts)``.  ``KeyboardInterrupt`` / ``SystemExit`` still propagate —
    they are operator intent, not run failures.
    """
    global _CURRENT_ATTEMPT
    if execute is None:
        from repro.campaign.engine import execute_manifest
        execute = execute_manifest
    attempts = 0
    wall_start = time.perf_counter()
    while True:
        attempts += 1
        _CURRENT_ATTEMPT = attempts
        try:
            record = execute(manifest)
            _CURRENT_ATTEMPT = 1
            return (OK, record, attempts)
        except (KeyboardInterrupt, SystemExit):
            _CURRENT_ATTEMPT = 1
            raise
        except BaseException as error:  # noqa: BLE001 - capture is the point
            classification = policy.classify(error)
            if classification == TRANSIENT and attempts < policy.max_attempts:
                if on_retry is not None:
                    on_retry()
                delay = policy.backoff_s(manifest.seed, attempts)
                if delay > 0.0:
                    sleep(delay)
                continue
            _CURRENT_ATTEMPT = 1
            return (ERROR,
                    error_record(manifest, classification=classification,
                                 attempts=attempts,
                                 wall_s=time.perf_counter() - wall_start,
                                 error=error),
                    attempts)


# ----------------------------------------------------------------- watchdog
class Heartbeat:
    """Per-run heartbeat files linking a dispatched run to its worker pid.

    A worker touches ``run-<index>.hb`` (containing ``pid started_at``)
    when it picks the run up and removes it on completion; the parent
    watchdog reads it to (a) start the run's wall-clock budget at actual
    pickup rather than dispatch, (b) tell a *dead* worker (re-dispatch the
    run) from a *wedged* one (kill it and quarantine the run).
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = Path(
            directory if directory is not None
            else tempfile.mkdtemp(prefix="repro-campaign-hb-"))
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, run_index: int) -> Path:
        return self.directory / f"run-{run_index:08d}.hb"

    # Worker side -------------------------------------------------------
    def start(self, run_index: int) -> None:
        try:
            self.path(run_index).write_text(
                f"{os.getpid()} {time.time()}", encoding="utf-8")
        except OSError:  # pragma: no cover - scratch dir vanished
            pass

    def finish(self, run_index: int) -> None:
        try:
            self.path(run_index).unlink()
        except OSError:
            pass

    # Parent side -------------------------------------------------------
    def read(self, run_index: int) -> Optional[Tuple[int, float]]:
        """(pid, started_at) if the worker has picked the run up."""
        try:
            parts = self.path(run_index).read_text(encoding="utf-8").split()
            return int(parts[0]), float(parts[1])
        except (OSError, ValueError, IndexError):
            return None

    def cleanup(self) -> None:
        try:
            for stale in self.directory.glob("run-*.hb"):
                stale.unlink()
            self.directory.rmdir()
        except OSError:  # pragma: no cover - foreign files left behind
            pass


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (POSIX signal 0)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - EPERM etc: assume alive
        return True
    return True


def kill_worker(pid: int) -> bool:
    """SIGKILL a wedged pool worker; the pool respawns a replacement."""
    try:
        os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
    except OSError:
        return False
    return True


@dataclass
class _InFlight:
    manifest: RunManifest
    payload_index: int
    result: Any  # multiprocessing AsyncResult
    dispatched_at: float
    dispatch_attempts: int


class ResilientDispatcher:
    """Parent-side watchdog loop over an ``apply_async`` worker pool.

    The engine hands it a live pool plus the pending manifests; it yields
    :data:`Outcome` tuples as runs finish, survives worker death (re-
    dispatch, bounded), enforces per-run timeouts (targeted SIGKILL of the
    wedged worker — the pool respawns it), and falls back to in-parent
    serial execution once ``max_worker_restarts`` is exhausted.  The
    ``stats`` dict exposes ``worker_restarts`` / ``timed_out`` /
    ``redispatched`` for the campaign report.
    """

    def __init__(
        self,
        pool: Any,
        manifests: List[RunManifest],
        config: ResilienceConfig,
        heartbeat: Heartbeat,
        worker: Callable[[int], Outcome],
        processes: int,
        on_retry: Optional[Callable[[], None]] = None,
    ) -> None:
        self.pool = pool
        self.manifests = manifests
        self.config = config
        self.heartbeat = heartbeat
        self.worker = worker
        self.processes = processes
        self.on_retry = on_retry
        self.stats = {"worker_restarts": 0, "timed_out": 0, "redispatched": 0}
        self._queue: List[Tuple[int, int]] = [
            (i, 1) for i in range(len(manifests))]
        self._inflight: Dict[int, _InFlight] = {}
        self._degraded = False

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, payload_index: int, attempt: int) -> None:
        self._inflight[payload_index] = _InFlight(
            manifest=self.manifests[payload_index],
            payload_index=payload_index,
            result=self.pool.apply_async(self.worker, (payload_index,)),
            dispatched_at=time.monotonic(),
            dispatch_attempts=attempt,
        )

    def _fill_slots(self) -> None:
        while self._queue and len(self._inflight) < self.processes:
            index, attempt = self._queue.pop(0)
            self._dispatch(index, attempt)

    # -------------------------------------------------------------- timeout
    def _deadline_passed(self, flight: _InFlight, now: float) -> bool:
        timeout = self.config.run_timeout_s
        if timeout is None:
            return False
        beat = self.heartbeat.read(flight.payload_index)
        if beat is None:
            # Not picked up yet: allow queueing grace on top of the budget.
            return now - flight.dispatched_at > (
                timeout + self.config.heartbeat_grace_s)
        _pid, started_at = beat
        return time.time() - started_at > timeout

    def _handle_expiry(self, flight: _InFlight) -> Optional[Outcome]:
        """Timeout or worker death for one in-flight run.

        Returns an error outcome to emit, or ``None`` if the run was
        re-queued (dead worker, budget left).
        """
        beat = self.heartbeat.read(flight.payload_index)
        pid = beat[0] if beat is not None else None
        if pid is not None and pid_alive(pid):
            # Wedged or genuinely too slow: reclaim the slot.
            kill_worker(pid)
            self.stats["worker_restarts"] += 1
            self.stats["timed_out"] += 1
            self.heartbeat.finish(flight.payload_index)
            return (ERROR,
                    error_record(flight.manifest, classification=TIMEOUT,
                                 attempts=flight.dispatch_attempts,
                                 wall_s=self.config.run_timeout_s or 0.0,
                                 message=(
                                     f"run exceeded its wall-clock budget of "
                                     f"{self.config.run_timeout_s}s")),
                    flight.dispatch_attempts)
        # Worker died under the run (or never picked it up): the run itself
        # is innocent — re-dispatch unless its budget is spent.
        self.stats["worker_restarts"] += 1
        self.heartbeat.finish(flight.payload_index)
        if flight.dispatch_attempts < self.config.max_dispatch_attempts:
            self.stats["redispatched"] += 1
            self._queue.append(
                (flight.payload_index, flight.dispatch_attempts + 1))
            return None
        return (ERROR,
                error_record(flight.manifest, classification=WORKER_LOST,
                             attempts=flight.dispatch_attempts,
                             wall_s=time.monotonic() - flight.dispatched_at,
                             message=(
                                 "worker process died "
                                 f"{flight.dispatch_attempts} time(s) while "
                                 "executing this run")),
                flight.dispatch_attempts)

    def _check_worker_death(self, flight: _InFlight) -> bool:
        """True when the worker that picked this run up is gone."""
        beat = self.heartbeat.read(flight.payload_index)
        if beat is None:
            return False
        pid, _started = beat
        return not pid_alive(pid)

    # ------------------------------------------------------------------ run
    def outcomes(self):
        """Yield one outcome per pending run, in completion order."""
        try:
            while self._queue or self._inflight:
                if self._degraded:
                    yield from self._drain_serial()
                    return
                self._fill_slots()
                yield from self._poll_once()
                if (self.stats["worker_restarts"]
                        > self.config.max_worker_restarts):
                    self._degrade()
        finally:
            self.heartbeat.cleanup()

    def _poll_once(self):
        time.sleep(self.config.poll_interval_s)
        now = time.monotonic()
        for index in list(self._inflight):
            flight = self._inflight[index]
            if flight.result.ready():
                del self._inflight[index]
                yield flight.result.get()
                continue
            if self._deadline_passed(flight, now) \
                    or self._check_worker_death(flight):
                del self._inflight[index]
                outcome = self._handle_expiry(flight)
                if outcome is not None:
                    yield outcome

    def _degrade(self) -> None:
        """Give up on the pool; survivors run serially in the parent."""
        self._degraded = True
        for flight in self._inflight.values():
            self._queue.append(
                (flight.payload_index, flight.dispatch_attempts))
        self._inflight.clear()
        self.pool.terminate()

    def _drain_serial(self):
        for index, _attempt in self._queue:
            yield execute_with_capture(self.manifests[index],
                                       self.config.retry,
                                       on_retry=self.on_retry)
        self._queue.clear()
