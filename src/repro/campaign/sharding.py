"""Sharding: partition an expanded campaign into independent work units.

A :class:`ShardSelector` names one of ``count`` disjoint partitions of a
campaign's expanded run list.  Because every run is seeded from its stable
run id (:func:`repro.sim.random.derive_seed`), a shard is a *complete*
campaign over its subset: it can run on any box, at any time, resume
independently, and its finalized ``results.jsonl`` segment merges with its
siblings into bytes identical to a serial run of the whole campaign
(:meth:`repro.campaign.store.ResultStore.merge`).

Two assignment strategies, both pure functions of ``(run_index, count)``:

``contiguous``
    Nearly-equal consecutive blocks of the expanded order.  Best when runs
    of similar parameters have similar cost (block locality keeps related
    runs on one box).
``strided``
    Run ``i`` goes to shard ``(i % count) + 1``.  Best when cost varies
    systematically along the expansion order (each shard samples the whole
    grid, so wall times balance).

The assignment is recorded in every shard's manifest (``shard`` block with
explicit ``run_indices``), so a merge never has to re-derive the partition
— segments are audited against what they claimed to own.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.registry import CampaignError
from repro.campaign.spec import CampaignSpec, RunManifest

#: Recognised shard assignment strategies.
STRATEGIES = ("contiguous", "strided")


@dataclass(frozen=True)
class ShardSelector:
    """One shard of a K-way campaign partition (``index`` is 1-based)."""

    index: int
    count: int
    strategy: str = "contiguous"

    def validate(self) -> None:
        if self.count < 1:
            raise CampaignError("shard count must be >= 1")
        if not 1 <= self.index <= self.count:
            raise CampaignError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )
        if self.strategy not in STRATEGIES:
            raise CampaignError(
                f"shard strategy must be one of {STRATEGIES}, "
                f"got {self.strategy!r}"
            )

    # -------------------------------------------------------------- identity
    @property
    def label(self) -> str:
        """The CLI spelling, e.g. ``"2/4"``."""
        return f"{self.index}/{self.count}"

    def file_stem(self) -> str:
        """Stable, sortable name, e.g. ``"shard-02-of-04"``."""
        width = max(2, len(str(self.count)))
        return f"shard-{self.index:0{width}d}-of-{self.count:0{width}d}"

    @classmethod
    def parse(cls, text: str, strategy: str = "contiguous") -> "ShardSelector":
        """Parse the ``I/K`` CLI form (1-based, e.g. ``--shard 2/4``)."""
        index_text, slash, count_text = text.partition("/")
        try:
            if slash != "/":
                raise ValueError(text)
            selector = cls(int(index_text), int(count_text), strategy)
        except ValueError:
            raise CampaignError(
                f"shard must be of the form I/K (e.g. 2/4), got {text!r}"
            ) from None
        selector.validate()
        return selector

    # ------------------------------------------------------------ assignment
    def run_indices(self, total: int) -> List[int]:
        """The global run indices this shard owns, in ascending order."""
        self.validate()
        if self.strategy == "strided":
            return list(range(self.index - 1, total, self.count))
        base, remainder = divmod(total, self.count)
        start = (self.index - 1) * base + min(self.index - 1, remainder)
        stop = start + base + (1 if self.index - 1 < remainder else 0)
        return list(range(start, stop))

    def partition(self, manifests: Sequence[RunManifest]) -> List[RunManifest]:
        """The subset of ``manifests`` this shard executes (global indices kept)."""
        owned = self.run_indices(len(manifests))
        return [manifests[index] for index in owned]

    # ----------------------------------------------------------- persistence
    def as_dict(self) -> Dict[str, Any]:
        return {"index": self.index, "count": self.count,
                "strategy": self.strategy}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardSelector":
        unknown = sorted(set(data) - {"index", "count", "strategy"})
        if unknown:
            raise CampaignError(f"unknown shard fields: {unknown}")
        try:
            selector = cls(
                index=int(data["index"]),
                count=int(data["count"]),
                strategy=str(data.get("strategy", "contiguous")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CampaignError(f"invalid shard block: {error}") from error
        selector.validate()
        return selector

    def manifest_block(self, total: int) -> Dict[str, Any]:
        """The ``shard`` block recorded in a segment's ``manifest.json``.

        Carries the *explicit* owned run indices alongside the derivable
        strategy so merges audit segments against their claimed assignment
        even if the partitioner ever changes.
        """
        block = self.as_dict()
        block["total_runs"] = total
        block["run_indices"] = self.run_indices(total)
        return block


def all_shards(count: int, strategy: str = "contiguous") -> List[ShardSelector]:
    """Selectors for every shard of a K-way partition (validated)."""
    shards = [ShardSelector(index, count, strategy)
              for index in range(1, count + 1)]
    for shard in shards:
        shard.validate()
    return shards


# ----------------------------------------------------------- shard manifests
def write_shard_manifests(
    spec: CampaignSpec,
    directory: Union[str, Path],
    count: int,
    strategy: str = "contiguous",
) -> List[Tuple[Path, ShardSelector, int]]:
    """Emit one dispatchable shard-manifest JSON file per shard.

    Each file is self-contained — the full campaign spec plus the shard
    block — so ``repro-campaign run <file> --out DIR`` on any box executes
    exactly that partition.  Returns ``(path, selector, runs)`` per shard.
    """
    manifests = spec.expand()
    total = len(manifests)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Tuple[Path, ShardSelector, int]] = []
    for shard in all_shards(count, strategy):
        payload = {
            "spec": spec.as_dict(),
            "shard": shard.manifest_block(total),
        }
        path = directory / f"{shard.file_stem()}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        written.append((path, shard, len(shard.run_indices(total))))
    return written


def load_spec_or_shard(
    path: Union[str, Path],
) -> Tuple[CampaignSpec, Optional[ShardSelector]]:
    """Read either a plain campaign spec or a shard-manifest file.

    A shard manifest (written by :func:`write_shard_manifests`) is the
    ``{"spec": ..., "shard": ...}`` envelope; anything else is parsed as a
    bare :class:`CampaignSpec`, returning ``(spec, None)``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise CampaignError(f"cannot read campaign spec {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise CampaignError(
            f"campaign spec {path} is not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise CampaignError(f"campaign spec {path} must be a JSON object")
    if "spec" in data and "shard" in data:
        spec = CampaignSpec.from_dict(data["spec"])
        shard = ShardSelector.from_dict(
            {key: data["shard"][key]
             for key in ("index", "count", "strategy")
             if key in data["shard"]}
        )
        return spec, shard
    return CampaignSpec.from_dict(data), None
