"""``python -m repro.campaign`` — campaign runner CLI."""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
