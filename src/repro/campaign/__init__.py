"""Population-scale simulation campaigns.

The seed experiments run scenarios one patient at a time; this package is
the scaling backbone that turns them into ward- and hospital-scale Monte
Carlo campaigns:

* :mod:`~repro.campaign.registry` -- scenario registry: every bundled
  scenario registers a declarative :class:`~repro.campaign.registry.ScenarioSpec`
  (name, parameter defaults, result schema, module-level runner).
* :mod:`~repro.campaign.spec` -- :class:`~repro.campaign.spec.CampaignSpec`
  parameter-sweep / cohort expansion into stable, individually seeded
  :class:`~repro.campaign.spec.RunManifest` entries.
* :mod:`~repro.campaign.engine` -- parallel execution via
  ``multiprocessing`` with a deterministic serial fallback; serial and
  parallel campaigns produce byte-identical finalized results.
* :mod:`~repro.campaign.store` -- streaming JSONL result store with
  checkpoint/resume of partially completed campaigns and a quarantine
  file (``errors.jsonl``) for failed runs.
* :mod:`~repro.campaign.resilience` -- fault-tolerant execution: bounded
  deterministic retry of transient failures, structured error capture,
  and a parent-side watchdog that survives hung and killed workers.
* :mod:`~repro.campaign.sharding` -- K-way partition of an expanded
  campaign into independently executable, independently seeded shards
  whose finalized segments merge byte-identically
  (:meth:`~repro.campaign.store.ResultStore.merge`).
* :mod:`~repro.campaign.aggregate` -- grouped aggregation feeding
  :mod:`repro.analysis` (summary tables, safety outcomes) over thousands
  of stored runs, materialised or streaming (running moments + a
  deterministic quantile sketch for fleet-scale stores).
* :mod:`~repro.campaign.cli` -- ``python -m repro.campaign run <spec>``.
"""

from repro.campaign.aggregate import (
    QuantileSketch,
    RunningMoments,
    StreamingAggregator,
    campaign_table,
    group_records,
    safety_outcomes,
    safety_table,
    streaming_campaign_table,
    summarise_metric,
)
from repro.campaign.engine import CampaignEngine, CampaignReport, run_campaign
from repro.campaign.sharding import (
    ShardSelector,
    all_shards,
    load_spec_or_shard,
    write_shard_manifests,
)
from repro.campaign.resilience import (
    ResilienceConfig,
    RetryPolicy,
    TransientError,
    current_attempt,
    in_worker,
)
from repro.campaign.registry import (
    CampaignError,
    ScenarioSpec,
    campaign_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.campaign.spec import (
    CampaignSpec,
    RunManifest,
    cohort_patient,
    patient_from_params,
)
from repro.campaign.store import (
    MergeResult,
    ResultStore,
    SegmentInfo,
    load_errors,
    load_results,
)

__all__ = [
    "CampaignEngine",
    "CampaignError",
    "CampaignReport",
    "CampaignSpec",
    "MergeResult",
    "QuantileSketch",
    "ResilienceConfig",
    "ResultStore",
    "RetryPolicy",
    "RunManifest",
    "RunningMoments",
    "ScenarioSpec",
    "SegmentInfo",
    "ShardSelector",
    "StreamingAggregator",
    "TransientError",
    "all_shards",
    "campaign_scenario",
    "campaign_table",
    "cohort_patient",
    "current_attempt",
    "get_scenario",
    "group_records",
    "in_worker",
    "list_scenarios",
    "load_errors",
    "load_results",
    "load_spec_or_shard",
    "patient_from_params",
    "register_scenario",
    "run_campaign",
    "safety_outcomes",
    "safety_table",
    "streaming_campaign_table",
    "summarise_metric",
    "write_shard_manifests",
]
