"""Aggregation of campaign records into the paper's analysis machinery.

Campaign records are flat dicts (``params`` + ``result``); this module
groups them along swept parameters and pushes the grouped metrics through
:mod:`repro.analysis.stats` / :mod:`repro.analysis.metrics` /
:mod:`repro.analysis.tables`, so the tables the benchmarks print over
dozens of in-process runs can be reproduced over thousands of stored ones.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import SafetyOutcome, aggregate_outcomes
from repro.analysis.stats import Summary, summarise
from repro.analysis.tables import Table
from repro.campaign.registry import CampaignError

GroupKey = Tuple[Any, ...]


def _lookup(record: Mapping[str, Any], key: str) -> Any:
    """A grouping key may live in the params, the result, or the record itself."""
    if key in record.get("params", {}):
        return record["params"][key]
    if key in record.get("result", {}):
        return record["result"][key]
    if key in record:
        return record[key]
    raise CampaignError(f"record {record.get('run_id')!r} has no field {key!r}")


def group_records(
    records: Iterable[Mapping[str, Any]],
    by: Sequence[str],
) -> Dict[GroupKey, List[Mapping[str, Any]]]:
    """Group records by the values of the ``by`` fields (insertion-ordered)."""
    groups: Dict[GroupKey, List[Mapping[str, Any]]] = {}
    for record in records:
        key = tuple(_lookup(record, field) for field in by)
        groups.setdefault(key, []).append(record)
    return groups


def metric_values(records: Iterable[Mapping[str, Any]], metric: str) -> List[float]:
    """The numeric values of one result metric across records (None skipped)."""
    values = []
    for record in records:
        value = record["result"].get(metric)
        if value is None:
            continue
        if isinstance(value, bool):
            value = 1.0 if value else 0.0
        if not isinstance(value, (int, float)):
            raise CampaignError(f"result field {metric!r} is not numeric: {value!r}")
        values.append(float(value))
    return values


def summarise_metric(
    records: Iterable[Mapping[str, Any]], metric: str
) -> Summary:
    """Five-number summary of one result metric across records."""
    return summarise(metric_values(records, metric))


def campaign_table(
    records: Sequence[Mapping[str, Any]],
    *,
    group_by: Sequence[str],
    metrics: Sequence[str],
    title: str = "campaign summary",
    statistic: str = "mean",
    notes: Optional[str] = None,
) -> Table:
    """Summary table: one row per group, one column per metric statistic."""
    if statistic not in ("mean", "median", "min", "max", "std"):
        raise CampaignError(f"unknown statistic {statistic!r}")
    columns = list(group_by) + ["runs"] + [f"{statistic}_{metric}" for metric in metrics]
    table = Table(title, columns, notes=notes)
    for key, group in group_records(records, group_by).items():
        row: List[Any] = list(key) + [len(group)]
        for metric in metrics:
            values = metric_values(group, metric)
            if not values:
                row.append(float("nan"))
                continue
            summary = summarise(values)
            row.append(
                {
                    "mean": summary.mean,
                    "median": summary.median,
                    "min": summary.minimum,
                    "max": summary.maximum,
                    "std": summary.std,
                }[statistic]
            )
        table.add_row(*row)
    return table


def safety_outcomes(
    records: Sequence[Mapping[str, Any]],
    *,
    group_by: Sequence[str] = ("mode",),
) -> Dict[GroupKey, SafetyOutcome]:
    """PCA-style safety outcomes per group, via :func:`aggregate_outcomes`.

    Works for any scenario whose result records carry the PCA safety
    fields (``harmed``, ``respiratory_failure_events``, ...).
    """
    outcomes: Dict[GroupKey, SafetyOutcome] = {}
    for key, group in group_records(records, group_by).items():
        outcomes[key] = aggregate_outcomes(
            SimpleNamespace(**record["result"]) for record in group
        )
    return outcomes


def safety_table(
    records: Sequence[Mapping[str, Any]],
    *,
    group_by: Sequence[str] = ("mode",),
    title: str = "campaign safety outcomes",
    notes: Optional[str] = None,
) -> Table:
    """The E1-style safety table, computed from stored campaign records."""
    table = Table(
        title,
        list(group_by)
        + ["patients", "harmed", "harm_rate", "failure_events",
           "mean_time_spo2<90 (s)", "mean_drug (mg)", "mean_pain"],
        notes=notes,
    )
    for key, outcome in safety_outcomes(records, group_by=group_by).items():
        table.add_row(
            *key,
            outcome.patients,
            outcome.harmed,
            outcome.harm_rate,
            outcome.respiratory_failure_events,
            outcome.mean_time_in_danger_s,
            outcome.mean_drug_mg,
            outcome.mean_pain,
        )
    return table
